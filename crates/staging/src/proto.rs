//! Wire-level protocol types shared by the DES and threaded staging servers.
//!
//! Identity model: a workflow is composed of *application components*
//! (simulation, analytics, ...) identified by [`AppId`]; each component has
//! many ranks, but the staging protocol only needs the component identity —
//! per-component event queues are the unit of the paper's consistency
//! algorithm. Variables are interned to dense [`VarId`]s by [`VarRegistry`].

use crate::geometry::BBox;
use crate::payload::Payload;
use obs::TraceCtx;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Interned variable identifier.
pub type VarId = u32;
/// Data version; the synthetic workflows use the coupling time step.
pub type Version = u32;
/// Application component identifier (simulation = 0, analytics = 1, ...).
pub type AppId = u32;

/// Descriptor of a staged object: *which* variable, *which* version, *where*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ObjDesc {
    /// Variable.
    pub var: VarId,
    /// Version (time step).
    pub version: Version,
    /// Region covered.
    pub bbox: BBox,
}

/// Name → [`VarId`] interner.
#[derive(Debug, Default, Clone)]
pub struct VarRegistry {
    by_name: BTreeMap<String, VarId>,
    names: Vec<String>,
}

impl VarRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> VarId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as VarId;
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<VarId> {
        self.by_name.get(name).copied()
    }

    /// The name for an id.
    pub fn name(&self, id: VarId) -> Option<&str> {
        self.names.get(id as usize).map(String::as_str)
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when no variables are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A write of one (block-aligned) piece of a variable version.
#[derive(Debug, Clone)]
pub struct PutRequest {
    /// Issuing application component.
    pub app: AppId,
    /// Object being written.
    pub desc: ObjDesc,
    /// The data.
    pub payload: Payload,
    /// Client-side sequence number for matching responses.
    pub seq: u64,
    /// Causal trace context ([`TraceCtx::NONE`] when tracing is off):
    /// server-side work for this request parents under the client span that
    /// issued it.
    pub tctx: TraceCtx,
}

/// Outcome of a put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutStatus {
    /// Stored as new data.
    Stored,
    /// Recognized as a redundant re-write from a rolled-back component and
    /// absorbed (the paper's write-deduplication during replay).
    Absorbed,
}

/// Server reply to a [`PutRequest`].
#[derive(Debug, Clone)]
pub struct PutResponse {
    /// Echoed descriptor.
    pub desc: ObjDesc,
    /// Echoed client sequence number.
    pub seq: u64,
    /// What happened.
    pub status: PutStatus,
}

/// A read of a region of a variable version.
#[derive(Debug, Clone)]
pub struct GetRequest {
    /// Issuing application component.
    pub app: AppId,
    /// Variable to read.
    pub var: VarId,
    /// Version requested by the application. During replay the server may
    /// serve a *different* stored version (the one the original execution
    /// observed); the response records what was actually served.
    pub version: Version,
    /// Region requested.
    pub bbox: BBox,
    /// Client-side sequence number.
    pub seq: u64,
    /// Causal trace context ([`TraceCtx::NONE`] when tracing is off).
    pub tctx: TraceCtx,
}

/// One piece of a get result.
#[derive(Debug, Clone)]
pub struct GetPiece {
    /// Sub-region this piece covers (intersection of the stored block and
    /// the request bbox).
    pub bbox: BBox,
    /// Version actually served.
    pub version: Version,
    /// Stored payload of the containing block.
    pub payload: Payload,
}

/// Server reply to a [`GetRequest`].
#[derive(Debug, Clone)]
pub struct GetResponse {
    /// Echoed request identity.
    pub var: VarId,
    /// Echoed requested version.
    pub version: Version,
    /// Echoed client sequence number.
    pub seq: u64,
    /// Pieces intersecting the requested region (may be empty if nothing is
    /// stored there).
    pub pieces: Vec<GetPiece>,
}

/// Control messages from the workflow-level framework to staging servers
/// (the paper's `workflow_check` / `workflow_restart` notifications).
/// Serializable so the durable store journal can record them verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CtlRequest {
    /// `workflow_check()`: the component finished a checkpoint covering all
    /// versions `<= upto_version`.
    Checkpoint {
        /// Component that checkpointed.
        app: AppId,
        /// Highest version captured by the checkpoint.
        upto_version: Version,
    },
    /// `workflow_restart()`: the component rolled back to its last checkpoint
    /// and will re-execute from `resume_version + 1`.
    Recovery {
        /// Component that failed and restarted.
        app: AppId,
        /// Version of its restored checkpoint.
        resume_version: Version,
    },
    /// Global coordinated rollback (the Co baseline): the whole workflow
    /// returns to `to_version`, and staging discards every newer version so
    /// that re-execution re-populates it exactly like the first execution.
    GlobalReset {
        /// Version of the global coordinated checkpoint.
        to_version: Version,
    },
}

/// Server acknowledgement of a [`CtlRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtlResponse {
    /// Echoed control request.
    pub req: CtlRequest,
    /// Number of replayable log events now pending for the app (recovery
    /// only; zero otherwise). Diagnostic, used by tests.
    pub pending_replay: u64,
}

/// A [`CtlRequest`] wrapped with a client identity and sequence number.
///
/// Control requests are not idempotent (a duplicated `GlobalReset` delivered
/// after re-execution started would discard re-executed data), so clients
/// that may retry — or whose transport may duplicate — send this envelope;
/// the server dedups on `(app, seq)` and replays the recorded acknowledgement
/// for duplicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtlMsg {
    /// Issuing component (the dedup namespace; `GlobalReset` carries no app
    /// of its own).
    pub app: AppId,
    /// Client-side sequence number, unique per app.
    pub seq: u64,
    /// The wrapped control request.
    pub req: CtlRequest,
    /// Causal trace context ([`TraceCtx::NONE`] when tracing is off). Rides
    /// the envelope, *not* [`CtlRequest`] itself: the bare request is
    /// journaled verbatim by the durable store and its format must not
    /// change.
    pub tctx: TraceCtx,
}

/// Server acknowledgement of a [`CtlMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtlAck {
    /// Echoed client sequence number.
    pub seq: u64,
    /// The underlying control response.
    pub resp: CtlResponse,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_interns_stably() {
        let mut r = VarRegistry::new();
        let t = r.intern("temperature");
        let p = r.intern("pressure");
        assert_ne!(t, p);
        assert_eq!(r.intern("temperature"), t);
        assert_eq!(r.get("pressure"), Some(p));
        assert_eq!(r.name(t), Some("temperature"));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.get("missing"), None);
        assert_eq!(r.name(99), None);
    }

    #[test]
    fn desc_equality_by_value() {
        let a = ObjDesc { var: 1, version: 2, bbox: BBox::d1(0, 9) };
        let b = ObjDesc { var: 1, version: 2, bbox: BBox::d1(0, 9) };
        assert_eq!(a, b);
    }
}
