//! Domain distribution: global domain → fixed-size blocks → server ownership.
//!
//! The global domain is decomposed into a regular grid of blocks. Each block's
//! coordinate is Morton-encoded ([`crate::sfc`]) and the sorted sequence of
//! codes is range-partitioned across the staging servers, mirroring
//! DataSpaces' space-filling-curve distribution: every server owns a
//! contiguous SFC segment, so spatially adjacent blocks usually share a
//! server.

use crate::geometry::{BBox, MAX_DIMS};
use crate::hilbert::hilbert3;
use crate::sfc::morton3;
use serde::{Deserialize, Serialize};

/// Staging server index.
pub type ServerIdx = usize;

/// Which space-filling curve linearizes the block grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Curve {
    /// Morton (Z-order): cheap to compute, good locality.
    #[default]
    Morton,
    /// Hilbert: strictly better locality (every consecutive pair of indices
    /// is spatially adjacent) — the curve DataSpaces itself uses.
    Hilbert,
}

/// Immutable description of how the domain is partitioned.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Distribution {
    /// The global domain.
    pub domain: BBox,
    /// Block extent per axis (axes beyond `domain.ndim` must be 1).
    pub block: [u64; MAX_DIMS],
    /// Number of staging servers.
    pub nservers: usize,
    /// Space-filling curve in use.
    pub curve: Curve,
    /// Hilbert order (bits per axis), when the curve is Hilbert.
    order: u32,
    /// Sorted SFC codes of every block in the grid.
    codes: Vec<u64>,
}

impl Distribution {
    /// Build a Morton-distributed decomposition. `block` extents are clamped
    /// to the domain.
    pub fn new(domain: BBox, block: [u64; MAX_DIMS], nservers: usize) -> Self {
        Self::with_curve(domain, block, nservers, Curve::Morton)
    }

    /// Build a distribution along the chosen space-filling curve.
    #[allow(clippy::needless_range_loop)] // indexes two arrays by dimension
    pub fn with_curve(
        domain: BBox,
        mut block: [u64; MAX_DIMS],
        nservers: usize,
        curve: Curve,
    ) -> Self {
        assert!(nservers > 0, "need at least one server");
        for d in 0..MAX_DIMS {
            if d < domain.ndim as usize {
                assert!(block[d] > 0, "zero block extent");
                block[d] = block[d].min(domain.extent(d));
            } else {
                block[d] = 1;
            }
        }
        let counts = Self::grid_counts(&domain, &block);
        // Hilbert order: enough bits for the largest axis (minimum 1).
        let order = counts
            .iter()
            .map(|&c| 64 - c.saturating_sub(1).leading_zeros())
            .max()
            .unwrap_or(1)
            .max(1);
        let encode = |bx: u64, by: u64, bz: u64| match curve {
            Curve::Morton => morton3(bx, by, bz),
            Curve::Hilbert => hilbert3(order, bx, by, bz),
        };
        let mut codes = Vec::with_capacity((counts[0] * counts[1] * counts[2]) as usize);
        for bz in 0..counts[2] {
            for by in 0..counts[1] {
                for bx in 0..counts[0] {
                    codes.push(encode(bx, by, bz));
                }
            }
        }
        codes.sort_unstable();
        Distribution { domain, block, nservers, curve, order, codes }
    }

    fn grid_counts(domain: &BBox, block: &[u64; MAX_DIMS]) -> [u64; MAX_DIMS] {
        let mut c = [1u64; MAX_DIMS];
        for d in 0..domain.ndim as usize {
            c[d] = domain.extent(d).div_ceil(block[d]);
        }
        c
    }

    /// Number of blocks in the grid.
    pub fn nblocks(&self) -> usize {
        self.codes.len()
    }

    /// Blocks per axis.
    pub fn counts(&self) -> [u64; MAX_DIMS] {
        Self::grid_counts(&self.domain, &self.block)
    }

    /// The block coordinate containing a grid point.
    pub fn block_of_point(&self, p: [u64; MAX_DIMS]) -> [u64; MAX_DIMS] {
        let mut b = [0u64; MAX_DIMS];
        for d in 0..self.domain.ndim as usize {
            debug_assert!(p[d] >= self.domain.lb[d]);
            b[d] = (p[d] - self.domain.lb[d]) / self.block[d];
        }
        b
    }

    /// The region covered by block `coord`, clipped to the domain.
    pub fn block_bbox(&self, coord: [u64; MAX_DIMS]) -> BBox {
        let mut lb = [0u64; MAX_DIMS];
        let mut ub = [0u64; MAX_DIMS];
        for d in 0..self.domain.ndim as usize {
            lb[d] = self.domain.lb[d] + coord[d] * self.block[d];
            ub[d] = (lb[d] + self.block[d] - 1).min(self.domain.ub[d]);
        }
        BBox { ndim: self.domain.ndim, lb, ub }
    }

    /// The SFC code of block `coord` — the block's key in partition maps
    /// (`shardmap`) and spatial indexes.
    pub fn block_code(&self, coord: [u64; MAX_DIMS]) -> u64 {
        match self.curve {
            Curve::Morton => morton3(coord[0], coord[1], coord[2]),
            Curve::Hilbert => hilbert3(self.order, coord[0], coord[1], coord[2]),
        }
    }

    /// The sorted SFC codes of every block in the grid (the key universe a
    /// range partition map is built over).
    pub fn codes(&self) -> &[u64] {
        &self.codes
    }

    /// Server owning block `coord`, by rank of its SFC code.
    pub fn server_of_block(&self, coord: [u64; MAX_DIMS]) -> ServerIdx {
        let code = self.block_code(coord);
        let rank = self.codes.binary_search(&code).expect("block coordinate outside the grid");
        rank * self.nservers / self.codes.len()
    }

    /// Enumerate `(block_coord, clipped_bbox, server)` for every block that
    /// intersects `bbox`. The clipped bbox is the intersection of the block
    /// with both the domain and `bbox`.
    pub fn blocks_overlapping(&self, bbox: &BBox) -> Vec<([u64; MAX_DIMS], BBox, ServerIdx)> {
        let q = bbox.intersect(&self.domain).expect("query bbox outside the domain");
        let lo = self.block_of_point(q.lb);
        let hi = self.block_of_point(q.ub);
        let mut out = Vec::new();
        for bz in lo[2]..=hi[2] {
            for by in lo[1]..=hi[1] {
                for bx in lo[0]..=hi[0] {
                    let coord = [bx, by, bz];
                    let blk = self.block_bbox(coord);
                    let clipped = blk.intersect(&q).expect("grid arithmetic");
                    out.push((coord, clipped, self.server_of_block(coord)));
                }
            }
        }
        out
    }

    /// All blocks owned by `server` (inspection / rebalance tooling).
    pub fn blocks_of_server(&self, server: ServerIdx) -> Vec<u64> {
        let n = self.codes.len();
        self.codes
            .iter()
            .enumerate()
            .filter(|(rank, _)| rank * self.nservers / n == server)
            .map(|(_, &c)| c)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d3(dims: [u64; 3]) -> BBox {
        BBox::whole(dims)
    }

    #[test]
    fn grid_counts_round_up() {
        let dist = Distribution::new(d3([100, 100, 10]), [32, 32, 32], 4);
        assert_eq!(dist.counts(), [4, 4, 1]);
        assert_eq!(dist.nblocks(), 16);
    }

    #[test]
    fn block_bbox_clipped_at_edges() {
        let dist = Distribution::new(d3([100, 1, 1]), [32, 1, 1], 2);
        assert_eq!(dist.block_bbox([3, 0, 0]).ub[0], 99);
        assert_eq!(dist.block_bbox([0, 0, 0]), BBox::d3([0, 0, 0], [31, 0, 0]));
    }

    #[test]
    fn every_block_has_exactly_one_server() {
        let dist = Distribution::new(d3([64, 64, 64]), [16, 16, 16], 5);
        let mut per_server = vec![0usize; 5];
        let counts = dist.counts();
        for bz in 0..counts[2] {
            for by in 0..counts[1] {
                for bx in 0..counts[0] {
                    per_server[dist.server_of_block([bx, by, bz])] += 1;
                }
            }
        }
        assert_eq!(per_server.iter().sum::<usize>(), dist.nblocks());
        // Range partition of 64 blocks over 5 servers: sizes 12..=13.
        for &c in &per_server {
            assert!((12..=13).contains(&c), "imbalanced: {per_server:?}");
        }
    }

    #[test]
    fn overlap_enumeration_covers_query() {
        let dist = Distribution::new(d3([100, 80, 60]), [32, 32, 32], 3);
        let q = BBox::d3([10, 10, 10], [70, 50, 40]);
        let blocks = dist.blocks_overlapping(&q);
        let vol: u64 = blocks.iter().map(|(_, b, _)| b.volume()).sum();
        assert_eq!(vol, q.volume(), "clipped blocks must tile the query");
        // All pieces inside the query.
        for (_, b, _) in &blocks {
            assert!(q.contains(b));
        }
    }

    #[test]
    fn single_point_query() {
        let dist = Distribution::new(d3([100, 100, 100]), [10, 10, 10], 7);
        let q = BBox::d3([55, 55, 55], [55, 55, 55]);
        let blocks = dist.blocks_overlapping(&q);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].0, [5, 5, 5]);
        assert_eq!(blocks[0].1, q);
    }

    #[test]
    fn sfc_locality_neighbours_often_colocated() {
        // With 512 blocks over 8 servers, the SFC should keep most
        // face-neighbours on the same server (locality property).
        let dist = Distribution::new(d3([128, 128, 128]), [16, 16, 16], 8);
        let mut same = 0;
        let mut total = 0;
        for bz in 0..8u64 {
            for by in 0..8u64 {
                for bx in 0..7u64 {
                    total += 1;
                    if dist.server_of_block([bx, by, bz]) == dist.server_of_block([bx + 1, by, bz])
                    {
                        same += 1;
                    }
                }
            }
        }
        assert!(same * 2 > total, "expected >50% x-neighbours colocated, got {same}/{total}");
    }

    fn neighbour_colocation(dist: &Distribution, n: u64) -> (usize, usize) {
        let mut same = 0;
        let mut total = 0;
        for bz in 0..n {
            for by in 0..n {
                for bx in 0..n.saturating_sub(1) {
                    total += 1;
                    if dist.server_of_block([bx, by, bz]) == dist.server_of_block([bx + 1, by, bz])
                    {
                        same += 1;
                    }
                }
            }
        }
        (same, total)
    }

    #[test]
    fn hilbert_distribution_covers_all_blocks() {
        let dist = Distribution::with_curve(d3([64, 64, 64]), [16, 16, 16], 5, Curve::Hilbert);
        let mut per_server = vec![0usize; 5];
        let counts = dist.counts();
        for bz in 0..counts[2] {
            for by in 0..counts[1] {
                for bx in 0..counts[0] {
                    per_server[dist.server_of_block([bx, by, bz])] += 1;
                }
            }
        }
        assert_eq!(per_server.iter().sum::<usize>(), dist.nblocks());
        for &c in &per_server {
            assert!((12..=13).contains(&c), "imbalanced: {per_server:?}");
        }
    }

    #[test]
    fn hilbert_locality_at_least_morton() {
        // 8x8x8 block grid over 8 servers: the Hilbert partition keeps at
        // least as many x-neighbours colocated as Morton does.
        let morton = Distribution::with_curve(d3([128, 128, 128]), [16, 16, 16], 8, Curve::Morton);
        let hilbert =
            Distribution::with_curve(d3([128, 128, 128]), [16, 16, 16], 8, Curve::Hilbert);
        let (ms, total) = neighbour_colocation(&morton, 8);
        let (hs, _) = neighbour_colocation(&hilbert, 8);
        assert!(hs >= ms, "Hilbert colocation ({hs}/{total}) must be >= Morton ({ms}/{total})");
    }

    #[test]
    fn non_power_of_two_grid_works_with_hilbert() {
        let dist = Distribution::with_curve(d3([100, 80, 60]), [32, 32, 32], 3, Curve::Hilbert);
        let q = BBox::d3([10, 10, 10], [70, 50, 40]);
        let blocks = dist.blocks_overlapping(&q);
        let vol: u64 = blocks.iter().map(|(_, b, _)| b.volume()).sum();
        assert_eq!(vol, q.volume());
    }

    #[test]
    fn blocks_of_server_partition() {
        let dist = Distribution::new(d3([64, 64, 1]), [16, 16, 1], 3);
        let all: usize = (0..3).map(|s| dist.blocks_of_server(s).len()).sum();
        assert_eq!(all, dist.nblocks());
    }

    #[test]
    fn oversized_block_clamped() {
        let dist = Distribution::new(d3([10, 10, 10]), [100, 100, 100], 2);
        assert_eq!(dist.nblocks(), 1);
        assert_eq!(dist.block_bbox([0, 0, 0]), d3([10, 10, 10]));
    }

    #[test]
    #[should_panic(expected = "outside the domain")]
    fn query_outside_domain_panics() {
        let dist = Distribution::new(d3([10, 10, 10]), [5, 5, 5], 2);
        let _ = dist.blocks_overlapping(&BBox::d3([20, 20, 20], [30, 30, 30]));
    }
}
