#![forbid(unsafe_code)]

//! Deterministic, versioned partition maps for the sharded staging fleet.
//!
//! A [`ShardMap`] is a pure function from a block key (the Morton/Hilbert
//! code of a staging block) to the shard that owns it. It is explicitly
//! serializable — the map is configuration, not emergent state — and every
//! mutation produces a *new* map with a bumped [`ShardMap::version`], so two
//! processes holding the same version route identically by construction.
//!
//! Two assignment modes cover the fleet's needs:
//!
//! * [`AssignMode::Range`] — contiguous SFC-code ranges, reproducing the
//!   staging tier's classic `rank * nservers / nblocks` partition exactly
//!   (spatial locality preserved: adjacent blocks usually share a shard);
//! * [`AssignMode::Hashed`] — rendezvous (highest-random-weight) hashing,
//!   trading locality for placement that stays stable when shards are
//!   added: moving from N to N+1 shards relocates only ~1/(N+1) of keys.
//!
//! Either mode is refined by an explicit **override table** consulted
//! first: [`ShardMap::migrate`] records per-key exceptions, which is how
//! live rebalancing moves a block range to a new owner without recomputing
//! (or redistributing) the base assignment.
//!
//! Routing must also be correct *across time*: once a block's pieces for
//! data version `v` have been journaled on shard `s`, gets and replays of
//! version `v` must keep going to `s` even after the block migrates. A
//! [`MapHistory`] holds the map epochs keyed by the first data version each
//! governs, and [`MapHistory::owner_at`] routes by `(key, version)` — the
//! rebalance cutover is then just a new epoch, with no data copied and no
//! consistency window.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A shard index (a staging server in the fleet).
pub type ShardIdx = usize;

/// How a map assigns keys that have no override entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AssignMode {
    /// Contiguous key ranges: `boundaries[i]` is the smallest key owned by
    /// shard `i + 1`; keys below `boundaries[0]` belong to shard 0. Sorted,
    /// `nshards - 1` entries (an empty tail shard is encoded by
    /// `u64::MAX`).
    Range {
        /// Ascending lower bounds of shards `1..nshards`.
        boundaries: Vec<u64>,
    },
    /// Rendezvous (highest-random-weight) hashing seeded by `seed`: the
    /// owner of `key` is the shard maximizing `mix(seed, key, shard)`.
    Hashed {
        /// Hash seed; maps with different seeds are different placements.
        seed: u64,
    },
}

/// SplitMix64 finalizer: the deterministic mixing function behind
/// [`AssignMode::Hashed`]. Public so tests and tooling can predict
/// placements.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A versioned, serializable partition map over block keys.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardMap {
    /// Monotonic map version; bumped by every [`ShardMap::migrate`].
    version: u64,
    /// Number of shards keys are partitioned across.
    nshards: usize,
    /// Base assignment for keys without an override.
    mode: AssignMode,
    /// Explicit exceptions, consulted before `mode`. BTreeMap: iteration
    /// order is part of the serialized form and must be stable.
    overrides: BTreeMap<u64, ShardIdx>,
}

impl ShardMap {
    /// A range map over the sorted key universe `codes`, reproducing the
    /// `rank * nshards / codes.len()` partition: the key of rank `r` is
    /// owned by shard `r * nshards / codes.len()`.
    ///
    /// # Panics
    /// If `nshards` is zero or `codes` is not strictly ascending.
    pub fn range_over(codes: &[u64], nshards: usize) -> ShardMap {
        assert!(nshards > 0, "need at least one shard");
        assert!(codes.windows(2).all(|w| w[0] < w[1]), "codes must be strictly ascending");
        let n = codes.len();
        let boundaries = (1..nshards)
            .map(|s| {
                // First rank owned by shard s: smallest r with r*nshards/n >= s.
                let first = (s * n).div_ceil(nshards);
                codes.get(first).copied().unwrap_or(u64::MAX)
            })
            .collect();
        ShardMap {
            version: 1,
            nshards,
            mode: AssignMode::Range { boundaries },
            overrides: BTreeMap::new(),
        }
    }

    /// A rendezvous-hashed map: placement is a pure function of
    /// `(seed, key, shard)`, needs no key universe, and stays mostly stable
    /// as `nshards` grows.
    ///
    /// # Panics
    /// If `nshards` is zero.
    pub fn hashed(nshards: usize, seed: u64) -> ShardMap {
        assert!(nshards > 0, "need at least one shard");
        ShardMap {
            version: 1,
            nshards,
            mode: AssignMode::Hashed { seed },
            overrides: BTreeMap::new(),
        }
    }

    /// The map version (bumped on every migration).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Number of shards.
    pub fn nshards(&self) -> usize {
        self.nshards
    }

    /// Keys currently carried in the override table, ascending.
    pub fn override_keys(&self) -> Vec<u64> {
        self.overrides.keys().copied().collect()
    }

    /// The shard owning `key`: the override table first, then the base
    /// assignment. Always in `0..nshards`.
    pub fn owner_of(&self, key: u64) -> ShardIdx {
        if let Some(&s) = self.overrides.get(&key) {
            return s;
        }
        match &self.mode {
            AssignMode::Range { boundaries } => boundaries.partition_point(|&b| b <= key),
            AssignMode::Hashed { seed } => {
                let mut best = 0;
                let mut best_w = 0u64;
                for s in 0..self.nshards {
                    let w =
                        mix64(seed ^ mix64(key) ^ (s as u64).wrapping_mul(0xA24B_AED4_963E_E407));
                    if s == 0 || w > best_w {
                        best = s;
                        best_w = w;
                    }
                }
                best
            }
        }
    }

    /// A new map (version + 1) with `keys` reassigned to shard `to` via the
    /// override table. Overrides that become redundant are still recorded —
    /// the table is an explicit audit trail of migrations.
    ///
    /// # Panics
    /// If `to` is out of range.
    pub fn migrate(&self, keys: &[u64], to: ShardIdx) -> ShardMap {
        assert!(to < self.nshards, "destination shard {to} out of range ({})", self.nshards);
        let mut next = self.clone();
        next.version += 1;
        for &k in keys {
            next.overrides.insert(k, to);
        }
        next
    }

    /// Serialize to a canonical JSON document (stable field and override
    /// order — byte-identical for equal maps).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("shard map serializes")
    }

    /// Parse a map serialized by [`ShardMap::to_json`].
    pub fn from_json(doc: &str) -> Result<ShardMap, String> {
        let map: ShardMap = serde_json::from_str(doc).map_err(|e| e.to_string())?;
        if map.nshards == 0 {
            return Err("shard map with zero shards".into());
        }
        for (&k, &s) in &map.overrides {
            if s >= map.nshards {
                return Err(format!("override {k} -> {s} out of range ({})", map.nshards));
            }
        }
        Ok(map)
    }
}

/// One epoch of a [`MapHistory`]: `map` governs all data versions at or
/// above `from_version` (until the next epoch starts).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Epoch {
    /// First data version routed by this epoch's map.
    pub from_version: u64,
    /// The partition map in force.
    pub map: ShardMap,
}

/// The full routing history: map epochs keyed by the data version at which
/// each took effect. Routing a `(key, version)` pair through the epoch that
/// governed `version` keeps historical reads and journal replay pointed at
/// the shard that actually holds the data, across any number of
/// rebalances.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MapHistory {
    epochs: Vec<Epoch>,
}

impl MapHistory {
    /// A history with a single epoch governing every version.
    pub fn single(map: ShardMap) -> MapHistory {
        MapHistory { epochs: vec![Epoch { from_version: 0, map }] }
    }

    /// Append an epoch taking effect at data version `from_version`.
    ///
    /// # Panics
    /// If `from_version` does not increase, the map version does not
    /// increase, or the shard count changes (growing the fleet is a new
    /// history, not an epoch).
    pub fn with_epoch(mut self, from_version: u64, map: ShardMap) -> MapHistory {
        let last = self.epochs.last().expect("history always has an epoch");
        assert!(from_version > last.from_version, "epochs must start at increasing versions");
        assert!(map.version() > last.map.version(), "map version must increase across epochs");
        assert_eq!(map.nshards(), last.map.nshards(), "epochs must keep the shard count");
        self.epochs.push(Epoch { from_version, map });
        MapHistory { epochs: self.epochs }
    }

    /// The map governing data version `version`.
    pub fn map_at(&self, version: u64) -> &ShardMap {
        let idx = self.epochs.partition_point(|e| e.from_version <= version);
        &self.epochs[idx.saturating_sub(1)].map
    }

    /// The newest map (routes writes of new versions).
    pub fn current(&self) -> &ShardMap {
        &self.epochs.last().expect("history always has an epoch").map
    }

    /// The shard owning `key` for data version `version`.
    pub fn owner_at(&self, key: u64, version: u64) -> ShardIdx {
        self.map_at(version).owner_of(key)
    }

    /// Shards that own `key` in *any* epoch, ascending and deduplicated —
    /// the fan-out set for key-targeted control traffic that must reach
    /// every shard possibly holding the key's history.
    pub fn owners_across(&self, key: u64) -> Vec<ShardIdx> {
        let mut owners: Vec<ShardIdx> = self.epochs.iter().map(|e| e.map.owner_of(key)).collect();
        owners.sort_unstable();
        owners.dedup();
        owners
    }

    /// Number of shards (constant across epochs).
    pub fn nshards(&self) -> usize {
        self.current().nshards()
    }

    /// Number of rebalance transitions recorded (epochs beyond the first).
    pub fn rebalances(&self) -> u64 {
        (self.epochs.len() - 1) as u64
    }

    /// The epochs, oldest first.
    pub fn epochs(&self) -> &[Epoch] {
        &self.epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(n: u64) -> Vec<u64> {
        (0..n).map(|i| i * 3 + 1).collect()
    }

    #[test]
    fn range_map_reproduces_rank_partition() {
        let cs = codes(64);
        for nshards in [1usize, 2, 3, 5, 8] {
            let map = ShardMap::range_over(&cs, nshards);
            for (rank, &c) in cs.iter().enumerate() {
                assert_eq!(
                    map.owner_of(c),
                    rank * nshards / cs.len(),
                    "rank {rank} of {} over {nshards}",
                    cs.len()
                );
            }
        }
    }

    #[test]
    fn range_map_with_more_shards_than_keys() {
        let cs = codes(3);
        let map = ShardMap::range_over(&cs, 8);
        for &c in &cs {
            assert!(map.owner_of(c) < 8);
        }
        // All three keys placed, each on its own shard.
        let owners: Vec<_> = cs.iter().map(|&c| map.owner_of(c)).collect();
        assert_eq!(owners.len(), 3);
        assert!(owners.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn hashed_owner_total_and_stable() {
        let map = ShardMap::hashed(5, 42);
        for key in 0..1000u64 {
            let o = map.owner_of(key);
            assert!(o < 5);
            assert_eq!(o, map.owner_of(key), "pure function of the key");
        }
        // All shards get some keys (rendezvous balance over 1000 keys).
        let mut counts = [0usize; 5];
        for key in 0..1000u64 {
            counts[map.owner_of(key)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 100, "shard {s} starved: {counts:?}");
        }
    }

    #[test]
    fn rendezvous_is_mostly_stable_under_growth() {
        let small = ShardMap::hashed(4, 7);
        let large = ShardMap::hashed(5, 7);
        let moved = (0..2000u64).filter(|&k| small.owner_of(k) != large.owner_of(k)).count();
        // Ideal churn is 1/5 = 400 keys; allow a wide band.
        assert!(moved < 700, "expected ~1/5 of keys to move, got {moved}/2000");
    }

    #[test]
    fn migrate_overrides_and_bumps_version() {
        let base = ShardMap::range_over(&codes(16), 4);
        let from = base.owner_of(1);
        let to = (from + 1) % 4;
        let next = base.migrate(&[1], to);
        assert_eq!(next.version(), base.version() + 1);
        assert_eq!(next.owner_of(1), to);
        assert_eq!(base.owner_of(1), from, "the source map is unchanged");
        // Unmigrated keys keep their owner.
        for &c in &codes(16)[1..] {
            assert_eq!(next.owner_of(c), base.owner_of(c));
        }
        assert_eq!(next.override_keys(), vec![1]);
    }

    #[test]
    fn json_round_trip_is_byte_stable() {
        let map = ShardMap::range_over(&codes(16), 4).migrate(&[4, 7], 2);
        let doc = map.to_json();
        let back = ShardMap::from_json(&doc).unwrap();
        assert_eq!(back, map);
        assert_eq!(back.to_json(), doc, "canonical form survives the round trip");
    }

    #[test]
    fn from_json_rejects_bad_overrides() {
        let map = ShardMap::hashed(2, 1).migrate(&[9], 1);
        let doc = map.to_json().replace("\"9\":1", "\"9\":5");
        assert!(ShardMap::from_json(&doc).unwrap_err().contains("out of range"));
    }

    #[test]
    fn history_routes_by_version() {
        let cs = codes(8);
        let base = ShardMap::range_over(&cs, 4);
        let key = cs[0];
        let from = base.owner_of(key);
        let to = (from + 2) % 4;
        let hist = MapHistory::single(base.clone()).with_epoch(6, base.migrate(&[key], to));
        for v in 0..6u64 {
            assert_eq!(hist.owner_at(key, v), from, "pre-cutover version {v}");
        }
        for v in 6..12u64 {
            assert_eq!(hist.owner_at(key, v), to, "post-cutover version {v}");
        }
        assert_eq!(hist.owners_across(key), {
            let mut v = vec![from, to];
            v.sort_unstable();
            v
        });
        assert_eq!(hist.rebalances(), 1);
        assert_eq!(hist.current().version(), 2);
    }

    #[test]
    fn history_untouched_keys_route_identically_across_epochs() {
        let cs = codes(8);
        let base = ShardMap::range_over(&cs, 4);
        let hist = MapHistory::single(base.clone()).with_epoch(6, base.migrate(&[cs[0]], 3));
        for &c in &cs[1..] {
            assert_eq!(hist.owner_at(c, 0), hist.owner_at(c, 100));
            assert_eq!(hist.owners_across(c).len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "increasing versions")]
    fn history_rejects_non_monotonic_epochs() {
        let base = ShardMap::hashed(2, 0);
        let later = ShardMap::hashed(2, 0).migrate(&[1], 1).migrate(&[2], 1);
        let _ = MapHistory::single(base.clone())
            .with_epoch(5, base.migrate(&[1], 1))
            .with_epoch(5, later);
    }

    #[test]
    fn mix64_spreads() {
        // Adjacent inputs land far apart (sanity, not a statistical test).
        assert_ne!(mix64(0), mix64(1));
        assert_ne!(mix64(1) & 0xFFFF, mix64(2) & 0xFFFF);
    }
}
