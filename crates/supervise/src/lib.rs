#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # supervise — self-healing supervision for staged workflows
//!
//! The paper's recovery story has the director orchestrate each protocol by
//! hand. This crate extracts that into a *supervision layer* in the
//! steady-state-robust idiom: every component (and staging server) lives in
//! its own **failure domain**; a [`Supervisor`] watches the domains, decides
//! how a dead one comes back, and keeps one domain's misbehaviour from
//! wedging the rest of the workflow.
//!
//! The pieces:
//!
//! * [`backoff`] — capped-exponential restart backoff plus a crash-loop
//!   **breaker**: a domain that keeps dying within a rolling window gets its
//!   restarts held back for a cool-down instead of hot-looping.
//! * [`domain`] — the per-domain restart state machine
//!   (`Healthy → Down → Restarting → Healthy`), outage/MTTR accounting, and
//!   poison-input hit tracking.
//! * [`dlq`] — the dead-letter queue: a poison input that kills its consumer
//!   `N` times is *quarantined* — recorded as a [`dlq::DeadLetter`] persisted
//!   through `logstore` — so the workflow completes without it instead of
//!   crash-looping forever.
//! * [`supervisor`] — the brain tying it together: feed it deaths and
//!   recoveries (with virtual-time timestamps), get back a
//!   [`supervisor::Verdict`] (restart after a delay, or quarantine the
//!   poison and then restart).
//!
//! The crate is engine-agnostic on purpose: timestamps are plain `u64`
//! nanoseconds supplied by the caller (the DES runner passes its virtual
//! clock), there is no wallclock, no ambient RNG, and iteration is ordered —
//! the whole layer is deterministic and replayable, so same-seed supervised
//! runs produce byte-identical reports.

pub mod backoff;
pub mod dlq;
pub mod domain;
pub mod supervisor;

pub use backoff::{BackoffCfg, Breaker, BreakerState};
pub use dlq::{DeadLetter, DeadLetterQueue};
pub use domain::{DomainHealth, DomainKey, FailureDomain};
pub use supervisor::{DeathCause, Supervisor, SupervisorCfg, Verdict};

use serde::{Deserialize, Serialize};

/// How a supervised component is brought back after a fail-stop, selectable
/// per component (heterogeneous recovery — Mulone et al.'s per-task policies).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RecoveryPolicy {
    /// Roll back to the last checkpoint: ULFM repair, restore the checkpoint
    /// from its storage tier, then re-execute with staging absorbing re-puts
    /// and replaying gets (the paper's scheme).
    #[default]
    Checkpoint,
    /// Roll back without re-reading the checkpoint image: ULFM repair plus
    /// staging-client reconnection only, with the staging event log replaying
    /// everything past the resume point. Valid only under logging protocols —
    /// the journal *is* the recovery state.
    JournalReplay,
    /// Restart the process where it stood: no rollback, no staging recovery
    /// round; the current step re-executes from its beginning and in-flight
    /// requests are simply re-issued (localised recovery — Dichev et al.).
    RestartInPlace,
}

impl RecoveryPolicy {
    /// Does this policy roll the component's step counter back to its last
    /// checkpoint (vs. resuming in place)?
    pub fn rolls_back(&self) -> bool {
        !matches!(self, RecoveryPolicy::RestartInPlace)
    }

    /// Does this policy require the staging event log (a logging protocol)?
    pub fn needs_log(&self) -> bool {
        matches!(self, RecoveryPolicy::JournalReplay)
    }

    /// Short label for traces and reports.
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::Checkpoint => "checkpoint",
            RecoveryPolicy::JournalReplay => "journal-replay",
            RecoveryPolicy::RestartInPlace => "in-place",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_predicates() {
        assert!(RecoveryPolicy::Checkpoint.rolls_back());
        assert!(RecoveryPolicy::JournalReplay.rolls_back());
        assert!(!RecoveryPolicy::RestartInPlace.rolls_back());
        assert!(RecoveryPolicy::JournalReplay.needs_log());
        assert!(!RecoveryPolicy::Checkpoint.needs_log());
        assert_eq!(RecoveryPolicy::default(), RecoveryPolicy::Checkpoint);
    }

    #[test]
    fn policy_serde_round_trips() {
        for p in [
            RecoveryPolicy::Checkpoint,
            RecoveryPolicy::JournalReplay,
            RecoveryPolicy::RestartInPlace,
        ] {
            let j = serde_json::to_string(&p).unwrap();
            let back: RecoveryPolicy = serde_json::from_str(&j).unwrap();
            assert_eq!(back, p);
        }
    }
}
