//! Capped-exponential restart backoff and the crash-loop breaker.
//!
//! Backoff answers "how long before the next restart attempt"; the breaker
//! answers "should we keep hot-restarting at all". A domain that dies once
//! restarts after the base delay. Consecutive deaths (no recovery between
//! them) double the delay up to a cap. Deaths arriving faster than the
//! breaker's rolling window tolerates trip the breaker: restarts are then
//! held back for a cool-down period (the breaker is *open*), after which one
//! probe restart is allowed (*half-open*); a clean recovery closes it again.

use serde::{Deserialize, Serialize};

/// Backoff and breaker parameters. All times are nanoseconds of the caller's
/// clock (virtual time under the DES).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackoffCfg {
    /// Delay before the first restart of an outage.
    pub base_ns: u64,
    /// Ceiling on the per-restart delay.
    pub cap_ns: u64,
    /// Deaths within [`BackoffCfg::window_ns`] that trip the breaker.
    pub threshold: u32,
    /// Rolling window the threshold counts within.
    pub window_ns: u64,
    /// How long a tripped breaker holds restarts back.
    pub cooldown_ns: u64,
}

impl Default for BackoffCfg {
    fn default() -> Self {
        BackoffCfg {
            base_ns: 20_000_000, // 20 ms
            cap_ns: 640_000_000, // 640 ms
            threshold: 3,
            window_ns: 10_000_000_000,  // 10 s
            cooldown_ns: 2_000_000_000, // 2 s
        }
    }
}

impl BackoffCfg {
    /// The capped-exponential delay for restart attempt `n` (1-based).
    pub fn delay_ns(&self, attempt: u32) -> u64 {
        if attempt <= 1 {
            return self.base_ns.min(self.cap_ns);
        }
        let shift = (attempt - 1).min(32);
        self.base_ns.saturating_shl(shift).min(self.cap_ns)
    }
}

/// Saturating left shift (u64 lacks one in stable std).
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: restarts flow with exponential backoff.
    Closed,
    /// Tripped: restarts held until the cool-down expires (timestamp ns).
    Open {
        /// When the cool-down ends and a probe restart may go out.
        until_ns: u64,
    },
    /// One probe restart is in flight; a recovery closes the breaker, a
    /// death re-opens it.
    HalfOpen,
}

/// Crash-loop breaker over a rolling death window.
#[derive(Debug, Clone)]
pub struct Breaker {
    cfg: BackoffCfg,
    state: BreakerState,
    /// Recent death timestamps (ns), pruned to the rolling window.
    deaths: Vec<u64>,
    /// Times the breaker tripped (diagnostics).
    trips: u64,
}

impl Breaker {
    /// A closed breaker with `cfg`'s window and threshold.
    pub fn new(cfg: BackoffCfg) -> Breaker {
        Breaker { cfg, state: BreakerState::Closed, deaths: Vec::new(), trips: 0 }
    }

    /// Current position.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Record a death at `now_ns`; returns the restart delay the breaker
    /// imposes *on top of* exponential backoff (0 when closed).
    pub fn on_death(&mut self, now_ns: u64) -> u64 {
        self.deaths.push(now_ns);
        let floor = now_ns.saturating_sub(self.cfg.window_ns);
        self.deaths.retain(|&t| t >= floor);
        match self.state {
            BreakerState::HalfOpen => {
                // The probe died: straight back to open.
                self.trips += 1;
                let until = now_ns + self.cfg.cooldown_ns;
                self.state = BreakerState::Open { until_ns: until };
                self.cfg.cooldown_ns
            }
            BreakerState::Open { until_ns } => until_ns.saturating_sub(now_ns),
            BreakerState::Closed => {
                if self.deaths.len() as u32 >= self.cfg.threshold {
                    self.trips += 1;
                    let until = now_ns + self.cfg.cooldown_ns;
                    self.state = BreakerState::Open { until_ns: until };
                    self.cfg.cooldown_ns
                } else {
                    0
                }
            }
        }
    }

    /// The restart scheduled after an open cool-down is the probe: move to
    /// half-open. No-op when closed.
    pub fn on_restart_issued(&mut self, now_ns: u64) {
        if let BreakerState::Open { until_ns } = self.state {
            if now_ns >= until_ns {
                self.state = BreakerState::HalfOpen;
            }
        }
    }

    /// A recovery closes the breaker and clears the rolling window.
    pub fn on_recovered(&mut self) {
        self.state = BreakerState::Closed;
        self.deaths.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BackoffCfg {
        BackoffCfg { base_ns: 10, cap_ns: 80, threshold: 3, window_ns: 1_000, cooldown_ns: 500 }
    }

    #[test]
    fn backoff_caps() {
        let c = cfg();
        assert_eq!(c.delay_ns(1), 10);
        assert_eq!(c.delay_ns(2), 20);
        assert_eq!(c.delay_ns(3), 40);
        assert_eq!(c.delay_ns(4), 80);
        assert_eq!(c.delay_ns(5), 80, "capped");
        assert_eq!(c.delay_ns(64), 80, "shift saturates");
    }

    #[test]
    fn breaker_trips_on_threshold_within_window() {
        let mut b = Breaker::new(cfg());
        assert_eq!(b.on_death(0), 0);
        assert_eq!(b.on_death(100), 0);
        let extra = b.on_death(200); // third death inside the window
        assert_eq!(extra, 500, "cooldown imposed");
        assert!(matches!(b.state(), BreakerState::Open { until_ns: 700 }));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn slow_deaths_never_trip() {
        let mut b = Breaker::new(cfg());
        assert_eq!(b.on_death(0), 0);
        assert_eq!(b.on_death(2_000), 0);
        assert_eq!(b.on_death(4_000), 0, "window pruned; never 3 at once");
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_cycle() {
        let mut b = Breaker::new(cfg());
        b.on_death(0);
        b.on_death(10);
        b.on_death(20); // trips; open until 520
        b.on_restart_issued(520);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Probe dies: re-open with a fresh cooldown.
        assert_eq!(b.on_death(530), 500);
        assert!(matches!(b.state(), BreakerState::Open { until_ns: 1030 }));
        b.on_restart_issued(1030);
        b.on_recovered();
        assert_eq!(b.state(), BreakerState::Closed);
        // Window cleared: the next death starts a fresh count.
        assert_eq!(b.on_death(1040), 0);
    }

    #[test]
    fn restart_before_cooldown_stays_open() {
        let mut b = Breaker::new(cfg());
        b.on_death(0);
        b.on_death(1);
        b.on_death(2); // open until 502
        b.on_restart_issued(100); // too early: not the probe
        assert!(matches!(b.state(), BreakerState::Open { .. }));
    }
}
