//! Dead-letter quarantine: poison inputs are shed, not retried forever.
//!
//! When the breaker decides an input is a showstopper — it has killed its
//! consumer `N` times — the supervisor writes a [`DeadLetter`] describing it
//! and the consumer skips that input from then on. Letters are held in
//! memory and, when a sink is attached, persisted through `logstore` as one
//! JSON record per letter, so a post-mortem (or a re-run with the input
//! fixed) can read them back with [`DeadLetterQueue::load`].

use logstore::{LogConfig, LogStore, Media};
use serde::{Deserialize, Serialize};

/// One quarantined input: who it killed, how often, and why.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeadLetter {
    /// Label of the domain the input kept killing (e.g. `comp:2`).
    pub domain: String,
    /// The workflow step whose input is poisoned.
    pub step: u32,
    /// Deaths attributed to this input before quarantine.
    pub deaths: u32,
    /// Human-readable cause, e.g. `poison-put`.
    pub reason: String,
    /// Virtual time (ns) of the quarantine decision.
    pub at_ns: u64,
}

/// In-memory dead-letter queue with an optional `logstore` persistence sink.
pub struct DeadLetterQueue {
    letters: Vec<DeadLetter>,
    sink: Option<LogStore>,
}

impl DeadLetterQueue {
    /// An empty, memory-only queue.
    pub fn new() -> DeadLetterQueue {
        DeadLetterQueue { letters: Vec::new(), sink: None }
    }

    /// An empty queue that persists each letter through `media`.
    pub fn with_sink(media: Box<dyn Media>, cfg: LogConfig) -> std::io::Result<DeadLetterQueue> {
        let sink = LogStore::open(media, cfg)?;
        Ok(DeadLetterQueue { letters: Vec::new(), sink: Some(sink) })
    }

    /// Reload a persisted queue: every record in the store becomes a letter.
    pub fn load(media: Box<dyn Media>, cfg: LogConfig) -> std::io::Result<DeadLetterQueue> {
        let sink = LogStore::open(media, cfg)?;
        let mut letters = Vec::new();
        for rec in sink.read_all()? {
            let letter: DeadLetter = serde_json::from_slice(&rec.payload)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            letters.push(letter);
        }
        Ok(DeadLetterQueue { letters, sink: Some(sink) })
    }

    /// Quarantine `letter`: append to memory and, if a sink is attached,
    /// durably (append + flush — a letter must survive the next crash, that
    /// is its whole purpose).
    pub fn push(&mut self, letter: DeadLetter) -> std::io::Result<()> {
        if let Some(sink) = &mut self.sink {
            let payload = serde_json::to_vec(&letter)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
            sink.append(letter.at_ns, &payload)?;
            sink.flush()?;
        }
        self.letters.push(letter);
        Ok(())
    }

    /// Letters quarantined so far, in order.
    pub fn letters(&self) -> &[DeadLetter] {
        &self.letters
    }

    /// Number of letters.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }
}

impl Default for DeadLetterQueue {
    fn default() -> Self {
        DeadLetterQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore::MemMedia;

    fn letter(step: u32) -> DeadLetter {
        DeadLetter {
            domain: "comp:1".to_string(),
            step,
            deaths: 3,
            reason: "poison-put".to_string(),
            at_ns: 42_000 + step as u64,
        }
    }

    #[test]
    fn memory_only_queue() {
        let mut q = DeadLetterQueue::new();
        assert!(q.is_empty());
        q.push(letter(5)).unwrap();
        q.push(letter(9)).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.letters()[0].step, 5);
        assert_eq!(q.letters()[1].step, 9);
    }

    #[test]
    fn letters_persist_through_logstore() {
        let media = MemMedia::new();
        let mut q =
            DeadLetterQueue::with_sink(Box::new(media.clone()), LogConfig::default()).unwrap();
        q.push(letter(3)).unwrap();
        q.push(letter(7)).unwrap();
        // MemMedia clones share the backing store, so a fresh queue opened
        // over the same media sees both letters.
        let re = DeadLetterQueue::load(Box::new(media.clone()), LogConfig::default()).unwrap();
        assert_eq!(re.len(), 2);
        assert_eq!(re.letters()[0], letter(3));
        assert_eq!(re.letters()[1], letter(7));
    }

    #[test]
    fn letter_serde_round_trips() {
        let l = letter(11);
        let j = serde_json::to_string(&l).unwrap();
        let back: DeadLetter = serde_json::from_str(&j).unwrap();
        assert_eq!(back, l);
    }
}
