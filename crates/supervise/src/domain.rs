//! Per-component failure domains: the restart state machine and
//! outage/MTTR accounting.
//!
//! A *failure domain* is the blast radius of one fault — here, one workflow
//! component or one staging server. Each domain tracks its own health
//! independently so a crash-looping consumer cannot wedge its neighbours;
//! the [`crate::Supervisor`] owns one [`FailureDomain`] per key and consults
//! it when deciding a restart verdict.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Identity of a failure domain. `Ord` so supervisor iteration is
/// deterministic (domains live in a `BTreeMap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DomainKey {
    /// A workflow component, by app id.
    Component(u32),
    /// A staging server, by server index.
    Server(u32),
}

impl DomainKey {
    /// Short label for traces and dead letters, e.g. `comp:2` / `srv:0`.
    pub fn label(&self) -> String {
        match self {
            DomainKey::Component(app) => format!("comp:{app}"),
            DomainKey::Server(idx) => format!("srv:{idx}"),
        }
    }
}

/// Restart state machine position of one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainHealth {
    /// Alive and making progress.
    Healthy,
    /// Dead; no restart granted yet (backoff or breaker cool-down pending).
    Down,
    /// A restart grant is out; the domain is recovering.
    Restarting,
    /// Permanently parked: the breaker gave up on it (only used when a
    /// domain has no quarantinable input to shed — components normally go
    /// back to `Restarting` with the poison quarantined instead).
    Failed,
}

/// One failure domain's health, death history, and outage bookkeeping.
#[derive(Debug, Clone)]
pub struct FailureDomain {
    key: DomainKey,
    health: DomainHealth,
    /// Deaths with no intervening recovery (drives exponential backoff).
    consecutive: u32,
    /// Lifetime deaths.
    deaths: u64,
    /// Lifetime completed recoveries.
    recovered: u64,
    /// Virtual time the *current* outage began (first death of the streak).
    outage_start_ns: Option<u64>,
    /// Per-step poison hit counts. Deliberately *not* cleared on recovery:
    /// the whole point is counting deaths caused by the same input across
    /// the crash loop.
    poison_hits: BTreeMap<u32, u32>,
    /// Sum of outage durations (death → recovery), for MTTR.
    outage_total_ns: u64,
    /// Longest single outage.
    outage_max_ns: u64,
    /// Virtual time of the last progress beacon (wedge detection).
    last_progress_ns: u64,
    /// Set when the domain has finished its work (exempt from wedge scans).
    finished: bool,
}

impl FailureDomain {
    /// A healthy domain for `key`.
    pub fn new(key: DomainKey) -> FailureDomain {
        FailureDomain {
            key,
            health: DomainHealth::Healthy,
            consecutive: 0,
            deaths: 0,
            recovered: 0,
            outage_start_ns: None,
            poison_hits: BTreeMap::new(),
            outage_total_ns: 0,
            outage_max_ns: 0,
            last_progress_ns: 0,
            finished: false,
        }
    }

    /// This domain's key.
    pub fn key(&self) -> DomainKey {
        self.key
    }

    /// Current health.
    pub fn health(&self) -> DomainHealth {
        self.health
    }

    /// Deaths with no intervening recovery.
    pub fn consecutive(&self) -> u32 {
        self.consecutive
    }

    /// Lifetime deaths.
    pub fn deaths(&self) -> u64 {
        self.deaths
    }

    /// Lifetime completed recoveries.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Record a death at `now_ns`. Returns the consecutive-death count
    /// (1-based restart attempt number for backoff).
    pub fn on_death(&mut self, now_ns: u64) -> u32 {
        self.deaths += 1;
        self.consecutive += 1;
        if self.outage_start_ns.is_none() {
            self.outage_start_ns = Some(now_ns);
        }
        self.health = DomainHealth::Down;
        self.consecutive
    }

    /// Record a poison hit against `step`; returns how many times this step
    /// has now killed the domain.
    pub fn on_poison_hit(&mut self, step: u32) -> u32 {
        let n = self.poison_hits.entry(step).or_insert(0);
        *n += 1;
        *n
    }

    /// Poison hits recorded against `step`.
    pub fn poison_hits(&self, step: u32) -> u32 {
        self.poison_hits.get(&step).copied().unwrap_or(0)
    }

    /// A restart grant went out.
    pub fn on_restart_granted(&mut self) {
        self.health = DomainHealth::Restarting;
    }

    /// Recovery completed at `now_ns`; closes the outage and returns its
    /// duration (0 if no outage was open).
    pub fn on_recovered(&mut self, now_ns: u64) -> u64 {
        self.health = DomainHealth::Healthy;
        self.consecutive = 0;
        self.recovered += 1;
        self.last_progress_ns = now_ns;
        match self.outage_start_ns.take() {
            Some(start) => {
                let dur = now_ns.saturating_sub(start);
                self.outage_total_ns += dur;
                self.outage_max_ns = self.outage_max_ns.max(dur);
                dur
            }
            None => 0,
        }
    }

    /// Park the domain permanently.
    pub fn on_give_up(&mut self) {
        self.health = DomainHealth::Failed;
    }

    /// Progress beacon at `now_ns` (step advanced, put absorbed, ...).
    pub fn on_progress(&mut self, now_ns: u64) {
        self.last_progress_ns = self.last_progress_ns.max(now_ns);
    }

    /// Mark the domain's work complete (exempts it from wedge scans).
    pub fn on_finished(&mut self, now_ns: u64) {
        self.finished = true;
        self.on_progress(now_ns);
    }

    /// Has the domain finished its work?
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Is the domain wedged at `now_ns`: healthy on paper, unfinished, but
    /// silent for longer than `timeout_ns`? Down/restarting domains are
    /// exempt — they are *supposed* to be silent.
    pub fn wedged(&self, now_ns: u64, timeout_ns: u64) -> bool {
        self.health == DomainHealth::Healthy
            && !self.finished
            && now_ns.saturating_sub(self.last_progress_ns) > timeout_ns
    }

    /// Sum of closed-outage durations.
    pub fn outage_total_ns(&self) -> u64 {
        self.outage_total_ns
    }

    /// Longest single closed outage.
    pub fn outage_max_ns(&self) -> u64 {
        self.outage_max_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ordering_and_labels() {
        let mut m = BTreeMap::new();
        m.insert(DomainKey::Server(1), ());
        m.insert(DomainKey::Component(2), ());
        m.insert(DomainKey::Component(0), ());
        let keys: Vec<_> = m.keys().copied().collect();
        assert_eq!(
            keys,
            vec![DomainKey::Component(0), DomainKey::Component(2), DomainKey::Server(1)]
        );
        assert_eq!(DomainKey::Component(2).label(), "comp:2");
        assert_eq!(DomainKey::Server(0).label(), "srv:0");
    }

    #[test]
    fn outage_accounting_spans_consecutive_deaths() {
        let mut d = FailureDomain::new(DomainKey::Component(0));
        assert_eq!(d.on_death(100), 1);
        d.on_restart_granted();
        // Dies again during its own recovery: same outage.
        assert_eq!(d.on_death(150), 2);
        d.on_restart_granted();
        let dur = d.on_recovered(400);
        assert_eq!(dur, 300, "outage measured from FIRST death");
        assert_eq!(d.outage_total_ns(), 300);
        assert_eq!(d.outage_max_ns(), 300);
        assert_eq!(d.consecutive(), 0);
        assert_eq!(d.deaths(), 2);
        assert_eq!(d.recovered(), 1);
        // A fresh outage accumulates separately.
        d.on_death(1_000);
        assert_eq!(d.on_recovered(1_100), 100);
        assert_eq!(d.outage_total_ns(), 400);
        assert_eq!(d.outage_max_ns(), 300);
    }

    #[test]
    fn poison_hits_survive_recovery() {
        let mut d = FailureDomain::new(DomainKey::Component(1));
        d.on_death(10);
        assert_eq!(d.on_poison_hit(5), 1);
        d.on_recovered(20);
        d.on_death(30);
        assert_eq!(d.on_poison_hit(5), 2, "not reset by recovery");
        assert_eq!(d.poison_hits(5), 2);
        assert_eq!(d.poison_hits(6), 0);
    }

    #[test]
    fn wedge_detection_exempts_down_and_finished() {
        let mut d = FailureDomain::new(DomainKey::Component(0));
        d.on_progress(1_000);
        assert!(!d.wedged(1_500, 1_000), "within timeout");
        assert!(d.wedged(2_500, 1_000), "silent past timeout");
        d.on_death(2_600);
        assert!(!d.wedged(9_999, 1_000), "down domains are supposed to be silent");
        d.on_recovered(3_000);
        d.on_finished(3_100);
        assert!(!d.wedged(99_999, 1_000), "finished domains exempt");
    }
}
