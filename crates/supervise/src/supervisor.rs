//! The supervisor: deaths in, restart verdicts out.
//!
//! The [`Supervisor`] owns one [`FailureDomain`] per supervised key plus one
//! [`Breaker`] each, and a shared [`DeadLetterQueue`]. The embedding runtime
//! (the DES workflow runner here) reports deaths, recoveries, and progress
//! beacons with virtual-time timestamps; the supervisor answers with a
//! [`Verdict`] the runtime enacts. The supervisor itself never touches the
//! clock or any RNG — it is a pure, deterministic policy machine.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::backoff::{BackoffCfg, Breaker};
use crate::dlq::{DeadLetter, DeadLetterQueue};
use crate::domain::{DomainKey, FailureDomain};

/// Supervisor tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisorCfg {
    /// Backoff + breaker parameters (shared by all domains).
    pub backoff: BackoffCfg,
    /// Deaths the same input may cause before it is quarantined.
    pub poison_threshold: u32,
    /// Silence (ns) after which an unfinished healthy domain counts as
    /// wedged. `None` disables wedge detection.
    pub wedge_timeout_ns: Option<u64>,
}

impl Default for SupervisorCfg {
    fn default() -> Self {
        SupervisorCfg {
            backoff: BackoffCfg::default(),
            poison_threshold: 3,
            wedge_timeout_ns: None,
        }
    }
}

/// Why a domain died.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeathCause {
    /// Plain fail-stop (process crash, injected fault).
    FailStop,
    /// Crash attributed to consuming a poisoned input at `step`.
    PoisonPut {
        /// The workflow step whose input killed the consumer.
        step: u32,
    },
    /// Wedge: the domain stopped making progress and was shot.
    Wedge,
}

impl DeathCause {
    /// Short label for traces and dead letters.
    pub fn label(&self) -> &'static str {
        match self {
            DeathCause::FailStop => "fail-stop",
            DeathCause::PoisonPut { .. } => "poison-put",
            DeathCause::Wedge => "wedge",
        }
    }
}

/// What the runtime should do about a death.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Restart the domain after `delay_ns` (backoff + any breaker hold).
    Restart {
        /// Virtual-time delay before the restart grant fires.
        delay_ns: u64,
    },
    /// Quarantine the poisoned step, then restart after `delay_ns`; the
    /// letter has already been pushed to the DLQ.
    Quarantine {
        /// Virtual-time delay before the restart grant fires.
        delay_ns: u64,
        /// The step the restarted consumer must skip.
        step: u32,
    },
}

impl Verdict {
    /// The restart delay regardless of variant.
    pub fn delay_ns(&self) -> u64 {
        match self {
            Verdict::Restart { delay_ns } => *delay_ns,
            Verdict::Quarantine { delay_ns, .. } => *delay_ns,
        }
    }
}

struct Slot {
    domain: FailureDomain,
    breaker: Breaker,
}

/// Deterministic supervision policy over a set of failure domains.
pub struct Supervisor {
    cfg: SupervisorCfg,
    slots: BTreeMap<DomainKey, Slot>,
    dlq: DeadLetterQueue,
    restarts: u64,
    quarantined: u64,
    mttr_total_ns: u64,
    mttr_max_ns: u64,
    recoveries: u64,
}

impl Supervisor {
    /// A supervisor with a memory-only DLQ.
    pub fn new(cfg: SupervisorCfg) -> Supervisor {
        Supervisor::with_dlq(cfg, DeadLetterQueue::new())
    }

    /// A supervisor quarantining into `dlq` (possibly logstore-backed).
    pub fn with_dlq(cfg: SupervisorCfg, dlq: DeadLetterQueue) -> Supervisor {
        Supervisor {
            cfg,
            slots: BTreeMap::new(),
            dlq,
            restarts: 0,
            quarantined: 0,
            mttr_total_ns: 0,
            mttr_max_ns: 0,
            recoveries: 0,
        }
    }

    /// Register a domain to watch. Idempotent.
    pub fn watch(&mut self, key: DomainKey) {
        self.slots.entry(key).or_insert_with(|| Slot {
            domain: FailureDomain::new(key),
            breaker: Breaker::new(self.cfg.backoff),
        });
    }

    /// The domain for `key`, if watched.
    pub fn domain(&self, key: DomainKey) -> Option<&FailureDomain> {
        self.slots.get(&key).map(|s| &s.domain)
    }

    /// A death at `now_ns`; returns the verdict to enact. Panics if `key`
    /// was never watched (a supervision wiring bug, not a runtime state).
    pub fn on_death(&mut self, key: DomainKey, now_ns: u64, cause: DeathCause) -> Verdict {
        let slot = self.slots.get_mut(&key).expect("death for unwatched domain");
        let attempt = slot.domain.on_death(now_ns);
        let hold = slot.breaker.on_death(now_ns);
        let delay = self.cfg.backoff.delay_ns(attempt).saturating_add(hold);

        if let DeathCause::PoisonPut { step } = cause {
            let hits = slot.domain.on_poison_hit(step);
            if hits >= self.cfg.poison_threshold {
                let letter = DeadLetter {
                    domain: key.label(),
                    step,
                    deaths: hits,
                    reason: cause.label().to_string(),
                    at_ns: now_ns,
                };
                // A full DLQ sink is a diagnostics loss, not a liveness
                // hazard: quarantine proceeds in memory either way.
                let _ = self.dlq.push(letter);
                self.quarantined += 1;
                self.note_grant(key, now_ns, delay);
                return Verdict::Quarantine { delay_ns: delay, step };
            }
        }
        self.note_grant(key, now_ns, delay);
        Verdict::Restart { delay_ns: delay }
    }

    fn note_grant(&mut self, key: DomainKey, now_ns: u64, delay_ns: u64) {
        let slot = self.slots.get_mut(&key).expect("unwatched domain");
        slot.domain.on_restart_granted();
        slot.breaker.on_restart_issued(now_ns.saturating_add(delay_ns));
        self.restarts += 1;
    }

    /// `key` finished recovering at `now_ns`: closes the outage and feeds
    /// MTTR. Unknown or already-healthy keys are a no-op outage-wise.
    pub fn on_recovered(&mut self, key: DomainKey, now_ns: u64) {
        if let Some(slot) = self.slots.get_mut(&key) {
            let dur = slot.domain.on_recovered(now_ns);
            slot.breaker.on_recovered();
            if dur > 0 {
                self.recoveries += 1;
                self.mttr_total_ns += dur;
                self.mttr_max_ns = self.mttr_max_ns.max(dur);
            }
        }
    }

    /// Progress beacon for `key` at `now_ns`.
    pub fn on_progress(&mut self, key: DomainKey, now_ns: u64) {
        if let Some(slot) = self.slots.get_mut(&key) {
            slot.domain.on_progress(now_ns);
        }
    }

    /// `key`'s work is complete (exempt from wedge scans).
    pub fn on_finished(&mut self, key: DomainKey, now_ns: u64) {
        if let Some(slot) = self.slots.get_mut(&key) {
            slot.domain.on_finished(now_ns);
        }
    }

    /// Domains that look wedged at `now_ns` (empty when wedge detection is
    /// disabled). Deterministic order.
    pub fn wedged(&self, now_ns: u64) -> Vec<DomainKey> {
        let Some(timeout) = self.cfg.wedge_timeout_ns else {
            return Vec::new();
        };
        self.slots
            .iter()
            .filter(|(_, s)| s.domain.wedged(now_ns, timeout))
            .map(|(k, _)| *k)
            .collect()
    }

    /// Are any watched domains still unfinished?
    pub fn any_unfinished(&self) -> bool {
        self.slots.values().any(|s| !s.domain.finished())
    }

    /// Restart grants issued.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Inputs quarantined to the DLQ.
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Sum of outage durations across recoveries.
    pub fn mttr_total_ns(&self) -> u64 {
        self.mttr_total_ns
    }

    /// Longest single outage.
    pub fn mttr_max_ns(&self) -> u64 {
        self.mttr_max_ns
    }

    /// Mean time to repair: total outage time over completed recoveries.
    pub fn mttr_mean_ns(&self) -> u64 {
        self.mttr_total_ns.checked_div(self.recoveries).unwrap_or(0)
    }

    /// The dead-letter queue.
    pub fn dlq(&self) -> &DeadLetterQueue {
        &self.dlq
    }

    /// Supervisor configuration.
    pub fn cfg(&self) -> &SupervisorCfg {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SupervisorCfg {
        SupervisorCfg {
            backoff: BackoffCfg {
                base_ns: 10,
                cap_ns: 80,
                threshold: 10, // keep the breaker quiet unless a test wants it
                window_ns: 1_000,
                cooldown_ns: 500,
            },
            poison_threshold: 3,
            wedge_timeout_ns: None,
        }
    }

    #[test]
    fn single_death_restarts_with_base_backoff() {
        let mut s = Supervisor::new(cfg());
        s.watch(DomainKey::Component(0));
        let v = s.on_death(DomainKey::Component(0), 100, DeathCause::FailStop);
        assert_eq!(v, Verdict::Restart { delay_ns: 10 });
        assert_eq!(s.restarts(), 1);
        s.on_recovered(DomainKey::Component(0), 300);
        assert_eq!(s.mttr_total_ns(), 200);
        assert_eq!(s.mttr_mean_ns(), 200);
        assert_eq!(s.mttr_max_ns(), 200);
    }

    #[test]
    fn death_during_recovery_escalates_backoff() {
        let mut s = Supervisor::new(cfg());
        s.watch(DomainKey::Component(1));
        let v1 = s.on_death(DomainKey::Component(1), 0, DeathCause::FailStop);
        assert_eq!(v1.delay_ns(), 10);
        // Dies again while restarting: attempt 2, doubled backoff.
        let v2 = s.on_death(DomainKey::Component(1), 50, DeathCause::FailStop);
        assert_eq!(v2.delay_ns(), 20);
        s.on_recovered(DomainKey::Component(1), 500);
        assert_eq!(s.restarts(), 2);
        assert_eq!(s.mttr_total_ns(), 500, "one outage, first death to recovery");
        // Backoff resets after a clean recovery.
        let v3 = s.on_death(DomainKey::Component(1), 900, DeathCause::FailStop);
        assert_eq!(v3.delay_ns(), 10);
    }

    #[test]
    fn poison_quarantines_at_threshold() {
        let mut s = Supervisor::new(cfg());
        let k = DomainKey::Component(2);
        s.watch(k);
        let step = 7;
        let v1 = s.on_death(k, 0, DeathCause::PoisonPut { step });
        assert!(matches!(v1, Verdict::Restart { .. }));
        s.on_recovered(k, 10);
        let v2 = s.on_death(k, 20, DeathCause::PoisonPut { step });
        assert!(matches!(v2, Verdict::Restart { .. }), "hits survive recovery");
        s.on_recovered(k, 30);
        let v3 = s.on_death(k, 40, DeathCause::PoisonPut { step });
        let Verdict::Quarantine { step: qstep, .. } = v3 else {
            panic!("third hit must quarantine, got {v3:?}");
        };
        assert_eq!(qstep, step);
        assert_eq!(s.quarantined(), 1);
        assert_eq!(s.dlq().len(), 1);
        let letter = &s.dlq().letters()[0];
        assert_eq!(letter.domain, "comp:2");
        assert_eq!(letter.step, step);
        assert_eq!(letter.deaths, 3);
        assert_eq!(letter.reason, "poison-put");
        assert_eq!(letter.at_ns, 40);
    }

    #[test]
    fn breaker_hold_adds_to_backoff() {
        let mut s = Supervisor::new(SupervisorCfg {
            backoff: BackoffCfg {
                base_ns: 10,
                cap_ns: 80,
                threshold: 2,
                window_ns: 1_000,
                cooldown_ns: 500,
            },
            ..cfg()
        });
        let k = DomainKey::Server(0);
        s.watch(k);
        assert_eq!(s.on_death(k, 0, DeathCause::FailStop).delay_ns(), 10);
        // Second death inside the window trips the breaker: backoff(2)=20
        // plus the 500ns cooldown hold.
        assert_eq!(s.on_death(k, 5, DeathCause::FailStop).delay_ns(), 520);
    }

    #[test]
    fn wedge_scan_reports_silent_unfinished_domains() {
        let mut s = Supervisor::new(SupervisorCfg { wedge_timeout_ns: Some(1_000), ..cfg() });
        let a = DomainKey::Component(0);
        let b = DomainKey::Component(1);
        s.watch(a);
        s.watch(b);
        s.on_progress(a, 5_000);
        s.on_progress(b, 5_000);
        assert!(s.wedged(5_500).is_empty());
        s.on_progress(a, 8_000);
        assert_eq!(s.wedged(8_900), vec![b], "b silent past timeout, a not yet");
        s.on_finished(b, 9_200);
        assert!(s.wedged(20_000).is_empty() || s.wedged(20_000) == vec![a]);
        s.on_finished(a, 9_300);
        assert!(!s.any_unfinished());
        assert!(s.wedged(99_999).is_empty());
    }

    #[test]
    fn wedge_detection_off_by_default() {
        let mut s = Supervisor::new(cfg());
        s.watch(DomainKey::Component(0));
        assert!(s.wedged(u64::MAX).is_empty());
    }
}
