//! Property tests for the span lifecycle invariants the analyzer relies on:
//! under any interleaving of begins, ends, and instants produced through the
//! public API, every opened span closes exactly once, every close lands at
//! or after its open, and the exported trace survives a JSONL round trip.

use obs::{arg, RecordKind, TraceCtx, Tracer};
use proptest::prelude::*;

/// Drive the tracer with an arbitrary op tape. Each byte either closes the
/// innermost open span, opens a child (or a root when nothing is open), or
/// records an instant; whatever is left open at the end is closed LIFO —
/// the discipline instrumented actors follow (abort-on-failure included).
fn drive(tape: &[u8]) -> obs::Trace {
    let tracer = Tracer::full();
    let tracks = [tracer.track("a"), tracer.track("b")];
    let mut stack: Vec<(TraceCtx, obs::TrackId)> = Vec::new();
    let mut t = 0u64;
    let mut seq = 0u64;
    for &b in tape {
        // Timestamps are non-decreasing and may repeat (b % 2 == 0 repeats).
        t += (b % 2) as u64 * 1000;
        seq += 1;
        let track = tracks[(b / 16) as usize % 2];
        let parent = stack.last().map(|&(c, _)| c).unwrap_or(TraceCtx::NONE);
        match b % 3 {
            0 if !stack.is_empty() => {
                let (ctx, tk) = stack.pop().unwrap();
                tracer.end(ctx, tk, t, seq, vec![]);
            }
            1 => tracer.instant(parent, track, "i", t, seq, vec![arg("b", b)]),
            _ => {
                let ctx = tracer.begin(parent, track, "s", t, seq, vec![]);
                stack.push((ctx, track));
            }
        }
    }
    while let Some((ctx, tk)) = stack.pop() {
        seq += 1;
        tracer.end(ctx, tk, t, seq, vec![]);
    }
    tracer.finish()
}

proptest! {
    #[test]
    fn every_span_closes_exactly_once_at_or_after_open(tape in proptest::collection::vec(any::<u8>(), 0..200)) {
        let trace = drive(&tape);
        for r in trace.records.iter().filter(|r| r.k == RecordKind::Begin) {
            let ends: Vec<_> = trace
                .records
                .iter()
                .filter(|e| e.k == RecordKind::End && e.sp == r.sp)
                .collect();
            prop_assert_eq!(ends.len(), 1, "span {} must close exactly once", r.sp);
            prop_assert!(ends[0].t >= r.t, "close at {} before open at {}", ends[0].t, r.t);
            prop_assert!(
                (ends[0].t, ends[0].seq) >= (r.t, r.seq),
                "close must not precede open in the total order"
            );
        }
        // The analyzer agrees.
        obs::analyze::validate(&trace).expect("validate");
    }

    #[test]
    fn exports_round_trip_and_are_deterministic(tape in proptest::collection::vec(any::<u8>(), 0..120)) {
        let a = drive(&tape);
        let b = drive(&tape);
        prop_assert_eq!(a.to_jsonl(), b.to_jsonl());
        prop_assert_eq!(a.to_perfetto(), b.to_perfetto());
        let back = obs::Trace::from_jsonl(&a.to_jsonl()).expect("parse");
        prop_assert_eq!(back, a);
    }
}
