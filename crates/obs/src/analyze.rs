//! Trace analysis shared by `wf-trace` and the test suite: span-tree
//! reconstruction, per-track timelines, recovery critical paths, slowest put
//! trees, and structural validation.

use crate::{RecordKind, Trace};
use std::collections::BTreeMap;

/// A reconstructed span (a matched `Begin`/`End` pair).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Causal tree id.
    pub tr: u64,
    /// Span id.
    pub sp: u64,
    /// Parent span id (0 = root).
    pub par: u64,
    /// Track index.
    pub track: u16,
    /// Name (from the `Begin` record).
    pub name: String,
    /// Open time, virtual ns.
    pub start: u64,
    /// Close time, virtual ns.
    pub end: u64,
    /// Annotations (begin args followed by end args).
    pub args: Vec<crate::Arg>,
}

impl Span {
    /// Span duration in virtual ns.
    pub fn dur(&self) -> u64 {
        self.end - self.start
    }
}

/// Pair `Begin`/`End` records into [`Span`]s, in begin order. Unclosed spans
/// are dropped (use [`validate`] to surface them).
pub fn spans(trace: &Trace) -> Vec<Span> {
    let mut open: BTreeMap<u64, Span> = BTreeMap::new();
    let mut order: Vec<u64> = Vec::new();
    let mut closed: BTreeMap<u64, Span> = BTreeMap::new();
    for r in &trace.records {
        match r.k {
            RecordKind::Begin => {
                order.push(r.sp);
                open.insert(
                    r.sp,
                    Span {
                        tr: r.tr,
                        sp: r.sp,
                        par: r.par,
                        track: r.track,
                        name: r.name.clone(),
                        start: r.t,
                        end: r.t,
                        args: r.args.clone(),
                    },
                );
            }
            RecordKind::End => {
                if let Some(mut s) = open.remove(&r.sp) {
                    s.end = r.t;
                    s.args.extend(r.args.iter().cloned());
                    closed.insert(r.sp, s);
                }
            }
            RecordKind::Instant | RecordKind::Meta => {}
        }
    }
    order.into_iter().filter_map(|sp| closed.remove(&sp)).collect()
}

/// One track's activity summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackLine {
    /// Track name.
    pub name: String,
    /// Closed span count.
    pub spans: usize,
    /// Instant count.
    pub instants: usize,
    /// Sum of top-level span durations on this track (a span is top-level
    /// here when its parent is not on the same track), virtual ns.
    pub busy_ns: u64,
    /// First record time on the track, ns.
    pub first_ns: u64,
    /// Last record time on the track, ns.
    pub last_ns: u64,
}

/// Per-track timeline summaries, in track-table order.
pub fn timelines(trace: &Trace) -> Vec<TrackLine> {
    let all = spans(trace);
    let mut lines: Vec<TrackLine> = trace
        .tracks
        .iter()
        .map(|name| TrackLine {
            name: name.clone(),
            spans: 0,
            instants: 0,
            busy_ns: 0,
            first_ns: u64::MAX,
            last_ns: 0,
        })
        .collect();
    let track_of: BTreeMap<u64, u16> = all.iter().map(|s| (s.sp, s.track)).collect();
    for s in &all {
        let Some(line) = lines.get_mut(s.track as usize) else { continue };
        line.spans += 1;
        let parent_same_track = track_of.get(&s.par).is_some_and(|&t| t == s.track);
        if !parent_same_track {
            line.busy_ns += s.dur();
        }
    }
    for r in &trace.records {
        let Some(line) = lines.get_mut(r.track as usize) else { continue };
        if r.k == RecordKind::Instant {
            line.instants += 1;
        }
        if !matches!(r.k, RecordKind::Meta) {
            line.first_ns = line.first_ns.min(r.t);
            line.last_ns = line.last_ns.max(r.t);
        }
    }
    for line in &mut lines {
        if line.first_ns == u64::MAX {
            line.first_ns = 0;
        }
    }
    lines
}

/// One phase of a recovery critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Phase span name (`ulfm`, `restore`, `restart_ctl`, `replay`, ...).
    pub name: String,
    /// Phase duration, ns.
    pub dur_ns: u64,
    /// Phase start, ns.
    pub start_ns: u64,
}

/// One recovery's breakdown: the root `recovery` span and its direct
/// children in start order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPath {
    /// Track the recovery ran on.
    pub track: String,
    /// Recovery start, ns.
    pub start_ns: u64,
    /// Whole-recovery duration, ns.
    pub total_ns: u64,
    /// Direct phase children, in start order.
    pub phases: Vec<Phase>,
}

/// Critical-path breakdowns of every `recovery` span in the trace, in start
/// order.
pub fn recovery_paths(trace: &Trace) -> Vec<RecoveryPath> {
    let all = spans(trace);
    let mut out = Vec::new();
    for root in all.iter().filter(|s| s.name == "recovery") {
        let mut phases: Vec<Phase> = all
            .iter()
            .filter(|s| s.par == root.sp)
            .map(|s| Phase { name: s.name.clone(), dur_ns: s.dur(), start_ns: s.start })
            .collect();
        phases.sort_by_key(|p| p.start_ns);
        out.push(RecoveryPath {
            track: trace.tracks.get(root.track as usize).cloned().unwrap_or_default(),
            start_ns: root.start,
            total_ns: root.dur(),
            phases,
        });
    }
    out.sort_by_key(|r| r.start_ns);
    out
}

/// Summary of one put's causal tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PutTree {
    /// Causal tree id.
    pub tr: u64,
    /// Client-side put duration (request issue to response), ns.
    pub dur_ns: u64,
    /// Put start, ns.
    pub start_ns: u64,
    /// Track of the issuing component.
    pub track: String,
    /// Spans in the tree (the put span plus all descendants, e.g. server
    /// service spans).
    pub tree_spans: usize,
    /// Instants attributed to the tree (resends, log appends, ...).
    pub tree_instants: usize,
}

/// The `k` slowest client-side `put` spans with the sizes of their causal
/// trees, slowest first (ties broken by start time).
pub fn top_put_trees(trace: &Trace, k: usize) -> Vec<PutTree> {
    let all = spans(trace);
    let mut trees: Vec<PutTree> = all
        .iter()
        .filter(|s| s.name == "put")
        .map(|put| {
            let tree_spans =
                all.iter().filter(|s| s.tr == put.tr && in_tree(&all, s, put.sp)).count();
            let tree_instants = trace
                .records
                .iter()
                .filter(|r| r.k == RecordKind::Instant && r.tr == put.tr)
                .filter(|r| r.par == put.sp || in_tree_id(&all, r.par, put.sp))
                .count();
            PutTree {
                tr: put.tr,
                dur_ns: put.dur(),
                start_ns: put.start,
                track: trace.tracks.get(put.track as usize).cloned().unwrap_or_default(),
                tree_spans,
                tree_instants,
            }
        })
        .collect();
    trees.sort_by(|a, b| b.dur_ns.cmp(&a.dur_ns).then(a.start_ns.cmp(&b.start_ns)));
    trees.truncate(k);
    trees
}

/// Is `s` inside the subtree rooted at span id `root`?
fn in_tree(all: &[Span], s: &Span, root: u64) -> bool {
    s.sp == root || in_tree_id(all, s.par, root)
}

/// Is span id `id` (or any ancestor of it) the subtree root `root`?
fn in_tree_id(all: &[Span], mut id: u64, root: u64) -> bool {
    // Walk the parent chain; traces are shallow (depth < 10).
    let par_of: BTreeMap<u64, u64> = all.iter().map(|s| (s.sp, s.par)).collect();
    let mut hops = 0;
    while id != 0 && hops < 64 {
        if id == root {
            return true;
        }
        id = par_of.get(&id).copied().unwrap_or(0);
        hops += 1;
    }
    false
}

/// Structural statistics from a successful [`validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateReport {
    /// Closed span count.
    pub spans: usize,
    /// Instant count.
    pub instants: usize,
    /// Track count.
    pub tracks: usize,
    /// Distinct causal trees.
    pub traces: usize,
}

/// Validate trace structure: every span closes exactly once with
/// `end >= start`, ends match a begin, track indices are declared, and
/// records are time-ordered. Returns statistics on success, the full list
/// of problems on failure.
pub fn validate(trace: &Trace) -> Result<ValidateReport, Vec<String>> {
    let mut errs = Vec::new();
    let mut open: BTreeMap<u64, u64> = BTreeMap::new(); // sp -> begin t
    let mut closed: BTreeMap<u64, u32> = BTreeMap::new();
    let mut instants = 0usize;
    let mut spans = 0usize;
    let mut trees: BTreeMap<u64, ()> = BTreeMap::new();
    let mut prev: Option<(u64, u64)> = None;
    for (i, r) in trace.records.iter().enumerate() {
        if r.track as usize >= trace.tracks.len() {
            errs.push(format!("record {i}: track {} not declared", r.track));
        }
        if let Some(p) = prev {
            if (r.t, r.seq) < p {
                errs.push(format!(
                    "record {i}: time order violated ({:?} after {:?})",
                    (r.t, r.seq),
                    p
                ));
            }
        }
        prev = Some((r.t, r.seq));
        if r.tr != 0 {
            trees.insert(r.tr, ());
        }
        match r.k {
            RecordKind::Begin => {
                if open.insert(r.sp, r.t).is_some() {
                    errs.push(format!("record {i}: span {} opened twice", r.sp));
                }
            }
            RecordKind::End => match open.remove(&r.sp) {
                Some(start) => {
                    if r.t < start {
                        errs.push(format!("record {i}: span {} ends before it starts", r.sp));
                    }
                    spans += 1;
                    *closed.entry(r.sp).or_insert(0) += 1;
                }
                None => {
                    if closed.contains_key(&r.sp) {
                        errs.push(format!("record {i}: span {} closed twice", r.sp));
                    } else {
                        errs.push(format!("record {i}: end without begin for span {}", r.sp));
                    }
                }
            },
            RecordKind::Instant => instants += 1,
            RecordKind::Meta => {}
        }
    }
    for (sp, _) in open {
        errs.push(format!("span {sp} never closed"));
    }
    if errs.is_empty() {
        Ok(ValidateReport { spans, instants, tracks: trace.tracks.len(), traces: trees.len() })
    } else {
        Err(errs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arg, TraceCtx, Tracer};

    /// A two-track trace with a recovery and two puts of different costs.
    fn sample() -> Trace {
        let t = Tracer::full();
        let comp = t.track("app0:sim");
        let srv = t.track("server0");
        let mut seq = 0u64;
        let mut s = || {
            seq += 1;
            seq
        };
        // Fast put: 1000..2000, server span inside.
        let p1 = t.begin(TraceCtx::NONE, comp, "put", 1_000, s(), vec![]);
        let sv1 = t.begin(p1, srv, "serve.put", 1_200, s(), vec![]);
        t.instant(sv1, srv, "log.append", 1_300, s(), vec![arg("bytes", 10)]);
        t.end(sv1, srv, 1_500, s(), vec![]);
        t.end(p1, comp, 2_000, s(), vec![]);
        // Slow put with a resend: 3000..8000.
        let p2 = t.begin(TraceCtx::NONE, comp, "put", 3_000, s(), vec![]);
        t.instant(p2, comp, "resend", 4_000, s(), vec![]);
        let sv2 = t.begin(p2, srv, "serve.put", 5_000, s(), vec![]);
        t.end(sv2, srv, 6_000, s(), vec![]);
        t.end(p2, comp, 8_000, s(), vec![]);
        // Recovery with phases.
        let rec = t.begin(TraceCtx::NONE, comp, "recovery", 10_000, s(), vec![]);
        let ulfm = t.begin(rec, comp, "ulfm", 10_000, s(), vec![]);
        t.end(ulfm, comp, 12_000, s(), vec![]);
        let restore = t.begin(rec, comp, "restore", 12_000, s(), vec![]);
        t.end(restore, comp, 15_000, s(), vec![]);
        let replay = t.begin(rec, comp, "replay", 15_000, s(), vec![]);
        t.end(replay, comp, 19_000, s(), vec![]);
        t.end(rec, comp, 19_000, s(), vec![]);
        t.finish()
    }

    #[test]
    fn spans_pair_and_order() {
        let sp = spans(&sample());
        assert_eq!(sp.len(), 8);
        assert_eq!(sp[0].name, "put");
        assert_eq!(sp[0].dur(), 1_000);
        assert_eq!(sp[1].name, "serve.put");
        assert_eq!(sp[1].par, sp[0].sp);
    }

    #[test]
    fn timelines_accumulate_busy_time() {
        let lines = timelines(&sample());
        assert_eq!(lines.len(), 2);
        // Component: puts (1000 + 5000) + recovery (9000); nested phase
        // spans are same-track children and do not double-count.
        assert_eq!(lines[0].name, "app0:sim");
        assert_eq!(lines[0].busy_ns, 15_000);
        // Server spans parent under *component* spans, so they are
        // top-level for the server track: 300 + 1000.
        assert_eq!(lines[1].busy_ns, 1_300);
        assert_eq!(lines[1].instants, 1);
    }

    #[test]
    fn recovery_breakdown() {
        let paths = recovery_paths(&sample());
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.total_ns, 9_000);
        let names: Vec<&str> = p.phases.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["ulfm", "restore", "replay"]);
        assert_eq!(p.phases.iter().map(|f| f.dur_ns).sum::<u64>(), 9_000);
    }

    #[test]
    fn top_puts_rank_by_duration() {
        let tops = top_put_trees(&sample(), 10);
        assert_eq!(tops.len(), 2);
        assert_eq!(tops[0].dur_ns, 5_000);
        assert_eq!(tops[0].tree_spans, 2);
        assert_eq!(tops[0].tree_instants, 1, "the resend instant");
        assert_eq!(tops[1].dur_ns, 1_000);
        assert_eq!(top_put_trees(&sample(), 1).len(), 1);
    }

    #[test]
    fn validate_accepts_wellformed() {
        let rep = validate(&sample()).unwrap();
        assert_eq!(rep.spans, 8);
        assert_eq!(rep.instants, 2);
        assert_eq!(rep.tracks, 2);
        assert_eq!(rep.traces, 3);
    }

    #[test]
    fn validate_rejects_unclosed_and_double_close() {
        let t = Tracer::full();
        let k = t.track("x");
        let a = t.begin(TraceCtx::NONE, k, "a", 1, 1, vec![]);
        t.end(a, k, 2, 2, vec![]);
        t.end(a, k, 3, 3, vec![]);
        let b = t.begin(TraceCtx::NONE, k, "b", 4, 4, vec![]);
        let _ = b;
        let errs = validate(&t.finish()).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("closed twice")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("never closed")), "{errs:?}");
    }
}
