//! Trace serialization: JSONL (the archival/interchange format consumed by
//! `wf-trace`) and Chrome/Perfetto `trace_event` JSON (load the file in
//! `ui.perfetto.dev` or `chrome://tracing`).
//!
//! Both exports are deterministic byte-for-byte: record order is emission
//! order, field order is fixed, and timestamps are rendered with integer
//! arithmetic only (no float formatting), so the same seed yields the same
//! bytes.

use crate::{Arg, Record, RecordKind, Trace};

impl Trace {
    /// Serialize as JSON Lines: one [`Record`] object per line. Track names
    /// are carried in-stream as leading `Meta` records (`name` = track name,
    /// `track` = its index), and a final `Meta` named `dropped` carries the
    /// bounded-sink shed count when nonzero — every line has the same
    /// schema, which keeps consumers trivial.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (i, name) in self.tracks.iter().enumerate() {
            let meta = Record {
                k: RecordKind::Meta,
                tr: 0,
                sp: 0,
                par: 0,
                track: i as u16,
                name: format!("track:{name}"),
                t: 0,
                seq: 0,
                args: Vec::new(),
            };
            out.push_str(&serde_json::to_string(&meta).expect("meta record serializes"));
            out.push('\n');
        }
        if self.dropped > 0 {
            let meta = Record {
                k: RecordKind::Meta,
                tr: 0,
                sp: 0,
                par: 0,
                track: 0,
                name: "dropped".into(),
                t: 0,
                seq: 0,
                args: vec![Arg { k: "n".into(), v: self.dropped.to_string() }],
            };
            out.push_str(&serde_json::to_string(&meta).expect("meta record serializes"));
            out.push('\n');
        }
        for r in &self.records {
            out.push_str(&serde_json::to_string(r).expect("record serializes"));
            out.push('\n');
        }
        out
    }

    /// Parse a JSONL document produced by [`Trace::to_jsonl`].
    pub fn from_jsonl(text: &str) -> Result<Trace, String> {
        let mut trace = Trace::default();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let r: Record =
                serde_json::from_str(line).map_err(|e| format!("line {}: {e:?}", lineno + 1))?;
            if r.k == RecordKind::Meta {
                if let Some(name) = r.name.strip_prefix("track:") {
                    let idx = r.track as usize;
                    if trace.tracks.len() <= idx {
                        trace.tracks.resize(idx + 1, String::new());
                    }
                    trace.tracks[idx] = name.to_string();
                } else if r.name == "dropped" {
                    trace.dropped = r
                        .args
                        .first()
                        .and_then(|a| a.v.parse().ok())
                        .ok_or_else(|| format!("line {}: bad dropped meta", lineno + 1))?;
                } else {
                    return Err(format!("line {}: unknown meta {:?}", lineno + 1, r.name));
                }
            } else {
                trace.records.push(r);
            }
        }
        Ok(trace)
    }

    /// Export as Chrome `trace_event` JSON (the format Perfetto's legacy
    /// importer reads). Each track becomes a named thread of process 1;
    /// spans become `B`/`E` duration events and instants become `i` events.
    /// Causal identifiers ride in `args` (`trace`/`span`/`parent`), so the
    /// viewer's "find by arg" locates a whole causal tree.
    pub fn to_perfetto(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let push = |s: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str(&s);
        };
        push(
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"workflow\"}}"
                .to_string(),
            &mut out,
            &mut first,
        );
        for (i, name) in self.tracks.iter().enumerate() {
            push(
                format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_name\",\
                     \"args\":{{\"name\":{}}}}}",
                    json_str(name)
                ),
                &mut out,
                &mut first,
            );
        }
        for r in &self.records {
            let ts = micros(r.t);
            let ev = match r.k {
                RecordKind::Begin => format!(
                    "{{\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"name\":{},\
                     \"args\":{{{}}}}}",
                    r.track,
                    json_str(&r.name),
                    span_args(r),
                ),
                RecordKind::End => format!(
                    "{{\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"args\":{{{}}}}}",
                    r.track,
                    span_args(r),
                ),
                RecordKind::Instant => format!(
                    "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{ts},\"name\":{},\"s\":\"t\",\
                     \"args\":{{{}}}}}",
                    r.track,
                    json_str(&r.name),
                    span_args(r),
                ),
                RecordKind::Meta => continue,
            };
            push(ev, &mut out, &mut first);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Virtual ns rendered as fractional µs with integer math only
/// (`1234567` → `"1234.567"`): float formatting is banned from the
/// deterministic envelope.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// The fixed causal-id args plus the record's own annotations.
fn span_args(r: &Record) -> String {
    let mut s =
        format!("\"trace\":{},\"span\":{},\"parent\":{},\"seq\":{}", r.tr, r.sp, r.par, r.seq);
    for a in &r.args {
        s.push(',');
        s.push_str(&json_str(&a.k));
        s.push(':');
        s.push_str(&json_str(&a.v));
    }
    s
}

/// Minimal JSON string quoting (names and arg values are plain text).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{arg, TraceCtx, Tracer};

    fn sample() -> Trace {
        let t = Tracer::full();
        let comp = t.track("app0:simulation");
        let srv = t.track("server0");
        let root = t.begin(TraceCtx::NONE, comp, "put", 1_000, 1, vec![arg("var", "u")]);
        let serve = t.begin(root, srv, "serve.put", 2_500, 2, vec![]);
        t.instant(serve, srv, "log.append", 2_600, 3, vec![arg("bytes", 64)]);
        t.end(serve, srv, 3_000, 4, vec![]);
        t.end(root, comp, 3_500, 5, vec![]);
        t.finish()
    }

    #[test]
    fn jsonl_round_trips() {
        let tr = sample();
        let text = tr.to_jsonl();
        let back = Trace::from_jsonl(&text).unwrap();
        assert_eq!(back, tr);
    }

    #[test]
    fn jsonl_round_trips_dropped_counter() {
        let mut tr = sample();
        tr.dropped = 17;
        let back = Trace::from_jsonl(&tr.to_jsonl()).unwrap();
        assert_eq!(back.dropped, 17);
    }

    #[test]
    fn perfetto_is_valid_json_with_thread_names() {
        #[derive(serde::Deserialize)]
        struct Ev {
            ph: String,
            #[serde(default)]
            name: String,
            #[serde(default)]
            tid: u64,
        }
        #[derive(serde::Deserialize)]
        struct Doc {
            events: Vec<Ev>,
        }
        // The field is named `traceEvents` on the wire; reparse through the
        // flat record schema instead of fighting the derive's field naming.
        let text = sample().to_perfetto();
        let inner = text
            .trim()
            .strip_prefix("{\"traceEvents\":[")
            .and_then(|s| s.strip_suffix("]}"))
            .expect("envelope shape");
        let doc: Doc =
            serde_json::from_str(&format!("{{\"events\":[{inner}]}}")).expect("valid JSON");
        // 1 process_name + 2 thread_name metas + 2 B + 1 i + 2 E.
        assert_eq!(doc.events.len(), 8);
        assert_eq!(doc.events.iter().filter(|e| e.name == "thread_name").count(), 2);
        assert_eq!(doc.events.iter().filter(|e| e.ph == "B").count(), 2);
        assert_eq!(doc.events.iter().filter(|e| e.ph == "E").count(), 2);
        assert!(doc.events.iter().any(|e| e.ph == "i" && e.tid == 1));
        let text2 = sample().to_perfetto();
        assert_eq!(text, text2, "export is deterministic");
    }

    #[test]
    fn timestamps_are_integer_rendered_micros() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1_234_567), "1234.567");
        assert_eq!(micros(999), "0.999");
    }

    #[test]
    fn json_str_escapes() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
