#![forbid(unsafe_code)]

//! Deterministic observability for the workflow simulator.
//!
//! Everything here is built on the engine's *virtual* clock and dispatch
//! sequence counter — there is no wall-clock read anywhere in this crate, so
//! a trace is a pure function of the configuration and seed, and two runs of
//! the same experiment produce byte-identical exports.
//!
//! The model is a narrow slice of distributed tracing:
//!
//! * a [`Record`] is one trace event — span begin/end, instant, or metadata —
//!   stamped with virtual nanoseconds (`t`) and the engine dispatch sequence
//!   number (`seq`, the total-order tiebreak for simultaneous events);
//! * a [`TraceCtx`] is the wire-format causal context `{trace, parent}`
//!   carried inside staging requests, so a server-side span can attach to the
//!   client-side span that caused it;
//! * a [`Tracer`] is the cheap cloneable handle actors hold. A disabled
//!   tracer (`Tracer::off()`) is a `None` and every call on it is a no-op, so
//!   instrumentation-off runs do no extra work and allocate nothing;
//! * a [`Recorder`] is where records go: [`FullRecorder`] keeps everything
//!   (the JSONL / Perfetto export source), [`FlightRecorder`] keeps a bounded
//!   ring of the most recent records for post-mortem dumps on failure, and
//!   [`JsonlSink`] / [`PerfettoSink`] pair a full recorder with an export
//!   format.
//!
//! Span and trace identifiers are allocated from a per-tracer monotonic
//! counter. Allocation happens in engine-dispatch order, which is itself
//! deterministic, so identifiers are reproducible across runs; in threaded
//! mode each thread gets a disjoint id namespace (see [`Tracer::with_sink_base`])
//! and [`merge`] interleaves the per-thread records deterministically.

pub mod analyze;
pub mod export;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A causal trace context as carried on the wire inside staging requests.
///
/// `trace` names the causal tree (the root span's id); `parent` names the
/// span the next record should attach under. The all-zero value
/// ([`TraceCtx::NONE`]) means "not traced" and is what untraced runs put in
/// request headers — `Default` yields it, so existing construction sites and
/// serialized documents keep working.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCtx {
    /// Root span id of the causal tree (0 = untraced).
    pub trace: u64,
    /// Parent span id for records emitted under this context.
    pub parent: u64,
}

impl TraceCtx {
    /// The untraced context.
    pub const NONE: TraceCtx = TraceCtx { trace: 0, parent: 0 };

    /// Is this the untraced context?
    pub fn is_none(&self) -> bool {
        self.trace == 0
    }
}

/// An interned track (one horizontal lane in the viewer): a component, a
/// staging server, the director, the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TrackId(pub u16);

/// One `key=value` annotation on a record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Arg {
    /// Key.
    pub k: String,
    /// Value (already rendered; keeps the record schema flat).
    pub v: String,
}

/// Convenience constructor for an [`Arg`].
pub fn arg(k: &str, v: impl std::fmt::Display) -> Arg {
    Arg { k: k.to_string(), v: v.to_string() }
}

/// What a record is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordKind {
    /// Span open.
    Begin,
    /// Span close (paired with the `Begin` carrying the same `sp`).
    End,
    /// Point event.
    Instant,
    /// Stream metadata (track-name declarations in JSONL exports).
    Meta,
}

/// One trace event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Record {
    /// Kind.
    pub k: RecordKind,
    /// Trace (causal tree) id; 0 for untraced instants and metadata.
    pub tr: u64,
    /// Span id (`Begin`/`End`); 0 for instants and metadata.
    pub sp: u64,
    /// Parent span id; 0 for roots.
    pub par: u64,
    /// Track index (into the trace's track table).
    pub track: u16,
    /// Event name (empty on `End`: the pairing is by `sp`).
    pub name: String,
    /// Virtual time, nanoseconds.
    pub t: u64,
    /// Engine dispatch sequence number at emission (total-order tiebreak).
    pub seq: u64,
    /// Annotations.
    pub args: Vec<Arg>,
}

/// A completed trace: the track table plus the record stream in emission
/// order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Track names, indexed by `Record::track`.
    pub tracks: Vec<String>,
    /// Records in emission order.
    pub records: Vec<Record>,
    /// Records discarded by a bounded sink (flight recorder overflow).
    pub dropped: u64,
}

/// Destination for records. Implementations must be `Send`: in threaded mode
/// a tracer crosses into server threads.
pub trait Recorder: Send {
    /// Accept one record.
    fn record(&mut self, r: Record);
    /// Remove and return everything recorded so far, in order.
    fn drain(&mut self) -> Vec<Record>;
    /// Copy of everything currently held, in order (the flight-dump path —
    /// must not disturb the sink).
    fn snapshot(&self) -> Vec<Record>;
    /// Records discarded so far (bounded sinks only).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Unbounded sink: keeps every record. The source for JSONL and Perfetto
/// exports.
#[derive(Debug, Default)]
pub struct FullRecorder {
    records: Vec<Record>,
}

impl Recorder for FullRecorder {
    fn record(&mut self, r: Record) {
        self.records.push(r);
    }

    fn drain(&mut self) -> Vec<Record> {
        std::mem::take(&mut self.records)
    }

    fn snapshot(&self) -> Vec<Record> {
        self.records.clone()
    }
}

/// Bounded ring sink: keeps the most recent `cap` records and counts what it
/// sheds. Cheap enough to leave always-on; dumped when a run wedges or an
/// oracle fails, so the tail of history leading into the failure survives.
#[derive(Debug)]
pub struct FlightRecorder {
    buf: Vec<Record>,
    cap: usize,
    head: usize,
    shed: u64,
}

impl FlightRecorder {
    /// A ring holding at most `cap` records (`cap >= 1`).
    pub fn new(cap: usize) -> FlightRecorder {
        assert!(cap >= 1, "flight recorder capacity must be nonzero");
        FlightRecorder { buf: Vec::with_capacity(cap.min(1024)), cap, head: 0, shed: 0 }
    }
}

impl Recorder for FlightRecorder {
    fn record(&mut self, r: Record) {
        if self.buf.len() < self.cap {
            self.buf.push(r);
        } else {
            self.buf[self.head] = r;
            self.head = (self.head + 1) % self.cap;
            self.shed += 1;
        }
    }

    fn drain(&mut self) -> Vec<Record> {
        let out = self.snapshot();
        self.buf.clear();
        self.head = 0;
        out
    }

    fn snapshot(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    fn dropped(&self) -> u64 {
        self.shed
    }
}

/// Full sink tagged with the JSONL export format (see
/// [`Trace::to_jsonl`]).
#[derive(Debug, Default)]
pub struct JsonlSink(pub FullRecorder);

impl Recorder for JsonlSink {
    fn record(&mut self, r: Record) {
        self.0.record(r);
    }
    fn drain(&mut self) -> Vec<Record> {
        self.0.drain()
    }
    fn snapshot(&self) -> Vec<Record> {
        self.0.snapshot()
    }
}

/// Full sink tagged with the Chrome/Perfetto export format (see
/// [`Trace::to_perfetto`]).
#[derive(Debug, Default)]
pub struct PerfettoSink(pub FullRecorder);

impl Recorder for PerfettoSink {
    fn record(&mut self, r: Record) {
        self.0.record(r);
    }
    fn drain(&mut self) -> Vec<Record> {
        self.0.drain()
    }
    fn snapshot(&self) -> Vec<Record> {
        self.0.snapshot()
    }
}

struct Inner {
    tracks: Vec<String>,
    sink: Box<dyn Recorder>,
    next_span: u64,
}

/// The handle actors hold. Cloning shares the underlying recorder; a
/// disabled tracer (`off`) carries nothing and every operation on it is a
/// no-op, so the instrumented code paths cost nothing when tracing is off.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.enabled()).finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::off()
    }
}

impl Tracer {
    /// The disabled tracer: no allocation, every call a no-op.
    pub fn off() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer feeding `sink`.
    pub fn with_sink(sink: Box<dyn Recorder>) -> Tracer {
        Tracer::with_sink_base(sink, 0)
    }

    /// A tracer feeding `sink` whose span ids start above
    /// `base << 32`. Per-thread tracers in the real-thread transport use
    /// disjoint bases so merged traces need no id remapping: ids stay unique
    /// and cross-thread `TraceCtx` references stay valid.
    pub fn with_sink_base(sink: Box<dyn Recorder>, base: u32) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Mutex::new(Inner {
                tracks: Vec::new(),
                sink,
                next_span: (base as u64) << 32,
            }))),
        }
    }

    /// A tracer keeping everything ([`FullRecorder`]).
    pub fn full() -> Tracer {
        Tracer::with_sink(Box::<FullRecorder>::default())
    }

    /// A tracer keeping the most recent `cap` records
    /// ([`FlightRecorder`]).
    pub fn flight(cap: usize) -> Tracer {
        Tracer::with_sink(Box::new(FlightRecorder::new(cap)))
    }

    /// Is this tracer recording?
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Intern a track name, returning its id. Repeated calls with the same
    /// name return the same id. On a disabled tracer, returns `TrackId(0)`.
    pub fn track(&self, name: &str) -> TrackId {
        let Some(inner) = &self.inner else { return TrackId(0) };
        let mut g = inner.lock();
        if let Some(i) = g.tracks.iter().position(|t| t == name) {
            return TrackId(i as u16);
        }
        g.tracks.push(name.to_string());
        TrackId((g.tracks.len() - 1) as u16)
    }

    /// Open a span. `ctx` is the parent context ([`TraceCtx::NONE`] opens a
    /// new root). Returns the context *of the opened span* — store it to
    /// close the span later, put it on the wire to parent remote work under
    /// it.
    pub fn begin(
        &self,
        ctx: TraceCtx,
        track: TrackId,
        name: &str,
        t: u64,
        seq: u64,
        args: Vec<Arg>,
    ) -> TraceCtx {
        let Some(inner) = &self.inner else { return TraceCtx::NONE };
        let mut g = inner.lock();
        g.next_span += 1;
        let sp = g.next_span;
        let (tr, par) = if ctx.is_none() { (sp, 0) } else { (ctx.trace, ctx.parent) };
        g.sink.record(Record {
            k: RecordKind::Begin,
            tr,
            sp,
            par,
            track: track.0,
            name: name.to_string(),
            t,
            seq,
            args,
        });
        TraceCtx { trace: tr, parent: sp }
    }

    /// Close the span named by `ctx.parent` (i.e. a context previously
    /// returned by [`Tracer::begin`]).
    pub fn end(&self, ctx: TraceCtx, track: TrackId, t: u64, seq: u64, args: Vec<Arg>) {
        let Some(inner) = &self.inner else { return };
        if ctx.is_none() {
            return;
        }
        inner.lock().sink.record(Record {
            k: RecordKind::End,
            tr: ctx.trace,
            sp: ctx.parent,
            par: 0,
            track: track.0,
            name: String::new(),
            t,
            seq,
            args,
        });
    }

    /// Record a point event under `ctx` (or free-standing with
    /// [`TraceCtx::NONE`]).
    pub fn instant(
        &self,
        ctx: TraceCtx,
        track: TrackId,
        name: &str,
        t: u64,
        seq: u64,
        args: Vec<Arg>,
    ) {
        let Some(inner) = &self.inner else { return };
        inner.lock().sink.record(Record {
            k: RecordKind::Instant,
            tr: ctx.trace,
            sp: 0,
            par: ctx.parent,
            track: track.0,
            name: name.to_string(),
            t,
            seq,
            args,
        });
    }

    /// Drain the sink into a [`Trace`] (the normal end-of-run path).
    pub fn finish(&self) -> Trace {
        let Some(inner) = &self.inner else { return Trace::default() };
        let mut g = inner.lock();
        let dropped = g.sink.dropped();
        Trace { tracks: g.tracks.clone(), records: g.sink.drain(), dropped }
    }

    /// Copy the sink contents into a [`Trace`] without draining (the
    /// failure-dump path: callable from a panic-adjacent context, repeatable).
    pub fn dump(&self) -> Trace {
        let Some(inner) = &self.inner else { return Trace::default() };
        let g = inner.lock();
        Trace { tracks: g.tracks.clone(), records: g.sink.snapshot(), dropped: g.sink.dropped() }
    }
}

/// Deterministically interleave per-thread traces into one.
///
/// Records are merged by `(t, seq, tr, sp, kind-rank)` — a pure function of
/// the record multiset, so any thread-arrival order produces the same output.
/// Track tables are unioned by name (first part wins the lower index) and
/// record track indices are rewritten. Span ids are *not* remapped: parts
/// are expected to come from tracers with disjoint id bases
/// ([`Tracer::with_sink_base`]), which keeps cross-thread parent references
/// intact.
pub fn merge(parts: Vec<Trace>) -> Trace {
    // Canonical track table: the union of part track names, sorted — so the
    // merged indices do not depend on part order.
    let mut tracks: Vec<String> = parts.iter().flat_map(|p| p.tracks.iter().cloned()).collect();
    tracks.sort();
    tracks.dedup();
    let mut records: Vec<Record> = Vec::new();
    let mut dropped = 0;
    for part in parts {
        let remap: Vec<u16> = part
            .tracks
            .iter()
            .map(|name| tracks.iter().position(|t| t == name).unwrap_or(0) as u16)
            .collect();
        for mut r in part.records {
            r.track = remap.get(r.track as usize).copied().unwrap_or(r.track);
            records.push(r);
        }
        dropped += part.dropped;
    }
    let rank = |k: RecordKind| match k {
        RecordKind::Meta => 0u8,
        RecordKind::Begin => 1,
        RecordKind::Instant => 2,
        RecordKind::End => 3,
    };
    records.sort_by(|a, b| {
        (a.t, a.seq, a.tr, a.sp, rank(a.k)).cmp(&(b.t, b.seq, b.tr, b.sp, rank(b.k)))
    });
    Trace { tracks, records, dropped }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_tracer_is_inert() {
        let t = Tracer::off();
        assert!(!t.enabled());
        let tk = t.track("x");
        let ctx = t.begin(TraceCtx::NONE, tk, "a", 1, 1, vec![]);
        assert!(ctx.is_none());
        t.end(ctx, tk, 2, 2, vec![]);
        t.instant(ctx, tk, "i", 3, 3, vec![]);
        assert_eq!(t.finish(), Trace::default());
    }

    #[test]
    fn begin_end_pairs_and_contexts() {
        let t = Tracer::full();
        let tk = t.track("comp");
        let root = t.begin(TraceCtx::NONE, tk, "step", 10, 1, vec![]);
        assert_eq!(root.trace, root.parent, "root trace id is its span id");
        let child = t.begin(root, tk, "put", 20, 2, vec![arg("seq", 7)]);
        assert_eq!(child.trace, root.trace);
        t.end(child, tk, 30, 3, vec![]);
        t.end(root, tk, 40, 4, vec![]);
        let tr = t.finish();
        assert_eq!(tr.tracks, vec!["comp"]);
        assert_eq!(tr.records.len(), 4);
        assert_eq!(tr.records[1].par, root.parent);
        assert_eq!(tr.records[2].k, RecordKind::End);
        assert_eq!(tr.records[2].sp, child.parent);
    }

    #[test]
    fn track_interning_is_stable() {
        let t = Tracer::full();
        let a = t.track("a");
        let b = t.track("b");
        assert_eq!(t.track("a"), a);
        assert_eq!(t.track("b"), b);
        assert_ne!(a, b);
    }

    #[test]
    fn flight_recorder_keeps_tail_and_counts_shed() {
        let mut f = FlightRecorder::new(3);
        for i in 0..5u64 {
            f.record(Record {
                k: RecordKind::Instant,
                tr: 0,
                sp: 0,
                par: 0,
                track: 0,
                name: format!("e{i}"),
                t: i,
                seq: i,
                args: vec![],
            });
        }
        assert_eq!(f.dropped(), 2);
        let snap = f.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].name, "e2");
        assert_eq!(snap[2].name, "e4");
        // Snapshot is non-destructive.
        assert_eq!(f.snapshot().len(), 3);
    }

    #[test]
    fn merge_interleaves_deterministically_and_unions_tracks() {
        let ta = Tracer::with_sink_base(Box::<FullRecorder>::default(), 1);
        let tb = Tracer::with_sink_base(Box::<FullRecorder>::default(), 2);
        let ka = ta.track("client");
        let kb = tb.track("server");
        let kb2 = tb.track("client"); // same name on the other thread
        let root = ta.begin(TraceCtx::NONE, ka, "put", 5, 1, vec![]);
        // Cross-thread propagation: server parents under the client span.
        let srv = tb.begin(root, kb, "serve.put", 6, 2, vec![]);
        tb.end(srv, kb, 8, 3, vec![]);
        tb.instant(TraceCtx::NONE, kb2, "note", 7, 9, vec![]);
        ta.end(root, ka, 9, 4, vec![]);
        let m1 = merge(vec![ta.dump(), tb.dump()]);
        let m2 = merge(vec![tb.dump(), ta.dump()]);
        assert_eq!(m1.records, m2.records, "merge order-independent in records");
        assert_eq!(m1.records.len(), 5);
        // Cross-thread parent survived (no remap).
        let serve = m1.records.iter().find(|r| r.name == "serve.put").unwrap();
        assert_eq!(serve.par, root.parent);
        assert_eq!(serve.tr, root.trace);
        // Records come out time-ordered.
        assert!(m1.records.windows(2).all(|w| (w[0].t, w[0].seq) <= (w[1].t, w[1].seq)));
    }

    #[test]
    fn disjoint_bases_never_collide() {
        let ta = Tracer::with_sink_base(Box::<FullRecorder>::default(), 1);
        let tb = Tracer::with_sink_base(Box::<FullRecorder>::default(), 2);
        let a = ta.begin(TraceCtx::NONE, TrackId(0), "a", 0, 0, vec![]);
        let b = tb.begin(TraceCtx::NONE, TrackId(0), "b", 0, 0, vec![]);
        assert_ne!(a.parent, b.parent);
        assert_eq!(a.parent >> 32, 1);
        assert_eq!(b.parent >> 32, 2);
    }
}
