//! Canonical `BENCH_*.json` run reports and the regression gate.
//!
//! Benches and soak jobs distill each run into a [`BenchReport`]: a named
//! set of rows, each row a named set of scalar metrics with an explicit
//! *direction* (is larger worse?) and a tolerance band. A committed
//! baseline lives in `bench/baselines/`; CI's `metrics-gate` job
//! regenerates the report and calls [`compare`] — any metric that worsened
//! beyond its tolerance fails the gate, listing exactly which row/metric
//! regressed and by how much.
//!
//! Because the simulator is deterministic, regenerated virtual-time metrics
//! match the committed baseline *bit for bit*; tolerances exist for the
//! day a metric becomes wall-clock-derived, and to let intentional small
//! shifts through without churn.

use serde::{Deserialize, Serialize};

/// Which direction of change is a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Larger is worse (latency, memory, total time).
    LargerWorse,
    /// Smaller is worse (throughput).
    SmallerWorse,
    /// Any drift beyond tolerance is a regression (determinism anchors:
    /// event counts, digests-as-numbers).
    Exact,
}

/// One scalar metric in a bench row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchMetric {
    /// Metric name (`total_time_s`, `p99_put_response_s`, ...).
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Regression direction.
    pub direction: Direction,
    /// Allowed relative worsening before the gate fails, as a fraction
    /// (0.05 = 5 %). Zero means bit-exact.
    pub tolerance: f64,
}

/// One benched configuration (one workload × protocol, typically).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchRow {
    /// Row id (`fig9/Un`, `tiny/Co`, ...).
    pub id: String,
    /// Metrics, in insertion order.
    pub metrics: Vec<BenchMetric>,
}

/// A whole `BENCH_*.json` document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Report name (`fig9`); the file is `BENCH_<name>.json`.
    pub name: String,
    /// Schema version for forward compatibility.
    pub version: u32,
    /// Rows, in generation order.
    pub rows: Vec<BenchRow>,
}

impl BenchReport {
    /// New empty report.
    pub fn new(name: &str) -> Self {
        BenchReport { name: name.to_owned(), version: 1, rows: Vec::new() }
    }

    /// Append a row.
    pub fn push_row(&mut self, id: &str) -> &mut BenchRow {
        self.rows.push(BenchRow { id: id.to_owned(), metrics: Vec::new() });
        self.rows.last_mut().expect("just pushed")
    }

    /// Canonical file name.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.name)
    }

    /// Serialize (single JSON document, trailing newline).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string(self).expect("bench report serializes");
        s.push('\n');
        s
    }

    /// Parse back.
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        serde_json::from_str(text.trim()).map_err(|e| format!("bench report: {e}"))
    }
}

impl BenchRow {
    /// Append one metric.
    pub fn metric(&mut self, name: &str, value: f64, direction: Direction, tolerance: f64) {
        self.metrics.push(BenchMetric {
            name: name.to_owned(),
            value,
            direction,
            tolerance: tolerance.max(0.0),
        });
    }
}

/// One gate violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Regression {
    /// Row id.
    pub row: String,
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Fresh value.
    pub fresh: f64,
    /// Relative worsening (positive fraction).
    pub worsened: f64,
    /// The tolerance that was exceeded.
    pub tolerance: f64,
}

impl Regression {
    /// Human line for CI logs.
    pub fn describe(&self) -> String {
        format!(
            "{} / {}: baseline {} -> fresh {} ({:+.2}% vs ±{:.2}% tolerance)",
            self.row,
            self.metric,
            self.baseline,
            self.fresh,
            self.worsened * 100.0,
            self.tolerance * 100.0
        )
    }
}

/// Relative worsening of `fresh` vs `base` under `direction` (0 when the
/// change is an improvement).
fn worsening(direction: Direction, base: f64, fresh: f64) -> f64 {
    let denom = base.abs().max(f64::MIN_POSITIVE);
    let drift = (fresh - base) / denom;
    match direction {
        Direction::LargerWorse => drift.max(0.0),
        Direction::SmallerWorse => (-drift).max(0.0),
        Direction::Exact => drift.abs(),
    }
}

/// Gate `fresh` against `baseline`: every baseline metric must be present
/// in `fresh` and must not have worsened beyond its tolerance (the
/// *baseline's* direction and tolerance govern — the committed file is the
/// contract). Returns the violations; empty means the gate passes. Rows or
/// metrics that are new in `fresh` pass (they have no contract yet).
pub fn compare(baseline: &BenchReport, fresh: &BenchReport) -> Vec<Regression> {
    let mut out = Vec::new();
    for brow in &baseline.rows {
        let Some(frow) = fresh.rows.iter().find(|r| r.id == brow.id) else {
            out.push(Regression {
                row: brow.id.clone(),
                metric: "<row>".into(),
                baseline: f64::NAN,
                fresh: f64::NAN,
                worsened: f64::INFINITY,
                tolerance: 0.0,
            });
            continue;
        };
        for bm in &brow.metrics {
            let Some(fm) = frow.metrics.iter().find(|m| m.name == bm.name) else {
                out.push(Regression {
                    row: brow.id.clone(),
                    metric: bm.name.clone(),
                    baseline: bm.value,
                    fresh: f64::NAN,
                    worsened: f64::INFINITY,
                    tolerance: bm.tolerance,
                });
                continue;
            };
            let worsened = worsening(bm.direction, bm.value, fm.value);
            if worsened > bm.tolerance {
                out.push(Regression {
                    row: brow.id.clone(),
                    metric: bm.name.clone(),
                    baseline: bm.value,
                    fresh: fm.value,
                    worsened,
                    tolerance: bm.tolerance,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(p99: f64, throughput: f64, events: f64) -> BenchReport {
        let mut r = BenchReport::new("fig9");
        let row = r.push_row("fig9/Un");
        row.metric("p99_put_response_s", p99, Direction::LargerWorse, 0.05);
        row.metric("puts_per_s", throughput, Direction::SmallerWorse, 0.05);
        row.metric("events_dispatched", events, Direction::Exact, 0.0);
        r
    }

    #[test]
    fn identical_reports_pass() {
        let base = report(0.002, 1500.0, 90_000.0);
        assert!(compare(&base, &base.clone()).is_empty());
    }

    #[test]
    fn improvements_pass_the_gate() {
        let base = report(0.002, 1500.0, 90_000.0);
        let better = report(0.001, 2000.0, 90_000.0);
        assert!(compare(&base, &better).is_empty());
    }

    #[test]
    fn regressions_beyond_tolerance_fail() {
        let base = report(0.002, 1500.0, 90_000.0);
        // +50% latency, -20% throughput, drifted event count: three hits.
        let worse = report(0.003, 1200.0, 90_001.0);
        let regs = compare(&base, &worse);
        assert_eq!(regs.len(), 3, "{regs:?}");
        assert!(regs[0].describe().contains("p99_put_response_s"));
        // Within-tolerance drift passes.
        let slight = report(0.00205, 1480.0, 90_000.0);
        assert!(compare(&base, &slight).is_empty());
    }

    #[test]
    fn missing_rows_and_metrics_fail() {
        let base = report(0.002, 1500.0, 90_000.0);
        let mut missing_metric = base.clone();
        missing_metric.rows[0].metrics.pop();
        assert_eq!(compare(&base, &missing_metric).len(), 1);
        let empty = BenchReport::new("fig9");
        assert_eq!(compare(&base, &empty).len(), 1);
        // New metrics in fresh don't fail against an older baseline.
        let mut extra = base.clone();
        extra.rows[0].metric("new_metric", 1.0, Direction::LargerWorse, 0.0);
        assert!(compare(&base, &extra).is_empty());
    }

    #[test]
    fn json_round_trips() {
        let r = report(0.002, 1500.0, 90_000.0);
        let text = r.to_json();
        assert!(text.ends_with('\n'));
        let back = BenchReport::from_json(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.file_name(), "BENCH_fig9.json");
    }
}
