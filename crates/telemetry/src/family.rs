//! Labeled metric families over the registry's dotted-name convention.
//!
//! The metrics registry namespaces by convention: `staging.server3.bytes`,
//! `wf.put_response_s`, `sup.outage_s`. Exporters want families with
//! labels instead — one `staging_server_bytes` family with a `shard="3"`
//! label per series, so downstream tooling can aggregate across shards.
//! [`parse`] maps a raw registry name onto a [`MetricKey`]:
//!
//! * the first dotted segment becomes the `domain` label
//!   (`staging`, `wf`, `net`, `sup`, ...);
//! * a segment matching `server<N>` / `shard<N>` becomes a `shard="<N>"`
//!   label, with the numeral dropped from the family name;
//! * a segment matching `comp<N>` / `app<N>` becomes a `component="<N>"`
//!   label, likewise dropped;
//! * remaining segments join with `_` to form the OpenMetrics-safe family
//!   name.
//!
//! The mapping is pure string processing — no registry changes — so every
//! existing metric name keeps working and gains labels for free.

use serde::{Deserialize, Serialize};

/// A metric family name plus its extracted labels, both deterministic
/// functions of the raw registry name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MetricKey {
    /// OpenMetrics-safe family name (`[a-z0-9_]`, dots → underscores,
    /// numeric shard/component suffixes stripped into labels).
    pub family: String,
    /// `(label, value)` pairs, in fixed label order
    /// (`component`, `domain`, `shard`).
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Render the label set as an OpenMetrics selector, `{}`-free when
    /// empty: `{domain="staging",shard="3"}`.
    pub fn label_selector(&self) -> String {
        if self.labels.is_empty() {
            return String::new();
        }
        let inner: Vec<String> = self.labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{{{}}}", inner.join(","))
    }
}

/// Split a segment like `server12` into `("server", "12")`; `None` when the
/// segment has no trailing numerals or no alphabetic stem.
fn split_numeric_suffix(seg: &str) -> Option<(&str, &str)> {
    let digits = seg.len() - seg.chars().rev().take_while(|c| c.is_ascii_digit()).count();
    if digits == 0 || digits == seg.len() {
        return None;
    }
    Some(seg.split_at(digits))
}

/// Parse a raw registry name into its labeled family (see module docs).
pub fn parse(raw: &str) -> MetricKey {
    let mut parts: Vec<String> = Vec::new();
    let mut labels: Vec<(String, String)> = Vec::new();
    for (i, seg) in raw.split('.').enumerate() {
        if i == 0 {
            labels.push(("domain".into(), seg.to_owned()));
            parts.push(seg.to_owned());
            continue;
        }
        match split_numeric_suffix(seg) {
            Some((stem @ ("server" | "shard"), n)) => {
                labels.push(("shard".into(), n.to_owned()));
                parts.push(stem.to_owned());
            }
            Some((stem @ ("comp" | "app"), n)) => {
                labels.push(("component".into(), n.to_owned()));
                parts.push(stem.to_owned());
            }
            _ => parts.push(seg.to_owned()),
        }
    }
    labels.sort();
    let family: String = parts
        .join("_")
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
        .collect();
    MetricKey { family, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_suffix_becomes_label() {
        let k = parse("staging.server3.bytes");
        assert_eq!(k.family, "staging_server_bytes");
        assert_eq!(
            k.labels,
            vec![("domain".into(), "staging".into()), ("shard".into(), "3".into())]
        );
        assert_eq!(k.label_selector(), r#"{domain="staging",shard="3"}"#);
    }

    #[test]
    fn plain_names_get_domain_only() {
        let k = parse("wf.put_response_s");
        assert_eq!(k.family, "wf_put_response_s");
        assert_eq!(k.labels, vec![("domain".into(), "wf".into())]);
    }

    #[test]
    fn component_suffix_becomes_label() {
        let k = parse("wf.app1.steps");
        assert_eq!(k.family, "wf_app_steps");
        assert_eq!(
            k.labels,
            vec![("component".into(), "1".into()), ("domain".into(), "wf".into())]
        );
    }

    #[test]
    fn non_suffix_numerals_stay_in_the_name() {
        // `p99` has no alphabetic stem boundary we recognize — stays put.
        let k = parse("wf.p99");
        assert_eq!(k.family, "wf_p99");
        // Pure-numeric or stemless segments stay put too.
        assert_eq!(parse("a.7.b").family, "a_7_b");
    }

    #[test]
    fn families_group_across_shards() {
        let a = parse("staging.server0.bytes");
        let b = parse("staging.server1.bytes");
        assert_eq!(a.family, b.family);
        assert_ne!(a.labels, b.labels);
    }
}
