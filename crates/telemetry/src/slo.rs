//! Windowed SLO objectives, error budgets, and burn-rate breach detection.
//!
//! An [`SloCfg`] declares objectives over the windowed series: "the
//! in-window p99 of `wf.put_response_s` stays under 2 ms", "no supervised
//! outage exceeds 5 s", "a queue depth never closes a window above 64".
//! Each objective carries an **error budget**: the fraction of windows
//! allowed to violate the target (the classic SRE formulation). The
//! evaluator tracks, over a trailing evaluation window of `burn_windows`
//! scrape windows, the **burn rate**
//!
//! ```text
//! burn = violating_windows / (budget × trailing_windows)
//! ```
//!
//! A burn rate ≥ 1 means the budget is being consumed faster than it
//! accrues; the instant the rate *crosses* 1 is a **breach** — the scraper
//! emits it into the obs trace at that virtual timestamp, so the breach
//! sits causally among the puts/faults that caused it. The same evaluator
//! replays offline over an exported series (`wf-metrics slo-check`), and
//! both paths produce identical breach instants by construction.

use crate::hist::ns_to_secs;
use crate::series::{Series, Window};
use serde::{Deserialize, Serialize};

/// What an objective measures within each window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Target {
    /// Quantile `q` of the named per-window histogram must stay `<= max_s`
    /// seconds (windows with no samples are compliant).
    Quantile {
        /// Histogram stream name (e.g. `wf.put_response_s`).
        metric: String,
        /// Quantile in [0, 1] (0.99 = p99; 1.0 = worst sample, the MTTR
        /// form `recovery.mttr < Y s`).
        q: f64,
        /// Threshold, seconds.
        max_s: f64,
    },
    /// The named counter must grow by at most `max` inside each window
    /// (e.g. `wf.net_retries`, digest mismatches).
    CounterDelta {
        /// Counter name.
        metric: String,
        /// Largest compliant in-window delta.
        max: u64,
    },
    /// The named gauge must close each window at or below `max`
    /// (queue-depth style; windows without the gauge are compliant).
    GaugeAtMost {
        /// Gauge name.
        metric: String,
        /// Largest compliant close value.
        max: i64,
    },
}

impl Target {
    /// Does `w` violate this target?
    pub fn violated_by(&self, w: &Window) -> bool {
        match self {
            Target::Quantile { metric, q, max_s } => w
                .hist(metric)
                .and_then(|h| h.quantile(*q))
                .is_some_and(|ns| ns_to_secs(ns) > *max_s),
            Target::CounterDelta { metric, max } => w.counter(metric) > *max,
            Target::GaugeAtMost { metric, max } => w.gauge(metric).is_some_and(|v| v > *max),
        }
    }

    /// The metric name this target watches.
    pub fn metric(&self) -> &str {
        match self {
            Target::Quantile { metric, .. }
            | Target::CounterDelta { metric, .. }
            | Target::GaugeAtMost { metric, .. } => metric,
        }
    }
}

/// One service-level objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    /// Short name for reports and trace instants (`put-p99`, `mttr`).
    pub name: String,
    /// The per-window compliance test.
    pub target: Target,
    /// Error budget: allowed violating fraction of windows, in (0, 1].
    pub budget: f64,
    /// Trailing evaluation window, in scrape windows (≥ 1).
    pub burn_windows: u32,
}

/// A set of objectives evaluated together over one run's series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloCfg {
    /// The objectives.
    pub objectives: Vec<Objective>,
}

impl SloCfg {
    /// Structural validation (budgets are fractions, windows nonzero).
    pub fn validate(&self) -> Result<(), String> {
        for (i, o) in self.objectives.iter().enumerate() {
            if !(o.budget > 0.0 && o.budget <= 1.0) {
                return Err(format!("objectives[{i}] ({}): budget must be in (0,1]", o.name));
            }
            if o.burn_windows == 0 {
                return Err(format!("objectives[{i}] ({}): burn_windows must be >= 1", o.name));
            }
            if let Target::Quantile { q, .. } = &o.target {
                if !(0.0..=1.0).contains(q) {
                    return Err(format!("objectives[{i}] ({}): quantile out of [0,1]", o.name));
                }
            }
        }
        Ok(())
    }
}

/// A burn-rate breach: the budget started burning faster than it accrues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Breach {
    /// Objective name.
    pub objective: String,
    /// Virtual time of the window close that crossed the threshold, ns.
    pub at_ns: u64,
    /// Burn rate at the crossing (≥ 1).
    pub burn_rate: f64,
}

/// Per-objective outcome over a full series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveReport {
    /// Objective name.
    pub objective: String,
    /// Windows evaluated.
    pub windows: u64,
    /// Windows that violated the target.
    pub violations: u64,
    /// Peak trailing burn rate observed.
    pub peak_burn: f64,
    /// Burn-rate breaches, in time order.
    pub breaches: Vec<Breach>,
}

impl ObjectiveReport {
    /// Did the objective hold (no breach)?
    pub fn ok(&self) -> bool {
        self.breaches.is_empty()
    }
}

/// Whole-config outcome: what `wf-metrics slo-check` prints and exits on.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Per-objective outcomes, config order.
    pub objectives: Vec<ObjectiveReport>,
}

impl SloReport {
    /// Every objective held.
    pub fn ok(&self) -> bool {
        self.objectives.iter().all(ObjectiveReport::ok)
    }

    /// All breaches across objectives, time order.
    pub fn breaches(&self) -> Vec<&Breach> {
        let mut all: Vec<&Breach> =
            self.objectives.iter().flat_map(|o| o.breaches.iter()).collect();
        all.sort_by(|a, b| (a.at_ns, &a.objective).cmp(&(b.at_ns, &b.objective)));
        all
    }
}

/// Ring of recent violation flags for one objective.
#[derive(Debug)]
struct BurnState {
    recent: Vec<bool>,
    next: usize,
    filled: usize,
    report: ObjectiveReport,
    /// Was the burn rate ≥ 1 after the previous window? Breaches fire on
    /// the upward crossing only.
    burning: bool,
}

/// Stateful evaluator: step one window at a time. The scraper drives it
/// online (emitting breach instants into the trace as they happen); the
/// CLI replays it offline over an exported series.
#[derive(Debug)]
pub struct SloEval {
    cfg: SloCfg,
    states: Vec<BurnState>,
}

impl SloEval {
    /// Evaluator for `cfg`.
    pub fn new(cfg: SloCfg) -> Self {
        let states = cfg
            .objectives
            .iter()
            .map(|o| BurnState {
                recent: vec![false; o.burn_windows.max(1) as usize],
                next: 0,
                filled: 0,
                report: ObjectiveReport {
                    objective: o.name.clone(),
                    windows: 0,
                    violations: 0,
                    peak_burn: 0.0,
                    breaches: Vec::new(),
                },
                burning: false,
            })
            .collect();
        SloEval { cfg, states }
    }

    /// Evaluate one closed window; returns breaches that fired at its close
    /// (usually empty).
    pub fn step(&mut self, w: &Window) -> Vec<Breach> {
        let mut fired = Vec::new();
        for (o, st) in self.cfg.objectives.iter().zip(&mut self.states) {
            let violated = o.target.violated_by(w);
            st.recent[st.next] = violated;
            st.next = (st.next + 1) % st.recent.len();
            st.filled = (st.filled + 1).min(st.recent.len());
            st.report.windows += 1;
            st.report.violations += u64::from(violated);
            let violating = st.recent.iter().take(st.filled).filter(|&&v| v).count();
            // Burn over the trailing window: violations / budget-allowance.
            let burn = violating as f64 / (o.budget * st.filled as f64);
            st.report.peak_burn = st.report.peak_burn.max(burn);
            let now_burning = burn >= 1.0 && violating > 0;
            if now_burning && !st.burning {
                let b = Breach { objective: o.name.clone(), at_ns: w.end_ns, burn_rate: burn };
                st.report.breaches.push(b.clone());
                fired.push(b);
            }
            st.burning = now_burning;
        }
        fired
    }

    /// Finish and report.
    pub fn finish(self) -> SloReport {
        SloReport { objectives: self.states.into_iter().map(|s| s.report).collect() }
    }

    /// One-shot offline evaluation of a whole series.
    pub fn evaluate(cfg: &SloCfg, series: &Series) -> SloReport {
        let mut ev = SloEval::new(cfg.clone());
        for w in &series.windows {
            ev.step(w);
        }
        ev.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{secs_to_ns, Histogram};

    fn lat_window(start_ns: u64, end_ns: u64, lat_s: f64) -> Window {
        let mut h = Histogram::default();
        h.record(secs_to_ns(lat_s));
        Window { start_ns, end_ns, hists: vec![("lat".into(), h)], ..Default::default() }
    }

    fn p99_objective(budget: f64, burn_windows: u32) -> SloCfg {
        SloCfg {
            objectives: vec![Objective {
                name: "lat-p99".into(),
                target: Target::Quantile { metric: "lat".into(), q: 0.99, max_s: 0.002 },
                budget,
                burn_windows,
            }],
        }
    }

    #[test]
    fn compliant_series_has_no_breach() {
        let cfg = p99_objective(0.1, 4);
        let mut ev = SloEval::new(cfg);
        for i in 0..10 {
            assert!(ev.step(&lat_window(i * 100, (i + 1) * 100, 0.001)).is_empty());
        }
        let rep = ev.finish();
        assert!(rep.ok());
        assert_eq!(rep.objectives[0].windows, 10);
        assert_eq!(rep.objectives[0].violations, 0);
    }

    #[test]
    fn breach_fires_on_upward_crossing_only() {
        // Budget 0.5 over 2 trailing windows → one violation in the pair
        // burns the full budget (burn = 1.0).
        let cfg = p99_objective(0.5, 2);
        let mut ev = SloEval::new(cfg);
        assert!(ev.step(&lat_window(0, 100, 0.001)).is_empty());
        let fired = ev.step(&lat_window(100, 200, 0.010));
        assert_eq!(fired.len(), 1, "crossing fires");
        assert_eq!(fired[0].at_ns, 200);
        assert!(fired[0].burn_rate >= 1.0);
        // Still violating: burning persists, no re-fire.
        assert!(ev.step(&lat_window(200, 300, 0.010)).is_empty());
        // Recovers (two quiet windows flush the ring), then re-breaches.
        assert!(ev.step(&lat_window(300, 400, 0.001)).is_empty());
        assert!(ev.step(&lat_window(400, 500, 0.001)).is_empty());
        let again = ev.step(&lat_window(500, 600, 0.010));
        assert_eq!(again.len(), 1, "second crossing fires again");
        let rep = ev.finish();
        assert!(!rep.ok());
        assert_eq!(rep.objectives[0].breaches.len(), 2);
        assert_eq!(rep.breaches().len(), 2);
    }

    #[test]
    fn empty_windows_are_compliant() {
        let cfg = p99_objective(0.1, 2);
        let rep = SloEval::evaluate(
            &cfg,
            &Series {
                window_ns: 100,
                windows: vec![Window { start_ns: 0, end_ns: 100, ..Default::default() }],
            },
        );
        assert!(rep.ok());
        assert_eq!(rep.objectives[0].windows, 1);
    }

    #[test]
    fn counter_and_gauge_targets() {
        let cfg = SloCfg {
            objectives: vec![
                Objective {
                    name: "retries".into(),
                    target: Target::CounterDelta { metric: "retries".into(), max: 2 },
                    budget: 0.25,
                    burn_windows: 4,
                },
                Objective {
                    name: "depth".into(),
                    target: Target::GaugeAtMost { metric: "depth".into(), max: 10 },
                    budget: 0.25,
                    burn_windows: 4,
                },
            ],
        };
        assert!(cfg.validate().is_ok());
        let w = Window {
            start_ns: 0,
            end_ns: 100,
            counters: vec![("retries".into(), 5)],
            gauges: vec![("depth".into(), 64)],
            ..Default::default()
        };
        assert!(cfg.objectives[0].target.violated_by(&w));
        assert!(cfg.objectives[1].target.violated_by(&w));
        let quiet = Window { start_ns: 100, end_ns: 200, ..Default::default() };
        assert!(!cfg.objectives[0].target.violated_by(&quiet));
        assert!(!cfg.objectives[1].target.violated_by(&quiet));
    }

    #[test]
    fn validate_rejects_bad_budgets() {
        let mut cfg = p99_objective(0.0, 2);
        assert!(cfg.validate().is_err());
        cfg = p99_objective(0.5, 0);
        assert!(cfg.validate().is_err());
        assert!(p99_objective(1.0, 1).validate().is_ok());
    }
}
