//! Byte-deterministic windowed time series built from periodic scrapes.
//!
//! A scraper (in the workflow crate, driven by virtual-time `Ctx` ticks)
//! feeds the cumulative registry state into a [`SeriesBuilder`] once per
//! window. The builder turns cumulative state into per-window activity:
//!
//! * **counters** → the delta accumulated inside the window;
//! * **gauges** → the value observed at window close (queue depths, bytes
//!   resident);
//! * **histograms** → the bucket-wise [`crate::Histogram::diff`] against
//!   the previous scrape, i.e. the exact latency histogram of samples that
//!   landed inside the window.
//!
//! Windows are aligned to `window_ns` boundaries of the *virtual* clock, so
//! the same seed always yields the same series, byte for byte — the
//! determinism contract `tests/telemetry.rs` locks in. Entries within a
//! window are name-ordered (scrapes feed from `BTreeMap`-backed
//! registries), making serialized output canonical.

use crate::hist::Histogram;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One closed scrape window: per-window activity, entries in name order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Window {
    /// Window start, virtual nanoseconds (aligned to the window width,
    /// except for a final partial window flushed at run end).
    pub start_ns: u64,
    /// Window end (exclusive), virtual nanoseconds.
    pub end_ns: u64,
    /// Counter deltas accumulated inside the window, name order.
    pub counters: Vec<(String, u64)>,
    /// Gauge values at window close, name order.
    pub gauges: Vec<(String, i64)>,
    /// Per-window latency histograms (samples recorded inside the window),
    /// name order.
    pub hists: Vec<(String, Histogram)>,
}

impl Window {
    /// Counter delta by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// Gauge value at window close.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Per-window histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// True when nothing moved inside the window.
    pub fn is_quiet(&self) -> bool {
        self.counters.iter().all(|(_, v)| *v == 0) && self.hists.iter().all(|(_, h)| h.is_empty())
    }
}

/// A complete run's windowed time series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Window width, virtual nanoseconds.
    pub window_ns: u64,
    /// Closed windows, ascending by `start_ns`.
    pub windows: Vec<Window>,
}

impl Series {
    /// Iterate `(window, value)` for one counter, in time order.
    pub fn counter_points(&self, name: &str) -> impl Iterator<Item = (u64, u64)> + '_ {
        let name = name.to_owned();
        self.windows.iter().map(move |w| (w.start_ns, w.counter(&name)))
    }

    /// Iterate `(window, value)` for one gauge, in time order (windows
    /// where the gauge was absent are skipped).
    pub fn gauge_points(&self, name: &str) -> impl Iterator<Item = (u64, i64)> + '_ {
        let name = name.to_owned();
        self.windows.iter().filter_map(move |w| w.gauge(&name).map(|v| (w.start_ns, v)))
    }

    /// Merge every per-window histogram of `name` back into one cumulative
    /// histogram — exact, because histogram merge is lossless (the windowed
    /// decomposition loses nothing versus the end-of-run snapshot).
    pub fn cumulative_hist(&self, name: &str) -> Option<Histogram> {
        let mut acc: Option<Histogram> = None;
        for w in &self.windows {
            if let Some(h) = w.hist(name) {
                match &mut acc {
                    Some(a) => a.merge(h),
                    None => acc = Some(h.clone()),
                }
            }
        }
        acc
    }

    /// All counter names that ever appeared, name order.
    pub fn counter_names(&self) -> Vec<String> {
        let mut set: Vec<String> = Vec::new();
        for w in &self.windows {
            for (n, _) in &w.counters {
                if !set.contains(n) {
                    set.push(n.clone());
                }
            }
        }
        set.sort();
        set
    }
}

/// Incremental builder: feed the cumulative registry state once per window;
/// the builder diffs against the previous scrape. Use one builder per run.
#[derive(Debug, Default)]
pub struct SeriesBuilder {
    window_ns: u64,
    prev_counters: BTreeMap<String, u64>,
    prev_hists: BTreeMap<String, Histogram>,
    windows: Vec<Window>,
    /// Scratch for the window being assembled.
    cur: Option<Window>,
}

impl SeriesBuilder {
    /// Builder for `window_ns`-wide windows.
    pub fn new(window_ns: u64) -> Self {
        SeriesBuilder { window_ns: window_ns.max(1), ..Default::default() }
    }

    /// Open the window closing at `end_ns`. Call the `feed_*` methods for
    /// every metric, then [`SeriesBuilder::close_window`].
    pub fn begin_window(&mut self, end_ns: u64) {
        let start_ns = self.windows.last().map_or(0, |w| w.end_ns);
        self.cur = Some(Window { start_ns, end_ns: end_ns.max(start_ns), ..Default::default() });
    }

    /// Feed one cumulative counter; the builder stores the in-window delta.
    pub fn feed_counter(&mut self, name: &str, cumulative: u64) {
        let prev = self.prev_counters.get(name).copied().unwrap_or(0);
        self.prev_counters.insert(name.to_owned(), cumulative);
        if let Some(w) = &mut self.cur {
            w.counters.push((name.to_owned(), cumulative.saturating_sub(prev)));
        }
    }

    /// Feed one gauge value as observed at window close.
    pub fn feed_gauge(&mut self, name: &str, value: i64) {
        if let Some(w) = &mut self.cur {
            w.gauges.push((name.to_owned(), value));
        }
    }

    /// Feed one cumulative histogram; the builder stores the in-window
    /// bucket delta.
    pub fn feed_hist(&mut self, name: &str, cumulative: &Histogram) {
        let delta = match self.prev_hists.get(name) {
            Some(prev) => cumulative.diff(prev),
            None => cumulative.clone(),
        };
        self.prev_hists.insert(name.to_owned(), cumulative.clone());
        if let Some(w) = &mut self.cur {
            w.hists.push((name.to_owned(), delta));
        }
    }

    /// Close the open window.
    pub fn close_window(&mut self) {
        if let Some(w) = self.cur.take() {
            self.windows.push(w);
        }
    }

    /// Number of closed windows so far.
    pub fn closed(&self) -> usize {
        self.windows.len()
    }

    /// The most recently closed window (the SLO evaluator steps on this).
    pub fn last_window(&self) -> Option<&Window> {
        self.windows.last()
    }

    /// Finish the series.
    pub fn finish(mut self) -> Series {
        self.close_window();
        Series { window_ns: self.window_ns, windows: self.windows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_become_window_deltas() {
        let mut b = SeriesBuilder::new(1_000);
        b.begin_window(1_000);
        b.feed_counter("puts", 5);
        b.close_window();
        b.begin_window(2_000);
        b.feed_counter("puts", 12);
        b.close_window();
        let s = b.finish();
        let pts: Vec<(u64, u64)> = s.counter_points("puts").collect();
        assert_eq!(pts, vec![(0, 5), (1_000, 7)]);
    }

    #[test]
    fn hist_windows_merge_back_to_cumulative() {
        // Linear-region values (below 2^grouping) keep even the diff's
        // re-derived min/max exact, so windows merge back bit-identically.
        let mut cum = Histogram::default();
        let mut b = SeriesBuilder::new(10);
        for w in 0..4u64 {
            for v in 0..=w {
                cum.record(v);
            }
            b.begin_window((w + 1) * 10);
            b.feed_hist("lat", &cum);
            b.close_window();
        }
        let s = b.finish();
        assert_eq!(s.windows.len(), 4);
        assert_eq!(s.windows[2].hist("lat").unwrap().count(), 3);
        assert_eq!(s.cumulative_hist("lat").unwrap(), cum);
    }

    #[test]
    fn hist_windows_preserve_counts_and_quantiles_beyond_linear_region() {
        // Above the linear region the diff's min/max are bucket-resolution,
        // but counts, sums, and every quantile of the merged windows match
        // the cumulative histogram exactly (bucket counts are lossless).
        let mut cum = Histogram::default();
        let mut b = SeriesBuilder::new(10);
        for w in 0..5u64 {
            for v in 0..=w {
                cum.record((v + 1) * 100_000);
            }
            b.begin_window((w + 1) * 10);
            b.feed_hist("lat", &cum);
            b.close_window();
        }
        let s = b.finish();
        let merged = s.cumulative_hist("lat").unwrap();
        assert_eq!(merged.count(), cum.count());
        assert_eq!(merged.sum(), cum.sum());
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), cum.quantile(q), "q={q}");
        }
    }

    #[test]
    fn gauges_record_close_values() {
        let mut b = SeriesBuilder::new(10);
        b.begin_window(10);
        b.feed_gauge("depth", 3);
        b.close_window();
        b.begin_window(20);
        b.feed_gauge("depth", 0);
        b.close_window();
        let s = b.finish();
        let pts: Vec<(u64, i64)> = s.gauge_points("depth").collect();
        assert_eq!(pts, vec![(0, 3), (10, 0)]);
        assert!(s.windows[1].is_quiet());
    }

    #[test]
    fn serde_round_trips() {
        let mut b = SeriesBuilder::new(100);
        b.begin_window(100);
        b.feed_counter("c", 1);
        b.feed_gauge("g", -2);
        let mut h = Histogram::default();
        h.record(42);
        b.feed_hist("h", &h);
        b.close_window();
        let s = b.finish();
        let json = serde_json::to_string(&s).unwrap();
        let back: Series = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
