//! Byte-deterministic exporters for the windowed series.
//!
//! * [`to_openmetrics`] — OpenMetrics text exposition: one labeled family
//!   per metric (see [`crate::family`]), one sample per window, timestamps
//!   in virtual seconds. Histogram streams export their per-window count,
//!   sum, and the p50/p99/p999 quantiles as `_q50`/`_q99`/`_q999` gauges
//!   (the bucket dump would drown scrapers; quantiles are what dashboards
//!   plot). Ends with the spec's `# EOF` terminator.
//! * [`to_jsonl`] — one JSON object per window, the lossless form
//!   `wf-metrics` and the diff tooling read back.
//!
//! Both outputs are pure functions of the series: same seed → same series →
//! same bytes, which is what the tier-1 determinism test asserts.

use crate::family::parse;
use crate::series::{Series, Window};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Nanoseconds → fixed-point seconds with microsecond precision, integer
/// math only (output bytes must not depend on float formatting).
fn fmt_ts(ns: u64) -> String {
    format!("{}.{:06}", ns / 1_000_000_000, (ns % 1_000_000_000) / 1_000)
}

/// Quantile value (ns) → seconds with nanosecond precision, integer math.
fn fmt_secs_ns(ns: u64) -> String {
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

/// One OpenMetrics line: `family{labels} value timestamp`.
fn sample_line(out: &mut String, family: &str, selector: &str, value: &str, ts_ns: u64) {
    let _ = writeln!(out, "{family}{selector} {value} {}", fmt_ts(ts_ns));
}

/// Render the series as OpenMetrics text exposition (see module docs).
pub fn to_openmetrics(series: &Series) -> String {
    // Group samples by family so each family is declared once. BTreeMap
    // keys keep family order deterministic; per-family sample order is
    // (selector, time).
    #[derive(Default)]
    struct Fam {
        kind: &'static str,
        samples: Vec<(String, u64, String)>, // (selector, ts, value)
    }
    let mut fams: BTreeMap<String, Fam> = BTreeMap::new();
    let mut push = |name: &str, suffix: &str, kind: &'static str, ts: u64, value: String| {
        let key = parse(name);
        let fam = fams.entry(format!("{}{suffix}", key.family)).or_default();
        fam.kind = kind;
        fam.samples.push((key.label_selector(), ts, value));
    };
    for w in &series.windows {
        for (name, delta) in &w.counters {
            push(name, "_delta", "gauge", w.end_ns, delta.to_string());
        }
        for (name, value) in &w.gauges {
            push(name, "", "gauge", w.end_ns, value.to_string());
        }
        for (name, h) in &w.hists {
            push(name, "_count", "gauge", w.end_ns, h.count().to_string());
            push(name, "_sum_s", "gauge", w.end_ns, fmt_secs_ns(h.sum()));
            for (q, suffix) in [(0.50, "_q50"), (0.99, "_q99"), (0.999, "_q999")] {
                if let Some(v) = h.quantile(q) {
                    push(name, suffix, "gauge", w.end_ns, fmt_secs_ns(v));
                }
            }
        }
    }
    let mut out = String::new();
    for (family, mut fam) in fams {
        let _ = writeln!(out, "# TYPE {family} {}", fam.kind);
        fam.samples.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
        for (selector, ts, value) in &fam.samples {
            sample_line(&mut out, &family, selector, value, *ts);
        }
    }
    out.push_str("# EOF\n");
    out
}

/// Render one window as a JSON object (helper for [`to_jsonl`]).
fn window_json(w: &Window) -> String {
    serde_json::to_string(w).expect("window serializes")
}

/// Render the series as JSON Lines: a header object carrying the window
/// width, then one object per window.
pub fn to_jsonl(series: &Series) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{\"window_ns\":{}}}", series.window_ns);
    for w in &series.windows {
        out.push_str(&window_json(w));
        out.push('\n');
    }
    out
}

/// Parse a series back from its [`to_jsonl`] form.
pub fn from_jsonl(text: &str) -> Result<Series, String> {
    #[derive(serde::Deserialize)]
    struct Header {
        window_ns: u64,
    }
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty series file")?;
    let Header { window_ns } =
        serde_json::from_str(header).map_err(|e| format!("series header: {e}"))?;
    let mut windows = Vec::new();
    for (i, line) in lines.enumerate() {
        windows
            .push(serde_json::from_str(line).map_err(|e| format!("series line {}: {e}", i + 2))?);
    }
    Ok(Series { window_ns, windows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::series::SeriesBuilder;

    fn sample_series() -> Series {
        let mut b = SeriesBuilder::new(1_000_000);
        let mut h = Histogram::default();
        for w in 0..3u64 {
            h.record((w + 1) * 1_000);
            b.begin_window((w + 1) * 1_000_000);
            b.feed_counter("wf.puts", (w + 1) * 10);
            b.feed_gauge("staging.server0.qdepth", w as i64);
            b.feed_hist("wf.put_response_s", &h);
            b.close_window();
        }
        b.finish()
    }

    #[test]
    fn openmetrics_is_deterministic_and_labeled() {
        let s = sample_series();
        let a = to_openmetrics(&s);
        let b = to_openmetrics(&s);
        assert_eq!(a, b);
        assert!(a.contains("# TYPE staging_server_qdepth gauge"), "{a}");
        assert!(a.contains(r#"staging_server_qdepth{domain="staging",shard="0"} 1"#), "{a}");
        assert!(a.contains("wf_puts_delta"), "{a}");
        assert!(a.contains("wf_put_response_s_q99"), "{a}");
        assert!(a.ends_with("# EOF\n"));
    }

    #[test]
    fn timestamps_are_integer_math() {
        assert_eq!(fmt_ts(0), "0.000000");
        assert_eq!(fmt_ts(1_500_000), "0.001500");
        assert_eq!(fmt_ts(2_000_001_000), "2.000001");
        assert_eq!(fmt_secs_ns(1_500_000), "0.001500000");
    }

    #[test]
    fn jsonl_round_trips() {
        let s = sample_series();
        let text = to_jsonl(&s);
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, s);
        assert!(from_jsonl("").is_err());
        assert!(from_jsonl("{\"not_window_ns\":1}").is_err());
    }
}
