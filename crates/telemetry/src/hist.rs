//! Mergeable log-linear (HDR-style) histograms over `u64` values.
//!
//! The registry's tail streams previously kept only a P² estimate of p99 —
//! five markers, unmergeable, with no error bound. A [`Histogram`] stores
//! exact per-bucket counts instead, so:
//!
//! * any quantile (p50/p99/p999/max) is available after the fact;
//! * merging is exact: bucket counts add, so `merge` is associative and
//!   commutative and a merged histogram equals the histogram of the
//!   concatenated sample multiset (the property the threaded transport's
//!   per-thread metrics rely on);
//! * the value error is *bounded by construction*: every bucket spans at
//!   most a `1/2^grouping` relative range.
//!
//! ## Bucketing scheme
//!
//! With grouping `g` (default [`DEFAULT_GROUPING`] = 7) each power-of-two
//! octave is split into `2^g` linear sub-buckets:
//!
//! * values below `2^g` get one bucket each (the linear region — **exact**);
//! * a value `v ≥ 2^g` with top bit `b` lands in bucket
//!   `(b - g) * 2^g + (v >> (b - g))`, whose width is `2^(b-g)` —
//!   at most `v / 2^g`, hence the `2^-g` relative error bound.
//!
//! Bucket indices fit in `u32` for the whole `u64` range; storage is a
//! sparse `BTreeMap` so iteration (and serialization) is in deterministic
//! index order.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default sub-bucket bits: 128 sub-buckets per octave, ≤ 1/128 (< 0.8 %)
/// relative quantile error.
pub const DEFAULT_GROUPING: u32 = 7;

/// Exact, mergeable log-linear histogram of `u64` values (see module docs
/// for the bucketing scheme). Construct with [`Histogram::new`] or
/// `Histogram::default()`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Sub-bucket bits `g`: each octave is split into `2^g` linear buckets.
    grouping: u32,
    /// Sparse bucket counts, keyed by bucket index.
    buckets: BTreeMap<u32, u64>,
    /// Total recorded samples.
    count: u64,
    /// Saturating sum of recorded values (exact, not bucketed).
    sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    min: u64,
    /// Largest recorded value (0 when empty).
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new(DEFAULT_GROUPING)
    }
}

impl Histogram {
    /// Empty histogram with `2^grouping` sub-buckets per octave. `grouping`
    /// is clamped to `[1, 16]` (beyond 16 the bucket table stops paying for
    /// itself).
    pub fn new(grouping: u32) -> Self {
        let grouping = grouping.clamp(1, 16);
        Histogram { grouping, buckets: BTreeMap::new(), count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// The sub-bucket bits this histogram was built with.
    pub fn grouping(&self) -> u32 {
        self.grouping
    }

    /// Upper bound on the relative quantile error: `2^-grouping`.
    pub fn rel_error(&self) -> f64 {
        1.0 / (1u64 << self.grouping) as f64
    }

    /// Bucket index for `v` (see module docs).
    fn index_of(&self, v: u64) -> u32 {
        let g = self.grouping;
        if v < (1u64 << g) {
            v as u32
        } else {
            let top = 63 - v.leading_zeros(); // top >= g
            let shift = top - g;
            (shift << g) + (v >> shift) as u32
        }
    }

    /// Smallest value mapping to bucket `idx`. A bucket `idx >= 2^g`
    /// decodes to mantissa `(idx mod 2^g) + 2^g` shifted by
    /// `(idx >> g) - 1` (the `index_of` encoding run backwards).
    fn bucket_lower(&self, idx: u32) -> u64 {
        let g = self.grouping;
        let sub = 1u32 << g;
        if idx < sub {
            u64::from(idx)
        } else {
            let shift = (idx >> g) - 1;
            u64::from((idx & (sub - 1)) + sub) << shift
        }
    }

    /// Largest value mapping to bucket `idx` (`lower + width - 1`, computed
    /// without overflowing at the top octave).
    fn bucket_upper(&self, idx: u32) -> u64 {
        let g = self.grouping;
        let sub = 1u32 << g;
        if idx < sub {
            u64::from(idx)
        } else {
            let shift = (idx >> g) - 1;
            self.bucket_lower(idx) + ((1u64 << shift) - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` samples of value `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        *self.buckets.entry(self.index_of(v)).or_insert(0) += n;
        self.count += n;
        self.sum = self.sum.saturating_add(v.saturating_mul(n));
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Saturating sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merge `other` into `self`: bucket counts add, so the result is the
    /// histogram of the concatenated sample multiset. Associative and
    /// commutative. Panics on grouping mismatch — the registry always
    /// builds histograms with one grouping, so a mismatch is a wiring bug.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.grouping, other.grouping, "histogram grouping mismatch");
        for (&idx, &n) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise difference `self - earlier`, for turning two cumulative
    /// snapshots into a per-window histogram. `earlier` must be a prefix of
    /// `self` (same grouping, counts monotone); `min`/`max` of the delta are
    /// re-derived from the surviving buckets' bounds (exact in the linear
    /// region, bucket-resolution above it).
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        assert_eq!(self.grouping, earlier.grouping, "histogram grouping mismatch");
        let mut out = Histogram::new(self.grouping);
        for (&idx, &n) in &self.buckets {
            let prev = earlier.buckets.get(&idx).copied().unwrap_or(0);
            if n > prev {
                out.buckets.insert(idx, n - prev);
            }
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        if let (Some(&first), Some(&last)) =
            (out.buckets.keys().next(), out.buckets.keys().next_back())
        {
            // Clamp by the cumulative extremes (tracked exactly): the delta
            // containing the global min/max then reports it exactly, so
            // merging all window deltas reproduces the cumulative
            // histogram's min, max, and therefore every quantile.
            out.min = out.bucket_lower(first).max(self.min);
            out.max = out.bucket_upper(last).min(self.max);
        }
        out
    }

    /// Value at quantile `q` ∈ [0, 1]: the upper bound of the bucket holding
    /// the sample of rank `ceil(q · count)`. Exact for values below `2^g`;
    /// within `2^-g` relative error above. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // ceil(q * count) without float edge cases, clamped to [1, count].
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                // The extreme buckets are pinned to the recorded extremes,
                // which are tracked exactly.
                let hi = self.bucket_upper(idx).min(self.max);
                return Some(hi.max(self.min));
            }
        }
        Some(self.max)
    }

    /// Iterate non-empty buckets as `(lower, upper, count)`, ascending.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().map(|(&idx, &n)| (self.bucket_lower(idx), self.bucket_upper(idx), n))
    }
}

/// Seconds → nanosecond ticks for recording `f64` latencies into a
/// [`Histogram`] (negatives clamp to zero; deterministic IEEE rounding).
pub fn secs_to_ns(s: f64) -> u64 {
    // NaN and negatives both clamp to zero ticks.
    if s > 0.0 {
        (s * 1e9).round() as u64
    } else {
        0
    }
}

/// Nanosecond ticks → seconds, the inverse view for reports.
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        let mut h = Histogram::default();
        for v in 0..100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(0.5), Some(49)); // rank 50 (1-based) = value 49
        assert_eq!(h.quantile(1.0), Some(99));
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(99));
    }

    #[test]
    fn quantile_error_is_bounded() {
        let mut h = Histogram::default();
        for i in 1..=10_000u64 {
            h.record(i * 1_000); // 1k .. 10M
        }
        for &(q, exact) in &[(0.5, 5_000_000.0), (0.99, 9_900_000.0), (0.999, 9_990_000.0)] {
            let est = h.quantile(q).unwrap() as f64;
            let rel = (est - exact).abs() / exact;
            assert!(rel <= h.rel_error() + 1e-4, "q={q}: est {est} vs {exact} (rel {rel})");
        }
    }

    #[test]
    fn index_bounds_are_consistent() {
        let h = Histogram::new(5);
        for v in [0, 1, 31, 32, 33, 1000, u64::MAX / 2, u64::MAX] {
            let idx = h.index_of(v);
            assert!(h.bucket_lower(idx) <= v, "lower({idx}) > {v}");
            assert!(v <= h.bucket_upper(idx), "{v} > upper({idx})");
            if idx > 0 {
                assert_eq!(h.bucket_upper(idx - 1) + 1, h.bucket_lower(idx), "contiguous at {idx}");
            }
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut all = Histogram::default();
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for i in 0..500u64 {
            let v = i * i % 7919;
            all.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn diff_recovers_window_counts() {
        let mut h = Histogram::default();
        h.record(10);
        h.record(20);
        let snap = h.clone();
        h.record(30);
        h.record(30);
        let d = h.diff(&snap);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 60);
        assert_eq!(d.quantile(1.0), Some(30));
        // Empty delta for identical snapshots.
        assert!(h.diff(&h).is_empty());
    }

    #[test]
    fn secs_round_trip() {
        assert_eq!(secs_to_ns(0.0015), 1_500_000);
        assert_eq!(secs_to_ns(-1.0), 0);
        assert!((ns_to_secs(1_500_000) - 0.0015).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trips() {
        let mut h = Histogram::default();
        for v in [1u64, 5, 1000, 123_456_789] {
            h.record(v);
        }
        let json = serde_json::to_string(&h).unwrap();
        let back: Histogram = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }
}
