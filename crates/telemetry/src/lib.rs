#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # telemetry — deterministic time-series telemetry
//!
//! The measurement substrate for the reproduction's quantitative claims.
//! Everything in this crate is a pure, deterministic data structure — no
//! clocks, no I/O, no randomness — so it sits inside the determinism
//! envelope and every derived artifact (series, export, SLO report, bench
//! report) is a byte-stable function of the run.
//!
//! * [`hist`] — exact, mergeable log-linear (HDR-style) [`Histogram`]s:
//!   bucket counts instead of the old lossy P² markers, so p50/p99/p999
//!   are available with a proven `2^-g` relative error bound and merging
//!   (threaded per-thread registries, per-shard series) is lossless.
//! * [`family`] — labeled metric families parsed from the registry's
//!   dotted-name convention (`staging.server3.bytes` →
//!   `staging_server_bytes{domain="staging",shard="3"}`).
//! * [`series`] — the windowed [`Series`] a virtual-time scraper builds:
//!   per-window counter deltas, gauge closes, and latency histograms.
//! * [`slo`] — [`SloCfg`] objectives with windowed error budgets and
//!   burn-rate [`Breach`] detection, evaluated online (breach instants
//!   land in the obs trace) and offline (`wf-metrics slo-check`).
//! * [`export`] — OpenMetrics text exposition and JSONL, both
//!   byte-deterministic.
//! * [`bench`] — canonical `BENCH_*.json` run reports plus the
//!   tolerance-band [`bench::compare`] gate CI runs against the committed
//!   baseline.

pub mod bench;
pub mod export;
pub mod family;
pub mod hist;
pub mod series;
pub mod slo;

pub use bench::{BenchReport, Direction, Regression};
pub use family::MetricKey;
pub use hist::{ns_to_secs, secs_to_ns, Histogram};
pub use series::{Series, SeriesBuilder, Window};
pub use slo::{Breach, Objective, SloCfg, SloEval, SloReport, Target};
