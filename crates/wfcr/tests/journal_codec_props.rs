//! Property tests for the wfcr journal wire codec: binary round-trip over
//! every entry variant, legacy-JSON cross-version decode through the same
//! sniffing entry point, and the zero-copy meta/payload split.

use bytes::Bytes;
use proptest::prelude::*;
use staging::geometry::BBox;
use staging::payload::Payload;
use staging::proto::ObjDesc;
use staging::wire;
use wfcr::journal::JournalEntry;

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (1u8..=3, any::<[u64; 3]>(), any::<[u64; 3]>()).prop_map(|(ndim, lb, ub)| BBox { ndim, lb, ub })
}

fn arb_payload() -> impl Strategy<Value = Payload> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..64).prop_map(|b| Payload::Inline(Bytes::from(b))),
        (any::<u64>(), any::<u64>()).prop_map(|(len, digest)| Payload::Virtual { len, digest }),
    ]
}

fn arb_entry() -> impl Strategy<Value = JournalEntry> {
    let desc = (any::<u32>(), any::<u32>(), arb_bbox()).prop_map(|(var, version, bbox)| ObjDesc {
        var,
        version,
        bbox,
    });
    prop_oneof![
        (any::<u32>(), desc, arb_payload(), any::<u64>()).prop_map(
            |(app, desc, payload, digest)| JournalEntry::Put { app, desc, payload, digest }
        ),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            arb_bbox(),
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(app, var, requested, served, bbox, bytes, digest)| {
                JournalEntry::Get { app, var, requested, served, bbox, bytes, digest }
            }),
        (any::<u32>(), any::<u64>(), any::<u32>(), prop::option::of(any::<u32>())).prop_map(
            |(app, w_chk_id, upto_version, floor)| JournalEntry::Checkpoint {
                app,
                w_chk_id,
                upto_version,
                floor,
            }
        ),
        (any::<u32>(), any::<u32>())
            .prop_map(|(app, resume_version)| JournalEntry::Recovery { app, resume_version }),
    ]
}

proptest! {
    /// Binary encode → decode is the identity for every entry variant.
    #[test]
    fn binary_codec_round_trips(entry in arb_entry()) {
        let encoded = entry.encode();
        prop_assert_eq!(encoded[0], wire::WIRE_MAGIC);
        let back = JournalEntry::decode(&encoded).expect("binary decode");
        prop_assert_eq!(back, entry);
    }

    /// Cross-version: entries written by the old JSON codec decode through
    /// the same sniffing entry point to the identical value.
    #[test]
    fn legacy_json_codec_round_trips(entry in arb_entry()) {
        let encoded = entry.encode_json();
        prop_assert!(!wire::is_binary(&encoded), "JSON must not sniff as binary");
        let back = JournalEntry::decode(&encoded).expect("JSON decode");
        prop_assert_eq!(back, entry);
    }

    /// The zero-copy split (meta scratch + inline payload bytes riding as a
    /// separate vectored part) concatenates to the contiguous encoding.
    #[test]
    fn meta_plus_payload_equals_contiguous(entry in arb_entry()) {
        let mut split = Vec::new();
        entry.encode_meta_into(&mut split);
        if let Some(b) = entry.inline_payload() {
            split.extend_from_slice(b);
        }
        prop_assert_eq!(split, entry.encode());
    }

    /// Truncating a binary entry anywhere fails cleanly — no panic, and
    /// never a successful decode to a different entry.
    #[test]
    fn truncated_binary_never_misdecodes(entry in arb_entry()) {
        let encoded = entry.encode();
        for cut in 0..encoded.len() {
            if let Some(got) = JournalEntry::decode(&encoded[..cut]) {
                prop_assert_eq!(got, entry.clone(), "a prefix decoded to a different entry");
            }
        }
    }
}
