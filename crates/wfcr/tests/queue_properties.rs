//! Property tests on the event-queue invariants that the replay and GC
//! machinery rely on.

use proptest::prelude::*;
use staging::geometry::BBox;
use staging::proto::ObjDesc;
use wfcr::event::LogEvent;
use wfcr::queue::EventQueue;

#[derive(Debug, Clone)]
enum QOp {
    Put(u32),
    Get(u32),
    Ckpt(u32),
    Truncate(u32),
}

fn arb_ops() -> impl Strategy<Value = Vec<QOp>> {
    // Versions appended in nondecreasing order, as in a real run.
    prop::collection::vec((0u32..3, 1u32..6), 1..60).prop_map(|steps| {
        let mut v = 0u32;
        let mut out = Vec::new();
        for (kind, dv) in steps {
            v += dv;
            out.push(match kind {
                0 => QOp::Put(v),
                1 => QOp::Get(v),
                _ => QOp::Ckpt(v),
            });
            if v.is_multiple_of(7) {
                out.push(QOp::Truncate(v));
            }
        }
        out
    })
}

fn put(version: u32) -> LogEvent {
    LogEvent::Put {
        app: 0,
        desc: ObjDesc { var: 0, version, bbox: BBox::d1(0, 9) },
        bytes: 10,
        digest: version as u64,
    }
}

fn get(version: u32) -> LogEvent {
    LogEvent::Get {
        app: 0,
        var: 0,
        requested: version,
        served: version,
        bbox: BBox::d1(0, 9),
        bytes: 10,
        digest: version as u64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Replay scripts only contain transport events newer than the resume
    /// version, in append order, and never contain control markers.
    #[test]
    fn replay_script_invariants(ops in arb_ops(), resume in 0u32..40) {
        let mut q = EventQueue::new();
        let mut expected: Vec<u32> = Vec::new();
        let mut next_chk = 1u64;
        for op in &ops {
            match op {
                QOp::Put(v) => {
                    q.push(put(*v));
                    if *v > resume {
                        expected.push(*v);
                    }
                }
                QOp::Get(v) => {
                    q.push(get(*v));
                    if *v > resume {
                        expected.push(*v);
                    }
                }
                QOp::Ckpt(v) => {
                    q.push(LogEvent::Checkpoint { app: 0, w_chk_id: next_chk, upto_version: *v });
                    next_chk += 1;
                }
                QOp::Truncate(_) => {} // applied in the truncation test below
            }
        }
        let script = q.replay_script(resume);
        prop_assert!(script.iter().all(LogEvent::is_transport));
        let versions: Vec<u32> = script.iter().map(LogEvent::version).collect();
        prop_assert_eq!(versions, expected);
    }

    /// Truncation never removes events a future replay (from the newest
    /// checkpoint) could need, and never increases byte usage.
    #[test]
    fn truncation_preserves_replayability(ops in arb_ops()) {
        let mut q = EventQueue::new();
        let mut next_chk = 1u64;
        for op in &ops {
            match op {
                QOp::Put(v) => q.push(put(*v)),
                QOp::Get(v) => q.push(get(*v)),
                QOp::Ckpt(v) => {
                    q.push(LogEvent::Checkpoint { app: 0, w_chk_id: next_chk, upto_version: *v });
                    next_chk += 1;
                }
                QOp::Truncate(v) => {
                    let Some(resume) = q.checkpoint_version() else {
                        prop_assert_eq!(q.truncate_through(*v), 0);
                        continue;
                    };
                    let script_before = q.replay_script(resume);
                    let bytes_before = q.bytes();
                    q.truncate_through(*v);
                    prop_assert!(q.bytes() <= bytes_before);
                    let script_after = q.replay_script(resume);
                    prop_assert_eq!(
                        format!("{script_before:?}"),
                        format!("{script_after:?}"),
                        "truncation changed the replay script"
                    );
                }
            }
        }
    }

    /// `appended` counts every push; `len` never exceeds it.
    #[test]
    fn append_accounting(ops in arb_ops()) {
        let mut q = EventQueue::new();
        let mut pushes = 0u64;
        let mut next_chk = 1u64;
        for op in &ops {
            match op {
                QOp::Put(v) => { q.push(put(*v)); pushes += 1; }
                QOp::Get(v) => { q.push(get(*v)); pushes += 1; }
                QOp::Ckpt(v) => {
                    q.push(LogEvent::Checkpoint { app: 0, w_chk_id: next_chk, upto_version: *v });
                    next_chk += 1;
                    pushes += 1;
                }
                QOp::Truncate(v) => { q.truncate_through(*v); }
            }
            prop_assert_eq!(q.appended(), pushes);
            prop_assert!(q.len() as u64 <= pushes);
        }
    }
}
