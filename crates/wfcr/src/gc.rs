//! Garbage collection of logged data (paper §III-A.2).
//!
//! "Data staging servers periodically delete logged data which are related
//! with previous checkpoint periods without data dependency to other
//! application components, and only keep the latest version of data in
//! staging area."
//!
//! The rule implemented here: a logged version `v` of a variable is
//! collectible when
//!
//! 1. every registered component has checkpointed through `v` (no possible
//!    rollback can replay a read of `v`), **and**
//! 2. no replay is currently active with a resume version `< v`, **and**
//! 3. `v` is not the newest stored version of its variable (ongoing coupling
//!    still reads the latest data).
//!
//! The GC floor is therefore `min(per-app checkpoint marks, active replay
//! floors)`; see the safety property test in `tests/` which exercises random
//! failure/checkpoint schedules.

use staging::proto::{AppId, Version};
use staging::store::VersionedStore;
use std::collections::BTreeMap;

/// Tracks per-component checkpoint progress and computes the GC floor.
#[derive(Debug, Default, Clone, serde::Serialize, serde::Deserialize)]
pub struct GcState {
    // BTreeMap keeps mark iteration (floor computation, serialization)
    // deterministic across hosts.
    marks: BTreeMap<AppId, Version>,
    /// Bytes reclaimed over the store's lifetime.
    reclaimed: u64,
    /// GC passes executed.
    passes: u64,
}

impl GcState {
    /// Fresh GC state; components register implicitly at first checkpoint,
    /// or explicitly via [`GcState::register`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a component before its first checkpoint (its mark starts at
    /// 0, pinning the log until it checkpoints — conservative and safe).
    pub fn register(&mut self, app: AppId) {
        self.marks.entry(app).or_insert(0);
    }

    /// Record that `app` checkpointed through `upto` (marks only advance).
    pub fn mark_checkpoint(&mut self, app: AppId, upto: Version) {
        let m = self.marks.entry(app).or_insert(0);
        if upto > *m {
            *m = upto;
        }
    }

    /// The checkpoint mark of `app` (0 if unregistered).
    pub fn mark(&self, app: AppId) -> Version {
        self.marks.get(&app).copied().unwrap_or(0)
    }

    /// The collection floor: nothing at or below this version may be needed
    /// by any rollback. `replay_floor` is the lowest resume version among
    /// active replays, if any.
    pub fn floor(&self, replay_floor: Option<Version>) -> Version {
        let mark_floor = self.marks.values().copied().min().unwrap_or(0);
        match replay_floor {
            Some(r) => mark_floor.min(r),
            None => mark_floor,
        }
    }

    /// Run a collection pass over `store`: for every variable, delete
    /// versions `<= floor` except the newest stored version. Returns bytes
    /// freed.
    pub fn collect(&mut self, store: &mut VersionedStore, replay_floor: Option<Version>) -> u64 {
        let floor = self.floor(replay_floor);
        let mut freed = 0;
        for var in store.vars() {
            let Some(newest) = store.newest_version(var) else { continue };
            // The collectible versions — everything `<= floor` except the
            // newest — form a contiguous prefix of the version map; drop it
            // as one range instead of removing version by version.
            let keep_from = newest.min(floor.saturating_add(1));
            freed += store.remove_older_than(var, keep_from);
        }
        self.reclaimed += freed;
        self.passes += 1;
        freed
    }

    /// Bytes reclaimed across all passes.
    pub fn reclaimed(&self) -> u64 {
        self.reclaimed
    }

    /// Collection passes executed.
    pub fn passes(&self) -> u64 {
        self.passes
    }

    /// Registered components.
    pub fn apps(&self) -> Vec<AppId> {
        let mut v: Vec<AppId> = self.marks.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staging::geometry::BBox;
    use staging::payload::Payload;
    use staging::proto::ObjDesc;

    fn fill(store: &mut VersionedStore, var: u32, versions: std::ops::RangeInclusive<u32>) {
        for v in versions {
            store.put(
                ObjDesc { var, version: v, bbox: BBox::d1(0, 9) },
                Payload::virtual_from(100, &[var as u64, v as u64]),
            );
        }
    }

    #[test]
    fn floor_is_min_mark() {
        let mut gc = GcState::new();
        gc.register(0);
        gc.register(1);
        assert_eq!(gc.floor(None), 0);
        gc.mark_checkpoint(0, 8);
        assert_eq!(gc.floor(None), 0, "app 1 has not checkpointed");
        gc.mark_checkpoint(1, 5);
        assert_eq!(gc.floor(None), 5);
        assert_eq!(gc.mark(0), 8);
    }

    #[test]
    fn marks_never_regress() {
        let mut gc = GcState::new();
        gc.mark_checkpoint(0, 8);
        gc.mark_checkpoint(0, 3);
        assert_eq!(gc.mark(0), 8);
    }

    #[test]
    fn replay_floor_pins_collection() {
        let mut gc = GcState::new();
        gc.mark_checkpoint(0, 10);
        gc.mark_checkpoint(1, 10);
        assert_eq!(gc.floor(Some(4)), 4);
        assert_eq!(gc.floor(None), 10);
    }

    #[test]
    fn collect_deletes_below_floor_keeps_latest() {
        let mut store = VersionedStore::unbounded();
        fill(&mut store, 0, 1..=6);
        let mut gc = GcState::new();
        gc.mark_checkpoint(0, 4);
        gc.mark_checkpoint(1, 4);
        let freed = gc.collect(&mut store, None);
        assert_eq!(freed, 400); // versions 1..=4 removed
        assert_eq!(store.versions(0), vec![5, 6]);
        assert_eq!(gc.reclaimed(), 400);
        assert_eq!(gc.passes(), 1);
    }

    #[test]
    fn collect_keeps_latest_even_below_floor() {
        let mut store = VersionedStore::unbounded();
        fill(&mut store, 0, 1..=3);
        let mut gc = GcState::new();
        gc.mark_checkpoint(0, 10);
        gc.collect(&mut store, None);
        assert_eq!(store.versions(0), vec![3], "latest version survives");
    }

    #[test]
    fn unregistered_apps_pin_nothing_until_registered() {
        let mut store = VersionedStore::unbounded();
        fill(&mut store, 0, 1..=5);
        let mut gc = GcState::new();
        gc.mark_checkpoint(0, 5);
        // Only app 0 known: floor = 5.
        gc.collect(&mut store, None);
        assert_eq!(store.versions(0), vec![5]);
    }

    #[test]
    fn registered_but_never_checkpointed_pins_everything() {
        let mut store = VersionedStore::unbounded();
        fill(&mut store, 0, 1..=5);
        let mut gc = GcState::new();
        gc.register(0);
        gc.register(1);
        gc.mark_checkpoint(0, 5);
        let freed = gc.collect(&mut store, None);
        assert_eq!(freed, 0, "app 1's mark is 0");
        assert_eq!(store.versions(0).len(), 5);
    }

    #[test]
    fn multiple_vars_collected_independently() {
        let mut store = VersionedStore::unbounded();
        fill(&mut store, 0, 1..=4);
        fill(&mut store, 1, 3..=6);
        let mut gc = GcState::new();
        gc.mark_checkpoint(0, 4);
        gc.collect(&mut store, None);
        assert_eq!(store.versions(0), vec![4]);
        assert_eq!(store.versions(1), vec![5, 6]);
    }
}
