//! The logging store backend — data/event logging plugged into the staging
//! server (the paper's "Data Logging Component" + "Garbage Collection
//! Component" of Figure 8).
//!
//! [`LoggingBackend`] implements [`staging::service::StoreBackend`], so the
//! unmodified staging server (DES actor or thread loop) becomes a *logging*
//! staging server by construction. Differences from the plain backend:
//!
//! * the version store is unbounded — old versions are the data log, deleted
//!   only by GC;
//! * every put/get appends a [`LogEvent`] to the issuing component's queue;
//! * `workflow_check` control events insert checkpoint markers, advance the
//!   GC marks, and trigger a collection pass;
//! * `workflow_restart` control events build the replay script and flip the
//!   component into replay mode;
//! * during replay, puts matching the script are absorbed and gets are
//!   served the logged version, with digest verification.

use crate::event::LogEvent;
use crate::gc::GcState;
use crate::journal::{JournalEntry, JournalHandle};
use crate::queue::EventQueue;
use crate::replay::{GetDecision, PutDecision, ReplayManager};
use staging::payload::fnv1a_words;
use staging::proto::{
    AppId, CtlRequest, CtlResponse, GetPiece, GetRequest, PutRequest, PutStatus, Version,
};
use staging::service::{OpStats, StoreBackend};
use staging::store::VersionedStore;
use std::collections::BTreeMap;

/// Aggregate digest for a set of get pieces: order-insensitive combination of
/// piece digests and bbox corners, so that re-served results compare stably.
pub fn pieces_digest(pieces: &[GetPiece]) -> u64 {
    let mut acc = 0u64;
    for p in pieces {
        acc ^= fnv1a_words(
            p.payload.digest(),
            &[p.bbox.lb[0], p.bbox.lb[1], p.bbox.lb[2], p.payload.len()],
        );
    }
    acc
}

/// Data/event-logging backend for staging servers.
///
/// ```
/// use staging::geometry::BBox;
/// use staging::payload::Payload;
/// use staging::proto::{CtlRequest, GetRequest, ObjDesc, PutRequest, PutStatus};
/// use staging::service::StoreBackend;
/// use wfcr::backend::LoggingBackend;
///
/// let mut b = LoggingBackend::new();
/// b.register_app(0); // simulation
/// b.register_app(1); // analytics
///
/// // Three coupling cycles.
/// let bbox = BBox::d1(0, 63);
/// for v in 1..=3u32 {
///     b.put(&PutRequest {
///         app: 0,
///         desc: ObjDesc { var: 0, version: v, bbox },
///         payload: Payload::virtual_from(64, &[v as u64]),
///         seq: 0,
///         tctx: obs::TraceCtx::NONE,
///     });
///     b.get(&GetRequest { app: 1, var: 0, version: v, bbox, seq: 0, tctx: obs::TraceCtx::NONE });
/// }
///
/// // The simulation checkpoints through step 2, then fails and restarts:
/// b.control(CtlRequest::Checkpoint { app: 0, upto_version: 2 });
/// b.control(CtlRequest::Recovery { app: 0, resume_version: 2 });
///
/// // Its deterministic re-write of step 3 is absorbed, not duplicated.
/// let (status, _) = b.put(&PutRequest {
///     app: 0,
///     desc: ObjDesc { var: 0, version: 3, bbox },
///     payload: Payload::virtual_from(64, &[3]),
///     seq: 0,
///     tctx: obs::TraceCtx::NONE,
/// });
/// assert_eq!(status, PutStatus::Absorbed);
/// assert_eq!(b.digest_mismatches(), 0);
/// ```
#[derive(Debug)]
pub struct LoggingBackend {
    store: VersionedStore,
    // BTreeMap, not HashMap: `queues.values_mut()` drives GC trimming and
    // journal rebuild, and those sweeps must visit apps in the same order on
    // every host for runs to be reproducible.
    queues: BTreeMap<AppId, EventQueue>,
    replay: ReplayManager,
    gc: GcState,
    next_w_chk: u64,
    /// Garbage collection enabled (disable only for ablation studies; the
    /// log grows without bound otherwise).
    gc_enabled: bool,
    /// Redundant writes absorbed during replays.
    absorbed_puts: u64,
    /// Gets served from the log at a historical version.
    replayed_gets: u64,
    /// Optional durable journal: every stored put, served get, and control
    /// marker is mirrored to disk so the whole backend can be rebuilt after
    /// full process death ([`LoggingBackend::from_journal`]).
    journal: Option<JournalHandle>,
    /// Mutation hook: offset added to the version served for replayed gets,
    /// deliberately breaking replay-version fidelity. Model-checker tests
    /// use it to verify the oracles catch the violation; always 0 otherwise.
    replay_version_skew: u32,
}

impl Default for LoggingBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl LoggingBackend {
    /// Empty backend. Components may be pre-registered with
    /// [`LoggingBackend::register_app`] so GC is pinned until their first
    /// checkpoint.
    pub fn new() -> Self {
        LoggingBackend {
            store: VersionedStore::unbounded(),
            queues: BTreeMap::new(),
            replay: ReplayManager::new(),
            gc: GcState::new(),
            next_w_chk: 1,
            gc_enabled: true,
            absorbed_puts: 0,
            replayed_gets: 0,
            journal: None,
            replay_version_skew: 0,
        }
    }

    /// Attach a durable journal sink. From here on, every stored put, served
    /// get, checkpoint, and recovery marker is mirrored through it; control
    /// entries flush, so the durable prefix always reaches the last
    /// checkpoint.
    pub fn attach_journal(&mut self, sink: Box<dyn logstore::Journal>) {
        self.journal = Some(JournalHandle::new(sink));
    }

    /// Attach a durable journal sink with an explicit coalescing window:
    /// entries are handed to the sink in batches of `coalesce` records (one
    /// vectored group commit each) instead of the default window. Commit
    /// points still hand off and flush immediately.
    pub fn attach_journal_coalesced(&mut self, sink: Box<dyn logstore::Journal>, coalesce: usize) {
        self.journal = Some(JournalHandle::with_coalesce(sink, coalesce));
    }

    /// Is a durable journal attached?
    pub fn has_journal(&self) -> bool {
        self.journal.is_some()
    }

    /// Flush the journal's buffered tail (graceful shutdown / stats
    /// harvest). No-op without a journal.
    pub fn flush_journal(&mut self) {
        if let Some(j) = self.journal.as_mut() {
            j.flush();
        }
    }

    /// Bytes the journal has physically flushed (0 without a journal).
    pub fn journal_bytes_flushed(&self) -> u64 {
        self.journal.as_ref().map_or(0, JournalHandle::bytes_flushed)
    }

    /// Journal segments deleted by watermark compaction (0 without one).
    pub fn journal_segments_compacted(&self) -> u64 {
        self.journal.as_ref().map_or(0, JournalHandle::segments_compacted)
    }

    /// Journal I/O errors swallowed (durability degraded, not correctness).
    pub fn journal_errors(&self) -> u64 {
        self.journal.as_ref().map_or(0, JournalHandle::errors)
    }

    /// Journal group commits — fsyncs that made ≥2 records durable at once
    /// (0 without a journal).
    pub fn journal_group_commits(&self) -> u64 {
        self.journal.as_ref().map_or(0, JournalHandle::group_commits)
    }

    /// Journal records delivered to the sink through batched hand-offs (0
    /// without a journal).
    pub fn journal_records_batched(&self) -> u64 {
        self.journal.as_ref().map_or(0, JournalHandle::records_batched)
    }

    /// Rebuild a backend by replaying recovered journal entries in order.
    /// `apps` pre-registers components (pinning GC exactly as the original
    /// run's registration did). Replay state starts fresh: a replay that was
    /// in flight at crash time is simply restarted by the component's own
    /// `workflow_restart()` after the cold restart.
    pub fn from_journal(entries: Vec<JournalEntry>, apps: &[AppId]) -> LoggingBackend {
        let mut b = LoggingBackend::new();
        for &a in apps {
            b.register_app(a);
        }
        for entry in entries {
            match entry {
                JournalEntry::Put { app, desc, payload, digest } => {
                    let bytes = payload.accounted_len();
                    b.store.put(desc, payload);
                    b.queues.entry(app).or_default().push(LogEvent::Put {
                        app,
                        desc,
                        bytes,
                        digest,
                    });
                }
                JournalEntry::Get { app, var, requested, served, bbox, bytes, digest } => {
                    b.queues.entry(app).or_default().push(LogEvent::Get {
                        app,
                        var,
                        requested,
                        served,
                        bbox,
                        bytes,
                        digest,
                    });
                }
                JournalEntry::Checkpoint { app, w_chk_id, upto_version, floor } => {
                    b.queues.entry(app).or_default().push(LogEvent::Checkpoint {
                        app,
                        w_chk_id,
                        upto_version,
                    });
                    b.gc.mark_checkpoint(app, upto_version);
                    b.next_w_chk = b.next_w_chk.max(w_chk_id + 1);
                    // Re-run the collection pass with the recorded effective
                    // floor. `min(marks) >= floor` holds at this point of the
                    // replayed history, so pinning with the floor itself
                    // reproduces the original pass exactly.
                    if let Some(f) = floor {
                        b.gc.collect(&mut b.store, Some(f));
                        for q in b.queues.values_mut() {
                            q.truncate_through(f);
                        }
                    }
                }
                JournalEntry::Recovery { app, resume_version } => {
                    b.queues
                        .entry(app)
                        .or_default()
                        .push(LogEvent::Recovery { app, resume_version });
                }
            }
        }
        b
    }

    fn journal_record(&mut self, entry: JournalEntry) {
        if let Some(j) = self.journal.as_mut() {
            j.record(&entry);
        }
    }

    /// Enable/disable garbage collection (ablation studies only).
    pub fn set_gc_enabled(&mut self, enabled: bool) {
        self.gc_enabled = enabled;
    }

    /// Pre-register a component (pins GC until it checkpoints).
    pub fn register_app(&mut self, app: AppId) {
        self.gc.register(app);
        self.queues.entry(app).or_default();
    }

    /// The wrapped version store (tests / inspection).
    pub fn store(&self) -> &VersionedStore {
        &self.store
    }

    /// The event queue of `app`, if it has issued any request.
    pub fn queue(&self, app: AppId) -> Option<&EventQueue> {
        self.queues.get(&app)
    }

    /// Is `app` currently replaying?
    pub fn is_replaying(&self, app: AppId) -> bool {
        self.replay.is_replaying(app)
    }

    /// Redundant puts absorbed so far.
    pub fn absorbed_puts(&self) -> u64 {
        self.absorbed_puts
    }

    /// Replayed (log-served) gets so far.
    pub fn replayed_gets(&self) -> u64 {
        self.replayed_gets
    }

    /// Digest mismatches observed during replays (0 for deterministic apps).
    pub fn digest_mismatches(&self) -> u64 {
        self.replay.mismatches()
    }

    /// Bytes currently held in event queues (log metadata).
    pub fn queue_bytes(&self) -> u64 {
        self.queues.values().map(EventQueue::bytes).sum()
    }

    /// Bytes reclaimed by GC over the backend's lifetime.
    pub fn gc_reclaimed(&self) -> u64 {
        self.gc.reclaimed()
    }

    /// Components currently in replay mode.
    pub fn replaying_apps(&self) -> Vec<AppId> {
        let mut v: Vec<AppId> =
            self.queues.keys().copied().filter(|&a| self.replay.is_replaying(a)).collect();
        v.sort_unstable();
        v
    }

    pub(crate) fn store_clone(&self) -> VersionedStore {
        self.store.clone()
    }

    pub(crate) fn queues_clone(&self) -> BTreeMap<AppId, EventQueue> {
        self.queues.clone()
    }

    pub(crate) fn gc_clone(&self) -> crate::gc::GcState {
        self.gc.clone()
    }

    pub(crate) fn next_w_chk(&self) -> u64 {
        self.next_w_chk
    }

    /// Rebuild a backend from snapshotted parts (fresh replay state).
    pub(crate) fn restore_parts(
        store: VersionedStore,
        queues: BTreeMap<AppId, EventQueue>,
        gc: crate::gc::GcState,
        next_w_chk: u64,
    ) -> LoggingBackend {
        LoggingBackend {
            store,
            queues,
            replay: ReplayManager::new(),
            gc,
            next_w_chk,
            gc_enabled: true,
            absorbed_puts: 0,
            replayed_gets: 0,
            journal: None,
            replay_version_skew: 0,
        }
    }

    /// Deliberately serve `logged + skew` instead of the logged version for
    /// replayed gets. This is a seeded-violation hook for the model checker:
    /// with `skew > 0` the replay-version-fidelity oracle must trip (the
    /// served digest no longer matches the logged digest). Never set in
    /// production paths.
    pub fn set_replay_version_skew(&mut self, skew: u32) {
        self.replay_version_skew = skew;
    }

    /// The current GC floor: the version at or below which logged data may
    /// be collected (min per-app checkpoint mark, clamped by active replays).
    pub fn gc_floor(&self) -> Version {
        self.gc.floor(self.replay.active_floor())
    }

    /// Per-component checkpoint marks, sorted by app — the inputs to the GC
    /// floor, exposed for GC-safety oracles.
    pub fn gc_marks(&self) -> Vec<(AppId, Version)> {
        self.gc.apps().into_iter().map(|a| (a, self.gc.mark(a))).collect()
    }

    /// Apps with a registered event queue, sorted.
    pub fn queue_apps(&self) -> Vec<AppId> {
        self.queues.keys().copied().collect()
    }

    fn resolve_get_version(&self, req: &GetRequest) -> Version {
        // Serve the exact requested version when stored; otherwise the newest
        // stored version at or below the request (DataSpaces `get` semantics
        // for lagging readers).
        if self.store.covers_any(req.var, req.version, &req.bbox) {
            req.version
        } else {
            self.store.latest_version_at(req.var, req.version, &req.bbox).unwrap_or(req.version)
        }
    }
}

impl StoreBackend for LoggingBackend {
    // lint: commit-point
    fn put(&mut self, req: &PutRequest) -> (PutStatus, OpStats) {
        let digest = req.payload.digest();
        match self.replay.on_put(req.app, &req.desc, digest) {
            PutDecision::Absorb { digest_ok } => {
                if !digest_ok {
                    // Mismatch already counted by the replay manager; the
                    // write is still absorbed (the logged original is the
                    // authoritative copy).
                }
                self.absorbed_puts += 1;
                (
                    PutStatus::Absorbed,
                    // Only index work: no store copy, no new log entry.
                    OpStats::default(),
                )
            }
            PutDecision::Store => {
                let bytes = req.payload.accounted_len();
                self.store.put(req.desc, req.payload.clone());
                self.queues.entry(req.app).or_default().push(LogEvent::Put {
                    app: req.app,
                    desc: req.desc,
                    bytes,
                    digest,
                });
                self.journal_record(JournalEntry::Put {
                    app: req.app,
                    desc: req.desc,
                    payload: req.payload.clone(),
                    digest,
                });
                (
                    PutStatus::Stored,
                    OpStats {
                        touched_bytes: bytes,
                        log_events: 1,
                        logged_bytes: bytes,
                        ..Default::default()
                    },
                )
            }
        }
    }

    fn get(&mut self, req: &GetRequest) -> (Vec<GetPiece>, OpStats) {
        match self.replay.on_get(req.app, req.var, req.version, &req.bbox) {
            GetDecision::Replay { version, digest } => {
                let version = version + self.replay_version_skew;
                let pieces = self.store.query(req.var, version, &req.bbox);
                if pieces_digest(&pieces) != digest {
                    self.replay.record_mismatch();
                }
                self.replayed_gets += 1;
                let bytes: u64 = pieces.iter().map(|p| p.payload.accounted_len()).sum();
                // Replayed reads are not re-logged.
                (pieces, OpStats { touched_bytes: bytes, replayed: true, ..Default::default() })
            }
            GetDecision::Normal => {
                let served = self.resolve_get_version(req);
                let pieces = self.store.query(req.var, served, &req.bbox);
                let bytes: u64 = pieces.iter().map(|p| p.payload.accounted_len()).sum();
                let digest = pieces_digest(&pieces);
                self.queues.entry(req.app).or_default().push(LogEvent::Get {
                    app: req.app,
                    var: req.var,
                    requested: req.version,
                    served,
                    bbox: req.bbox,
                    bytes,
                    digest,
                });
                self.journal_record(JournalEntry::Get {
                    app: req.app,
                    var: req.var,
                    requested: req.version,
                    served,
                    bbox: req.bbox,
                    bytes,
                    digest,
                });
                (pieces, OpStats { touched_bytes: bytes, log_events: 1, ..Default::default() })
            }
        }
    }

    // lint: commit-point
    fn control(&mut self, req: CtlRequest) -> (CtlResponse, OpStats) {
        match req {
            CtlRequest::Checkpoint { app, upto_version } => {
                let w_chk_id = self.next_w_chk;
                self.next_w_chk += 1;
                self.queues.entry(app).or_default().push(LogEvent::Checkpoint {
                    app,
                    w_chk_id,
                    upto_version,
                });
                self.gc.mark_checkpoint(app, upto_version);
                // GC pass: collect the data log, then trim event queues.
                let (freed_data, freed_events, effective_floor) = if self.gc_enabled {
                    let replay_floor = self.replay.active_floor();
                    let freed_data = self.gc.collect(&mut self.store, replay_floor);
                    let floor = self.gc.floor(replay_floor);
                    let mut freed_events = 0u64;
                    for q in self.queues.values_mut() {
                        freed_events +=
                            q.truncate_through(floor) as u64 * crate::event::EVENT_BYTES;
                    }
                    (freed_data, freed_events, Some(floor))
                } else {
                    (0, 0, None)
                };
                // Mirror the marker (with the effective floor, so a rebuild
                // reruns the identical collection), then compact the durable
                // journal. The journal floor is tighter than the GC floor:
                // GC keeps the newest version of every variable even below
                // the floor, and those puts must stay replayable from disk.
                self.journal_record(JournalEntry::Checkpoint {
                    app,
                    w_chk_id,
                    upto_version,
                    floor: effective_floor,
                });
                if let (Some(floor), true) = (effective_floor, self.journal.is_some()) {
                    let data_floor = self
                        .store
                        .vars()
                        .iter()
                        .filter_map(|&v| self.store.newest_version(v))
                        .min()
                        .unwrap_or(floor);
                    let safe = u64::from(floor.min(data_floor));
                    if let Some(j) = self.journal.as_mut() {
                        j.compact_below(safe);
                    }
                }
                (
                    CtlResponse { req, pending_replay: 0 },
                    OpStats {
                        log_events: 1,
                        freed_bytes: freed_data + freed_events,
                        ..Default::default()
                    },
                )
            }
            CtlRequest::Recovery { app, resume_version } => {
                let script = self
                    .queues
                    .get(&app)
                    .map(|q| q.replay_script(resume_version))
                    .unwrap_or_default();
                let pending = self.replay.begin(app, resume_version, script) as u64;
                self.queues
                    .entry(app)
                    .or_default()
                    .push(LogEvent::Recovery { app, resume_version });
                self.journal_record(JournalEntry::Recovery { app, resume_version });
                (
                    CtlResponse { req, pending_replay: pending },
                    OpStats { log_events: 1, ..Default::default() },
                )
            }
            CtlRequest::GlobalReset { to_version } => {
                // Coordinated rollback is foreign to the logging scheme (the
                // whole point is to avoid it) but is honoured for
                // completeness: discard data and events newer than the cut.
                let freed = self.store.remove_newer_than(to_version);
                (
                    CtlResponse { req, pending_replay: 0 },
                    OpStats { freed_bytes: freed, ..Default::default() },
                )
            }
        }
    }

    fn get_ready(&self, req: &GetRequest) -> bool {
        // A replaying component reads from the log, which by construction
        // holds everything its script references.
        if self.replay.is_replaying(req.app) {
            return true;
        }
        self.store.covers_fully(req.var, req.version, &req.bbox)
            || self.store.newest_version(req.var).map(|v| v > req.version).unwrap_or(false)
    }

    fn bytes_resident(&self) -> u64 {
        self.store.bytes() + self.queue_bytes()
    }

    fn journal_bytes_flushed(&self) -> u64 {
        LoggingBackend::journal_bytes_flushed(self)
    }

    fn journal_segments_compacted(&self) -> u64 {
        LoggingBackend::journal_segments_compacted(self)
    }

    fn journal_group_commits(&self) -> u64 {
        LoggingBackend::journal_group_commits(self)
    }

    fn journal_records_batched(&self) -> u64 {
        LoggingBackend::journal_records_batched(self)
    }

    fn live_log_events(&self) -> u64 {
        self.queues.values().map(|q| q.transport_len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staging::geometry::BBox;
    use staging::payload::Payload;
    use staging::proto::ObjDesc;

    const SIM: AppId = 0;
    const ANA: AppId = 1;

    fn put_req(app: AppId, version: Version) -> PutRequest {
        let bbox = BBox::d1(0, 99);
        PutRequest {
            app,
            desc: ObjDesc { var: 0, version, bbox },
            payload: Payload::virtual_from(100, &[version as u64]),
            seq: 0,
            tctx: obs::TraceCtx::NONE,
        }
    }

    fn get_req(app: AppId, version: Version) -> GetRequest {
        GetRequest {
            app,
            var: 0,
            version,
            bbox: BBox::d1(0, 99),
            seq: 0,
            tctx: obs::TraceCtx::NONE,
        }
    }

    /// Run the paper's write-then-read coupling for `steps`, returning the
    /// digests the consumer observed.
    fn run_steps(b: &mut LoggingBackend, from: Version, to: Version) -> Vec<u64> {
        let mut seen = Vec::new();
        for v in from..=to {
            b.put(&put_req(SIM, v));
            let (pieces, _) = b.get(&get_req(ANA, v));
            seen.push(pieces_digest(&pieces));
        }
        seen
    }

    #[test]
    fn normal_path_logs_events() {
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        run_steps(&mut b, 1, 3);
        assert_eq!(b.queue(SIM).unwrap().len(), 3);
        assert_eq!(b.queue(ANA).unwrap().len(), 3);
        assert_eq!(b.store().versions(0), vec![1, 2, 3]);
        assert!(b.bytes_resident() > 300, "3 payloads + 6 events");
    }

    #[test]
    fn consumer_rollback_replays_historical_versions() {
        // Figure 2 case 1: the analytics fails and re-reads old steps while
        // the simulation has moved on.
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        let original = run_steps(&mut b, 1, 6);
        // Analytics checkpointed at 4 then failed at 6 → rollback to 4,
        // replays gets for 5 and 6.
        b.control(CtlRequest::Checkpoint { app: ANA, upto_version: 4 });
        let (resp, _) = b.control(CtlRequest::Recovery { app: ANA, resume_version: 4 });
        assert_eq!(resp.pending_replay, 2);
        assert!(b.is_replaying(ANA));
        // Meanwhile the simulation keeps writing new steps.
        b.put(&put_req(SIM, 7));
        // Replayed reads observe the original data.
        let (p5, _) = b.get(&get_req(ANA, 5));
        let (p6, _) = b.get(&get_req(ANA, 6));
        assert_eq!(pieces_digest(&p5), original[4]);
        assert_eq!(pieces_digest(&p6), original[5]);
        assert!(!b.is_replaying(ANA));
        assert_eq!(b.replayed_gets(), 2);
        assert_eq!(b.digest_mismatches(), 0);
        // Post-replay reads are normal again.
        let (p7, _) = b.get(&get_req(ANA, 7));
        assert!(!p7.is_empty());
    }

    #[test]
    fn producer_rollback_absorbs_redundant_puts() {
        // Figure 2 case 2: the simulation fails and re-writes staged steps.
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        run_steps(&mut b, 1, 6);
        b.control(CtlRequest::Checkpoint { app: SIM, upto_version: 4 });
        b.control(CtlRequest::Recovery { app: SIM, resume_version: 4 });
        // Deterministic re-execution re-puts 5 and 6 with identical payloads.
        let (s5, st5) = b.put(&put_req(SIM, 5));
        let (s6, _) = b.put(&put_req(SIM, 6));
        assert_eq!(s5, PutStatus::Absorbed);
        assert_eq!(s6, PutStatus::Absorbed);
        assert_eq!(st5.touched_bytes, 0, "absorbed write copies nothing");
        assert_eq!(b.absorbed_puts(), 2);
        assert_eq!(b.digest_mismatches(), 0);
        assert!(!b.is_replaying(SIM));
        // Version 7 is new work: stored normally.
        let (s7, _) = b.put(&put_req(SIM, 7));
        assert_eq!(s7, PutStatus::Stored);
        assert_eq!(b.store().versions(0).last(), Some(&7));
    }

    #[test]
    fn tampered_reexecution_flagged() {
        let mut b = LoggingBackend::new();
        run_steps(&mut b, 1, 2);
        b.control(CtlRequest::Recovery { app: SIM, resume_version: 0 });
        // Re-put version 1 with *different* content.
        let bad = PutRequest { payload: Payload::virtual_from(100, &[999]), ..put_req(SIM, 1) };
        let (status, _) = b.put(&bad);
        assert_eq!(status, PutStatus::Absorbed, "log stays authoritative");
        assert_eq!(b.digest_mismatches(), 1);
    }

    #[test]
    fn checkpoints_trigger_gc() {
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        run_steps(&mut b, 1, 8);
        let before = b.bytes_resident();
        // Both components checkpoint through 6 → versions 1..=5 collectible
        // (6 kept as a checkpointed-but-not-latest version? no: floor=6,
        // versions ≤6 except latest(8): 1..=6 go).
        b.control(CtlRequest::Checkpoint { app: SIM, upto_version: 6 });
        let (_, stats) = b.control(CtlRequest::Checkpoint { app: ANA, upto_version: 6 });
        assert!(stats.freed_bytes > 0);
        assert!(b.bytes_resident() < before);
        assert_eq!(b.store().versions(0), vec![7, 8]);
        assert!(b.gc_reclaimed() >= 600);
    }

    #[test]
    fn gc_pinned_while_peer_lags() {
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        run_steps(&mut b, 1, 8);
        // Only the simulation checkpoints; analytics never does.
        let (_, stats) = b.control(CtlRequest::Checkpoint { app: SIM, upto_version: 8 });
        assert_eq!(stats.freed_bytes, 0, "analytics mark pins the log");
        assert_eq!(b.store().versions(0).len(), 8);
    }

    #[test]
    fn gc_pinned_by_active_replay() {
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        run_steps(&mut b, 1, 6);
        // Analytics rolls back to 2 and starts replaying...
        b.control(CtlRequest::Checkpoint { app: ANA, upto_version: 2 });
        b.control(CtlRequest::Recovery { app: ANA, resume_version: 2 });
        assert!(b.is_replaying(ANA));
        // ...then both components checkpoint far ahead. GC must not eat the
        // versions the replay still needs.
        b.control(CtlRequest::Checkpoint { app: SIM, upto_version: 6 });
        b.control(CtlRequest::Checkpoint { app: ANA, upto_version: 6 });
        for v in [3, 4, 5, 6] {
            assert!(
                b.store().covers_any(0, v, &BBox::d1(0, 99)),
                "version {v} must survive for the active replay"
            );
        }
        // Replay completes correctly.
        let (p3, _) = b.get(&get_req(ANA, 3));
        assert!(!p3.is_empty());
    }

    #[test]
    fn absorbed_put_leaves_queue_unchanged() {
        let mut b = LoggingBackend::new();
        run_steps(&mut b, 1, 3);
        let qlen = b.queue(SIM).unwrap().len();
        b.control(CtlRequest::Recovery { app: SIM, resume_version: 0 });
        b.put(&put_req(SIM, 1));
        // Recovery marker added one event; the absorbed put adds none.
        assert_eq!(b.queue(SIM).unwrap().len(), qlen + 1);
    }

    #[test]
    fn second_failure_mid_replay_restarts_replay() {
        // The component fails again while only half-way through its replay:
        // the fresh `workflow_restart()` rebuilds the full script (replayed
        // requests were never re-logged, so the history is unchanged) and
        // the complete re-execution still observes the original data.
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        let original = run_steps(&mut b, 1, 6);
        b.control(CtlRequest::Checkpoint { app: ANA, upto_version: 2 });

        // First recovery: replay only step 3 of the 4-step script...
        let (r1, _) = b.control(CtlRequest::Recovery { app: ANA, resume_version: 2 });
        assert_eq!(r1.pending_replay, 4);
        let (p3, _) = b.get(&get_req(ANA, 3));
        assert_eq!(pieces_digest(&p3), original[2]);
        assert!(b.is_replaying(ANA));

        // ...then fail again mid-replay.
        let (r2, _) = b.control(CtlRequest::Recovery { app: ANA, resume_version: 2 });
        assert_eq!(r2.pending_replay, 4, "script rebuilt in full");
        for v in 3..=6u32 {
            let (pieces, _) = b.get(&get_req(ANA, v));
            assert_eq!(pieces_digest(&pieces), original[(v - 1) as usize], "v={v}");
        }
        assert!(!b.is_replaying(ANA));
        assert_eq!(b.digest_mismatches(), 0);
    }

    #[test]
    fn journal_rebuild_reproduces_state_after_process_death() {
        use logstore::{FlushPolicy, LogConfig, LogStore, MemMedia};
        let mem = MemMedia::new();
        let cfg = LogConfig { flush: FlushPolicy::PerBatch { records: 4 }, ..LogConfig::default() };
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        b.attach_journal(Box::new(LogStore::open(Box::new(mem.clone()), cfg).unwrap()));

        let original = run_steps(&mut b, 1, 6);
        b.control(CtlRequest::Checkpoint { app: SIM, upto_version: 4 });
        b.control(CtlRequest::Checkpoint { app: ANA, upto_version: 4 });
        run_steps(&mut b, 7, 8);
        assert_eq!(b.journal_errors(), 0);
        let live_versions = b.store().versions(0);
        let live_next_w_chk = b.next_w_chk();
        drop(b); // full process death: no flush of the buffered tail
        mem.crash();

        let log = LogStore::open(Box::new(mem.clone()), cfg).unwrap();
        let entries = crate::journal::decode_records(&log.read_all().unwrap());
        let mut rebuilt = LoggingBackend::from_journal(entries, &[SIM, ANA]);
        assert_eq!(rebuilt.next_w_chk(), live_next_w_chk);
        // Everything at or before the checkpoint floor is durable (the ctl
        // entry flushed); steps 7..8 may be lost to the crash but are
        // re-executed by the rolled-back apps — re-run them and compare.
        let resume = rebuilt.store().versions(0).last().copied().unwrap_or(4).min(6);
        let mut seen = Vec::new();
        for v in 1..=8u32 {
            if v > resume {
                rebuilt.put(&put_req(SIM, v));
            }
            let (pieces, _) = rebuilt.get(&get_req(ANA, v));
            if v > 6 || !pieces.is_empty() {
                seen.push((v, pieces_digest(&pieces)));
            }
        }
        for (v, digest) in seen {
            if (v as usize) <= original.len() && rebuilt.store().versions(0).contains(&v) {
                assert_eq!(digest, original[(v - 1) as usize], "digest diverged at step {v}");
            }
        }
        // GC floor and collected store survive the rebuild: versions below
        // the recorded floor are gone, exactly as in the live backend.
        for v in live_versions {
            assert!(
                rebuilt.store().versions(0).contains(&v) || v > resume,
                "live version {v} missing from rebuild"
            );
        }
    }

    #[test]
    fn journal_compaction_tracks_gc_floor() {
        use logstore::{FlushPolicy, LogConfig, LogStore, MemMedia};
        let mem = MemMedia::new();
        // Tiny segments so checkpoints can retire whole files.
        let cfg = LogConfig { segment_bytes: 256, flush: FlushPolicy::PerRecord };
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        b.attach_journal(Box::new(LogStore::open(Box::new(mem.clone()), cfg).unwrap()));
        for v in 1..=16u32 {
            b.put(&put_req(SIM, v));
            b.get(&get_req(ANA, v));
            if v % 4 == 0 {
                b.control(CtlRequest::Checkpoint { app: SIM, upto_version: v });
                b.control(CtlRequest::Checkpoint { app: ANA, upto_version: v });
            }
        }
        assert!(b.journal_segments_compacted() > 0, "GC floor must retire journal segments");
        assert_eq!(b.journal_errors(), 0);
        // The compacted journal still rebuilds a backend that serves the
        // retained versions correctly.
        b.flush_journal();
        let log = LogStore::open(Box::new(mem.clone()), cfg).unwrap();
        let entries = crate::journal::decode_records(&log.read_all().unwrap());
        let rebuilt = LoggingBackend::from_journal(entries, &[SIM, ANA]);
        assert_eq!(rebuilt.store().versions(0), b.store().versions(0));
    }

    #[test]
    fn memory_grows_with_checkpoint_period() {
        // The Figure 9(d) mechanism: longer checkpoint period ⇒ longer log.
        let mem_at_period = |period: Version| {
            let mut b = LoggingBackend::new();
            b.register_app(SIM);
            b.register_app(ANA);
            let mut peak = 0u64;
            for v in 1..=12 {
                b.put(&put_req(SIM, v));
                b.get(&get_req(ANA, v));
                if v % period == 0 {
                    b.control(CtlRequest::Checkpoint { app: SIM, upto_version: v });
                    b.control(CtlRequest::Checkpoint { app: ANA, upto_version: v });
                }
                peak = peak.max(b.bytes_resident());
            }
            peak
        };
        let p2 = mem_at_period(2);
        let p6 = mem_at_period(6);
        assert!(p6 > p2, "longer period must retain more log: {p6} vs {p2}");
    }
}
