//! Durable journaling of the staging event/data log.
//!
//! The paper's logging component keeps puts, gets, and `W_Chk_ID` markers in
//! staging memory; this module gives those records a durable twin. Every
//! event the [`crate::backend::LoggingBackend`] admits to its in-memory
//! queues is also encoded as a [`JournalEntry`] and handed to a
//! `logstore::Journal` sink. Control entries (checkpoint, recovery) are
//! commit points and force a flush, so the journal's durable prefix always
//! extends at least through the last checkpoint — which is exactly the
//! property the cold-restart equivalence proof needs: anything lost past
//! that point is re-executed deterministically by the rolled-back apps.
//!
//! **Write path.** Entries use the binary [`staging::wire`] codec (legacy
//! JSON journals stay readable by one-byte sniffing), and [`JournalHandle`]
//! *coalesces*: encoded metadata accumulates in one reusable scratch buffer,
//! inline put payloads ride alongside as refcounted `Bytes`, and the sink
//! receives whole [`logstore::BatchRecord`] groups — one vectored write and
//! one flush decision per group instead of per record. Coalesced entries are
//! exactly as volatile as sink-buffered ones; commit points hand off and
//! flush, so the durability contract is unchanged.
//!
//! Watermarks are data versions, so `compact_below` on the journal mirrors
//! `wfcr::gc` truncating the in-memory queues: once the GC floor passes a
//! whole segment's versions, the segment file is deleted.
//!
//! Replaying surviving entries in order through
//! [`crate::backend::LoggingBackend::from_journal`] rebuilds the store,
//! queues, GC marks, and `next_w_chk` exactly: checkpoint entries record the
//! *effective* floor the live GC pass used, so the rebuild runs the same
//! collections at the same points.

use bytes::Bytes;
use logstore::{BatchRecord, Journal};
use serde::{Deserialize, Serialize};
use staging::geometry::BBox;
use staging::payload::Payload;
use staging::proto::{AppId, ObjDesc, VarId, Version};
use staging::wire::{self, Reader};
use std::fmt;
use std::ops::Range;

pub use staging::store_journal::DEFAULT_COALESCE;

const TAG_PUT: u8 = 1;
const TAG_GET: u8 = 2;
const TAG_CHECKPOINT: u8 = 3;
const TAG_RECOVERY: u8 = 4;

/// One durable log record. Struct variants only (mirrors [`crate::event::LogEvent`])
/// plus the payload itself on puts — the journal must be able to rebuild the
/// data log, not just its metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// A stored put (absorbed replays are never journaled — the original
    /// entry is already durable).
    Put {
        /// Writing component.
        app: AppId,
        /// What was written.
        desc: ObjDesc,
        /// The written data (inline bytes or virtual size+digest).
        payload: Payload,
        /// Payload digest.
        digest: u64,
    },
    /// A served get (replayed gets are never journaled).
    Get {
        /// Reading component.
        app: AppId,
        /// Variable read.
        var: VarId,
        /// Version asked for.
        requested: Version,
        /// Version served.
        served: Version,
        /// Region read.
        bbox: BBox,
        /// Bytes served.
        bytes: u64,
        /// Digest of the served pieces.
        digest: u64,
    },
    /// A `workflow_check()` marker.
    Checkpoint {
        /// Checkpointing component.
        app: AppId,
        /// Globally unique checkpoint event id.
        w_chk_id: u64,
        /// Highest version the checkpoint covers.
        upto_version: Version,
        /// The effective GC floor the live collection pass used (`None` when
        /// GC was disabled). Recording it makes the rebuild's collection
        /// byte-identical: `min(marks) ≥ floor` holds at this point of the
        /// replayed history, so passing the floor back as a pin reproduces
        /// the original pass exactly.
        floor: Option<Version>,
    },
    /// A `workflow_restart()` marker. Replaying it re-inserts the queue
    /// marker only — it must NOT re-enter replay mode: any replay in flight
    /// at crash time is restarted from scratch by the app itself, which
    /// calls `workflow_restart()` again after the cold restart.
    Recovery {
        /// Recovering component.
        app: AppId,
        /// Version of the restored checkpoint.
        resume_version: Version,
    },
}

impl JournalEntry {
    /// Compaction watermark: the data version this entry is tied to.
    pub fn watermark(&self) -> u64 {
        u64::from(match *self {
            JournalEntry::Put { desc, .. } => desc.version,
            JournalEntry::Get { served, .. } => served,
            JournalEntry::Checkpoint { upto_version, .. } => upto_version,
            JournalEntry::Recovery { resume_version, .. } => resume_version,
        })
    }

    /// Is this a commit point that must be durable before the call returns?
    pub fn is_commit_point(&self) -> bool {
        matches!(self, JournalEntry::Checkpoint { .. } | JournalEntry::Recovery { .. })
    }

    /// Encode everything *except* an inline put payload's bytes into `out`
    /// (binary codec). The bytes — [`JournalEntry::inline_payload`] — must
    /// land immediately after this prefix; the zero-copy append path hands
    /// them to the log as a separate vectored part.
    pub fn encode_meta_into(&self, out: &mut Vec<u8>) {
        match self {
            JournalEntry::Put { app, desc, payload, digest } => {
                wire::put_header(out, TAG_PUT);
                wire::put_u32(out, *app);
                wire::put_u32(out, desc.var);
                wire::put_u32(out, desc.version);
                wire::put_bbox(out, &desc.bbox);
                wire::put_u64(out, *digest);
                wire::put_payload_meta(out, payload);
            }
            JournalEntry::Get { app, var, requested, served, bbox, bytes, digest } => {
                wire::put_header(out, TAG_GET);
                wire::put_u32(out, *app);
                wire::put_u32(out, *var);
                wire::put_u32(out, *requested);
                wire::put_u32(out, *served);
                wire::put_bbox(out, bbox);
                wire::put_u64(out, *bytes);
                wire::put_u64(out, *digest);
            }
            JournalEntry::Checkpoint { app, w_chk_id, upto_version, floor } => {
                wire::put_header(out, TAG_CHECKPOINT);
                wire::put_u32(out, *app);
                wire::put_u64(out, *w_chk_id);
                wire::put_u32(out, *upto_version);
                wire::put_opt_u32(out, *floor);
            }
            JournalEntry::Recovery { app, resume_version } => {
                wire::put_header(out, TAG_RECOVERY);
                wire::put_u32(out, *app);
                wire::put_u32(out, *resume_version);
            }
        }
    }

    /// The inline payload bytes that follow the metadata prefix, if any.
    pub fn inline_payload(&self) -> Option<&Bytes> {
        match self {
            JournalEntry::Put { payload, .. } => payload.bytes(),
            _ => None,
        }
    }

    /// Serialized form for the log record payload (binary codec).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_meta_into(&mut out);
        if let Some(b) = self.inline_payload() {
            out.extend_from_slice(b);
        }
        out
    }

    /// Legacy serde_json form — what journals written before the binary
    /// codec contain. Kept for cross-version tests; [`Self::decode`] reads
    /// both.
    pub fn encode_json(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("journal entries always serialize")
    }

    /// Parse a record payload back; `None` on format drift (the log frame
    /// CRC already rules out corruption). Sniffs the first byte: binary
    /// entries start with [`wire::WIRE_MAGIC`], legacy JSON entries with `{`.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if !wire::is_binary(bytes) {
            return serde_json::from_slice(bytes).ok();
        }
        let (tag, mut r) = Reader::for_entry(bytes).ok()?;
        let entry = match tag {
            TAG_PUT => {
                let app = r.u32().ok()?;
                let var = r.u32().ok()?;
                let version = r.u32().ok()?;
                let bbox = r.bbox().ok()?;
                let digest = r.u64().ok()?;
                let payload = r.payload().ok()?;
                JournalEntry::Put { app, desc: ObjDesc { var, version, bbox }, payload, digest }
            }
            TAG_GET => JournalEntry::Get {
                app: r.u32().ok()?,
                var: r.u32().ok()?,
                requested: r.u32().ok()?,
                served: r.u32().ok()?,
                bbox: r.bbox().ok()?,
                bytes: r.u64().ok()?,
                digest: r.u64().ok()?,
            },
            TAG_CHECKPOINT => JournalEntry::Checkpoint {
                app: r.u32().ok()?,
                w_chk_id: r.u64().ok()?,
                upto_version: r.u32().ok()?,
                floor: r.opt_u32().ok()?,
            },
            TAG_RECOVERY => {
                JournalEntry::Recovery { app: r.u32().ok()?, resume_version: r.u32().ok()? }
            }
            _ => return None,
        };
        r.finish().ok()?;
        Some(entry)
    }
}

/// A record coalesced in the handle, waiting for the next hand-off.
struct PendingRec {
    watermark: u64,
    meta: Range<usize>,
    payload: Option<Bytes>,
}

/// The backend's handle on its durable sink: owns the boxed
/// `logstore::Journal`, coalesces entries into batched group commits,
/// enforces commit-point flushes, and keeps error accounting (journal
/// failures degrade durability, never correctness — the in-memory log stays
/// authoritative).
pub struct JournalHandle {
    sink: Box<dyn Journal>,
    scratch: Vec<u8>,
    pending: Vec<PendingRec>,
    coalesce: usize,
    entries_recorded: u64,
    errors: u64,
}

impl fmt::Debug for JournalHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalHandle")
            .field("entries_recorded", &self.entries_recorded)
            .field("pending", &self.pending.len())
            .field("errors", &self.errors)
            .finish()
    }
}

impl JournalHandle {
    /// Wrap a sink with the default coalescing window.
    pub fn new(sink: Box<dyn Journal>) -> Self {
        Self::with_coalesce(sink, DEFAULT_COALESCE)
    }

    /// Wrap a sink, handing off batches every `coalesce` records (commit
    /// points always hand off immediately; 0 behaves as 1).
    pub fn with_coalesce(sink: Box<dyn Journal>, coalesce: usize) -> Self {
        JournalHandle {
            sink,
            scratch: Vec::new(),
            pending: Vec::new(),
            coalesce: coalesce.max(1),
            entries_recorded: 0,
            errors: 0,
        }
    }

    /// Record one entry. The entry is encoded now (metadata into the shared
    /// scratch, payload bytes by refcount) and handed to the sink in a batch
    /// at the next boundary; commit-point entries hand off and flush
    /// immediately.
    // lint: commit-point
    pub fn record(&mut self, entry: &JournalEntry) {
        self.entries_recorded += 1;
        let start = self.scratch.len();
        entry.encode_meta_into(&mut self.scratch);
        self.pending.push(PendingRec {
            watermark: entry.watermark(),
            meta: start..self.scratch.len(),
            payload: entry.inline_payload().cloned(),
        });
        if entry.is_commit_point() {
            self.hand_off();
            if self.sink.flush().is_err() {
                self.errors += 1;
            }
        } else if self.pending.len() >= self.coalesce {
            self.hand_off();
        }
    }

    /// Hand every pending record to the sink as one batch (one flush
    /// decision at the group boundary — the group commit).
    fn hand_off(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let JournalHandle { sink, scratch, pending, errors, .. } = self;
        let parts: Vec<[&[u8]; 2]> = pending
            .iter()
            .map(|p| [&scratch[p.meta.clone()], p.payload.as_deref().unwrap_or(&[])])
            .collect();
        let batch: Vec<BatchRecord<'_>> = pending
            .iter()
            .zip(&parts)
            .map(|(p, parts)| BatchRecord { watermark: p.watermark, parts })
            .collect();
        if sink.append_batch(&batch).is_err() {
            *errors += 1;
        }
        self.pending.clear();
        self.scratch.clear();
    }

    /// Force everything — coalesced and sink-buffered — down to the media
    /// (graceful shutdown / stats harvest).
    pub fn flush(&mut self) {
        self.hand_off();
        if self.sink.flush().is_err() {
            self.errors += 1;
        }
    }

    /// Drop sealed segments wholly below `floor`; returns segments removed.
    /// Pending records are handed off first so compaction sees the full
    /// stream.
    pub fn compact_below(&mut self, floor: u64) -> usize {
        self.hand_off();
        match self.sink.compact_below(floor) {
            Ok(n) => n,
            Err(_) => {
                self.errors += 1;
                0
            }
        }
    }

    /// Entries recorded through this handle.
    pub fn entries_recorded(&self) -> u64 {
        self.entries_recorded
    }

    /// Entries coalesced in the handle, not yet handed to the sink.
    pub fn pending_entries(&self) -> usize {
        self.pending.len()
    }

    /// Sink I/O errors swallowed (durability degraded).
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Bytes the sink has physically flushed.
    pub fn bytes_flushed(&self) -> u64 {
        self.sink.bytes_flushed()
    }

    /// Segments the sink has compacted away.
    pub fn segments_compacted(&self) -> u64 {
        self.sink.segments_compacted()
    }

    /// Group commits (multi-record fsyncs) the sink has performed.
    pub fn group_commits(&self) -> u64 {
        self.sink.group_commits()
    }

    /// Records that reached the sink through batched hand-offs.
    pub fn records_batched(&self) -> u64 {
        self.sink.records_batched()
    }
}

/// Decode a recovered record stream (e.g. `LogStore::read_all`) into entries,
/// dropping undecodable payloads.
pub fn decode_records(records: &[logstore::Record]) -> Vec<JournalEntry> {
    records.iter().filter_map(|r| JournalEntry::decode(&r.payload)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore::{LogConfig, LogStore, MemMedia};

    fn put(app: AppId, version: Version) -> JournalEntry {
        JournalEntry::Put {
            app,
            desc: ObjDesc { var: 0, version, bbox: BBox::d1(0, 9) },
            payload: Payload::virtual_from(100, &[u64::from(version)]),
            digest: 7,
        }
    }

    fn inline_put(app: AppId, version: Version) -> JournalEntry {
        let data = vec![version as u8; 64];
        let digest = staging::payload::fnv1a(&data);
        JournalEntry::Put {
            app,
            desc: ObjDesc { var: 1, version, bbox: BBox::d1(0, 63) },
            payload: Payload::inline(data),
            digest,
        }
    }

    fn sample_entries() -> Vec<JournalEntry> {
        vec![
            put(0, 3),
            inline_put(0, 4),
            JournalEntry::Get {
                app: 1,
                var: 0,
                requested: 3,
                served: 2,
                bbox: BBox::d1(0, 9),
                bytes: 100,
                digest: 9,
            },
            JournalEntry::Checkpoint { app: 0, w_chk_id: 4, upto_version: 3, floor: Some(2) },
            JournalEntry::Checkpoint { app: 1, w_chk_id: 5, upto_version: 3, floor: None },
            JournalEntry::Recovery { app: 1, resume_version: 3 },
        ]
    }

    #[test]
    fn entries_round_trip_through_encoding() {
        let entries = sample_entries();
        for e in &entries {
            assert_eq!(JournalEntry::decode(&e.encode()).as_ref(), Some(e));
        }
        assert_eq!(entries[0].watermark(), 3);
        assert_eq!(entries[2].watermark(), 2, "gets key on the served version");
        assert!(!entries[0].is_commit_point());
        assert!(entries[3].is_commit_point());
        assert!(entries[5].is_commit_point());
    }

    #[test]
    fn legacy_json_entries_still_decode() {
        for e in &sample_entries() {
            let json = e.encode_json();
            assert_eq!(json[0], b'{', "legacy entries start with a JSON brace");
            assert_eq!(JournalEntry::decode(&json).as_ref(), Some(e));
        }
    }

    #[test]
    fn binary_encoding_is_smaller_than_json() {
        for e in &sample_entries() {
            assert!(e.encode().len() < e.encode_json().len(), "binary must beat JSON for {e:?}");
        }
    }

    #[test]
    fn meta_plus_inline_bytes_is_the_full_encoding() {
        let e = inline_put(0, 9);
        let mut meta = Vec::new();
        e.encode_meta_into(&mut meta);
        meta.extend_from_slice(e.inline_payload().unwrap());
        assert_eq!(meta, e.encode());
    }

    #[test]
    fn commit_points_force_the_tail_durable() {
        let mem = MemMedia::new();
        let cfg = LogConfig {
            flush: logstore::FlushPolicy::PerBatch { records: 1000 },
            ..LogConfig::default()
        };
        let log = LogStore::open(Box::new(mem.clone()), cfg).unwrap();
        let mut handle = JournalHandle::new(Box::new(log));
        handle.record(&put(0, 1));
        handle.record(&put(0, 2));
        let before_ctl = mem.synced_bytes();
        handle.record(&JournalEntry::Checkpoint {
            app: 0,
            w_chk_id: 1,
            upto_version: 2,
            floor: Some(0),
        });
        assert!(mem.synced_bytes() > before_ctl, "checkpoint entry must flush");
        handle.record(&put(0, 3)); // coalesced again
        drop(handle);
        mem.crash();
        let survivors = LogStore::open(Box::new(mem.clone()), cfg).unwrap().read_all().unwrap();
        let decoded = decode_records(&survivors);
        assert_eq!(decoded.len(), 3, "everything through the checkpoint survives");
        assert!(matches!(decoded[2], JournalEntry::Checkpoint { .. }));
    }

    #[test]
    fn coalescing_batches_records_to_the_sink() {
        let mem = MemMedia::new();
        let cfg = LogConfig { flush: logstore::FlushPolicy::PerRecord, ..LogConfig::default() };
        let log = LogStore::open(Box::new(mem.clone()), cfg).unwrap();
        let mut handle = JournalHandle::with_coalesce(Box::new(log), 8);
        for v in 0..8 {
            handle.record(&inline_put(0, v));
        }
        assert_eq!(handle.pending_entries(), 0, "window reached: handed off");
        assert_eq!(handle.records_batched(), 8);
        // PerRecord sink + batched hand-off = ONE group commit for all 8.
        assert_eq!(handle.group_commits(), 1);
        let survivors = LogStore::open(Box::new(mem.clone()), cfg).unwrap().read_all().unwrap();
        let decoded = decode_records(&survivors);
        assert_eq!(decoded.len(), 8);
        for (v, e) in decoded.iter().enumerate() {
            assert_eq!(e, &inline_put(0, v as Version), "zero-copy path preserves bytes");
        }
    }
}
