//! Durable journaling of the staging event/data log.
//!
//! The paper's logging component keeps puts, gets, and `W_Chk_ID` markers in
//! staging memory; this module gives those records a durable twin. Every
//! event the [`crate::backend::LoggingBackend`] admits to its in-memory
//! queues is also encoded as a [`JournalEntry`] and appended through a
//! `logstore::Journal` sink. Control entries (checkpoint, recovery) are
//! commit points and force a flush, so the journal's durable prefix always
//! extends at least through the last checkpoint — which is exactly the
//! property the cold-restart equivalence proof needs: anything lost past
//! that point is re-executed deterministically by the rolled-back apps.
//!
//! Watermarks are data versions, so `compact_below` on the journal mirrors
//! `wfcr::gc` truncating the in-memory queues: once the GC floor passes a
//! whole segment's versions, the segment file is deleted.
//!
//! Replaying surviving entries in order through
//! [`crate::backend::LoggingBackend::from_journal`] rebuilds the store,
//! queues, GC marks, and `next_w_chk` exactly: checkpoint entries record the
//! *effective* floor the live GC pass used, so the rebuild runs the same
//! collections at the same points.

use logstore::Journal;
use serde::{Deserialize, Serialize};
use staging::geometry::BBox;
use staging::payload::Payload;
use staging::proto::{AppId, ObjDesc, VarId, Version};
use std::fmt;

/// One durable log record. Struct variants only (mirrors [`crate::event::LogEvent`])
/// plus the payload itself on puts — the journal must be able to rebuild the
/// data log, not just its metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JournalEntry {
    /// A stored put (absorbed replays are never journaled — the original
    /// entry is already durable).
    Put {
        /// Writing component.
        app: AppId,
        /// What was written.
        desc: ObjDesc,
        /// The written data (inline bytes or virtual size+digest).
        payload: Payload,
        /// Payload digest.
        digest: u64,
    },
    /// A served get (replayed gets are never journaled).
    Get {
        /// Reading component.
        app: AppId,
        /// Variable read.
        var: VarId,
        /// Version asked for.
        requested: Version,
        /// Version served.
        served: Version,
        /// Region read.
        bbox: BBox,
        /// Bytes served.
        bytes: u64,
        /// Digest of the served pieces.
        digest: u64,
    },
    /// A `workflow_check()` marker.
    Checkpoint {
        /// Checkpointing component.
        app: AppId,
        /// Globally unique checkpoint event id.
        w_chk_id: u64,
        /// Highest version the checkpoint covers.
        upto_version: Version,
        /// The effective GC floor the live collection pass used (`None` when
        /// GC was disabled). Recording it makes the rebuild's collection
        /// byte-identical: `min(marks) ≥ floor` holds at this point of the
        /// replayed history, so passing the floor back as a pin reproduces
        /// the original pass exactly.
        floor: Option<Version>,
    },
    /// A `workflow_restart()` marker. Replaying it re-inserts the queue
    /// marker only — it must NOT re-enter replay mode: any replay in flight
    /// at crash time is restarted from scratch by the app itself, which
    /// calls `workflow_restart()` again after the cold restart.
    Recovery {
        /// Recovering component.
        app: AppId,
        /// Version of the restored checkpoint.
        resume_version: Version,
    },
}

impl JournalEntry {
    /// Compaction watermark: the data version this entry is tied to.
    pub fn watermark(&self) -> u64 {
        u64::from(match *self {
            JournalEntry::Put { desc, .. } => desc.version,
            JournalEntry::Get { served, .. } => served,
            JournalEntry::Checkpoint { upto_version, .. } => upto_version,
            JournalEntry::Recovery { resume_version, .. } => resume_version,
        })
    }

    /// Is this a commit point that must be durable before the call returns?
    pub fn is_commit_point(&self) -> bool {
        matches!(self, JournalEntry::Checkpoint { .. } | JournalEntry::Recovery { .. })
    }

    /// Serialized form for the log record payload.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("journal entries always serialize")
    }

    /// Parse a record payload back; `None` on format drift (the log frame
    /// CRC already rules out corruption).
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        serde_json::from_slice(bytes).ok()
    }
}

/// The backend's handle on its durable sink: owns the boxed
/// `logstore::Journal`, enforces commit-point flushes, and keeps error
/// accounting (journal failures degrade durability, never correctness — the
/// in-memory log stays authoritative).
pub struct JournalHandle {
    sink: Box<dyn Journal>,
    entries_recorded: u64,
    errors: u64,
}

impl fmt::Debug for JournalHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JournalHandle")
            .field("entries_recorded", &self.entries_recorded)
            .field("errors", &self.errors)
            .finish()
    }
}

impl JournalHandle {
    /// Wrap a sink.
    pub fn new(sink: Box<dyn Journal>) -> Self {
        JournalHandle { sink, entries_recorded: 0, errors: 0 }
    }

    /// Record one entry. Commit-point entries are flushed immediately.
    pub fn record(&mut self, entry: &JournalEntry) {
        self.entries_recorded += 1;
        if self.sink.append(entry.watermark(), &entry.encode()).is_err() {
            self.errors += 1;
            return;
        }
        if entry.is_commit_point() && self.sink.flush().is_err() {
            self.errors += 1;
        }
    }

    /// Force the buffered tail down (graceful shutdown / stats harvest).
    pub fn flush(&mut self) {
        if self.sink.flush().is_err() {
            self.errors += 1;
        }
    }

    /// Drop sealed segments wholly below `floor`; returns segments removed.
    pub fn compact_below(&mut self, floor: u64) -> usize {
        match self.sink.compact_below(floor) {
            Ok(n) => n,
            Err(_) => {
                self.errors += 1;
                0
            }
        }
    }

    /// Entries recorded through this handle.
    pub fn entries_recorded(&self) -> u64 {
        self.entries_recorded
    }

    /// Sink I/O errors swallowed (durability degraded).
    pub fn errors(&self) -> u64 {
        self.errors
    }

    /// Bytes the sink has physically flushed.
    pub fn bytes_flushed(&self) -> u64 {
        self.sink.bytes_flushed()
    }

    /// Segments the sink has compacted away.
    pub fn segments_compacted(&self) -> u64 {
        self.sink.segments_compacted()
    }
}

/// Decode a recovered record stream (e.g. `LogStore::read_all`) into entries,
/// dropping undecodable payloads.
pub fn decode_records(records: &[logstore::Record]) -> Vec<JournalEntry> {
    records.iter().filter_map(|r| JournalEntry::decode(&r.payload)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore::{LogConfig, LogStore, MemMedia};

    fn put(app: AppId, version: Version) -> JournalEntry {
        JournalEntry::Put {
            app,
            desc: ObjDesc { var: 0, version, bbox: BBox::d1(0, 9) },
            payload: Payload::virtual_from(100, &[u64::from(version)]),
            digest: 7,
        }
    }

    #[test]
    fn entries_round_trip_through_encoding() {
        let entries = vec![
            put(0, 3),
            JournalEntry::Get {
                app: 1,
                var: 0,
                requested: 3,
                served: 2,
                bbox: BBox::d1(0, 9),
                bytes: 100,
                digest: 9,
            },
            JournalEntry::Checkpoint { app: 0, w_chk_id: 4, upto_version: 3, floor: Some(2) },
            JournalEntry::Checkpoint { app: 1, w_chk_id: 5, upto_version: 3, floor: None },
            JournalEntry::Recovery { app: 1, resume_version: 3 },
        ];
        for e in &entries {
            assert_eq!(JournalEntry::decode(&e.encode()).as_ref(), Some(e));
        }
        assert_eq!(entries[0].watermark(), 3);
        assert_eq!(entries[1].watermark(), 2, "gets key on the served version");
        assert!(!entries[0].is_commit_point());
        assert!(entries[2].is_commit_point());
        assert!(entries[4].is_commit_point());
    }

    #[test]
    fn commit_points_force_the_tail_durable() {
        let mem = MemMedia::new();
        let cfg = LogConfig {
            flush: logstore::FlushPolicy::PerBatch { records: 1000 },
            ..LogConfig::default()
        };
        let log = LogStore::open(Box::new(mem.clone()), cfg).unwrap();
        let mut handle = JournalHandle::new(Box::new(log));
        handle.record(&put(0, 1));
        handle.record(&put(0, 2));
        let before_ctl = mem.synced_bytes();
        handle.record(&JournalEntry::Checkpoint {
            app: 0,
            w_chk_id: 1,
            upto_version: 2,
            floor: Some(0),
        });
        assert!(mem.synced_bytes() > before_ctl, "checkpoint entry must flush");
        handle.record(&put(0, 3)); // buffered again
        drop(handle);
        mem.crash();
        let survivors = LogStore::open(Box::new(mem.clone()), cfg).unwrap().read_all().unwrap();
        let decoded = decode_records(&survivors);
        assert_eq!(decoded.len(), 3, "everything through the checkpoint survives");
        assert!(matches!(decoded[2], JournalEntry::Checkpoint { .. }));
    }
}
