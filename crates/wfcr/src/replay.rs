//! Replay mode: reproducing a rolled-back component's data-transport history.
//!
//! When `workflow_restart()` arrives for a component, staging builds its
//! replay script (the logged transport events since its restored checkpoint)
//! and enters replay mode for that component. Each subsequent request from
//! the component is matched against the script:
//!
//! * a matching logged `Put` ⇒ the write is **absorbed** (Figure 2, case 2 —
//!   the redundant re-write must not clobber or duplicate staged data);
//!   the payload digest is compared with the logged digest as a safety net —
//!   deterministic re-execution from the checkpointed RNG state must
//!   reproduce identical bytes;
//! * a matching logged `Get` ⇒ staging serves the **logged version** (Figure
//!   2, case 1 — the consumer must re-observe the data the original
//!   execution observed, not whatever is newest);
//! * when every script entry has been consumed — or the component issues a
//!   request for a version beyond the script — replay ends and the component
//!   "reaches a state compatible with the other components" (paper §III-A).

use crate::event::LogEvent;
use staging::geometry::BBox;
use staging::proto::{AppId, ObjDesc, VarId, Version};
use std::collections::BTreeMap;

/// Decision for an incoming put.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutDecision {
    /// Redundant re-write: do not store. `digest_ok` is the verification
    /// outcome against the logged digest.
    Absorb {
        /// Did the re-executed payload match the original bytes?
        digest_ok: bool,
    },
    /// Not part of a replay: store normally and log.
    Store,
}

/// Decision for an incoming get.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GetDecision {
    /// Replay: serve this logged version and verify against this digest.
    Replay {
        /// Version the original execution observed.
        version: Version,
        /// Digest of the originally served data.
        digest: u64,
    },
    /// Not part of a replay: resolve and log normally.
    Normal,
}

/// Per-component replay progress.
#[derive(Debug)]
struct ReplayState {
    script: Vec<LogEvent>,
    consumed: Vec<bool>,
    resume_version: Version,
    /// Highest version appearing in the script; requests beyond it end the
    /// replay.
    max_version: Version,
}

impl ReplayState {
    fn remaining(&self) -> usize {
        self.consumed.iter().filter(|c| !**c).count()
    }
}

/// Tracks which components are replaying and matches their requests.
#[derive(Debug, Default)]
pub struct ReplayManager {
    // BTreeMap so `active_floor` and any future sweep iterate apps in a
    // platform-independent order.
    states: BTreeMap<AppId, ReplayState>,
    /// Digest mismatches observed (should stay zero for deterministic apps).
    mismatches: u64,
    /// Requests that found no matching script entry while replaying.
    unmatched: u64,
    /// Replays completed.
    completed: u64,
}

impl ReplayManager {
    /// Fresh manager with no active replays.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enter replay mode for `app` with the given script. An empty script
    /// completes immediately.
    pub fn begin(&mut self, app: AppId, resume_version: Version, script: Vec<LogEvent>) -> usize {
        let n = script.len();
        if n == 0 {
            self.completed += 1;
            self.states.remove(&app);
            return 0;
        }
        let max_version = script.iter().map(LogEvent::version).max().unwrap_or(resume_version);
        let consumed = vec![false; n];
        self.states.insert(app, ReplayState { script, consumed, resume_version, max_version });
        n
    }

    /// Is `app` currently in replay mode?
    pub fn is_replaying(&self, app: AppId) -> bool {
        self.states.contains_key(&app)
    }

    /// Script entries not yet consumed for `app`.
    pub fn pending(&self, app: AppId) -> usize {
        self.states.get(&app).map(ReplayState::remaining).unwrap_or(0)
    }

    /// Classify an incoming put.
    pub fn on_put(&mut self, app: AppId, desc: &ObjDesc, digest: u64) -> PutDecision {
        let Some(st) = self.states.get_mut(&app) else { return PutDecision::Store };
        if desc.version > st.max_version {
            // The component has caught up past its logged history.
            self.finish(app);
            return PutDecision::Store;
        }
        // Find the first unconsumed logged Put matching this descriptor.
        let found = st
            .script
            .iter()
            .enumerate()
            .find(|(i, ev)| {
                !st.consumed[*i] && matches!(ev, LogEvent::Put { desc: d, .. } if d == desc)
            })
            .map(|(i, ev)| (i, *ev));
        match found {
            Some((i, ev)) => {
                st.consumed[i] = true;
                let logged_digest = match ev {
                    LogEvent::Put { digest, .. } => digest,
                    _ => unreachable!("matched a put"),
                };
                let digest_ok = logged_digest == digest;
                if !digest_ok {
                    self.mismatches += 1;
                }
                self.maybe_finish(app);
                PutDecision::Absorb { digest_ok }
            }
            None => {
                // Replaying but this exact write was never logged (e.g. the
                // failure hit mid-step, after the checkpoint but before this
                // put reached staging): store it normally.
                self.unmatched += 1;
                PutDecision::Store
            }
        }
    }

    /// Classify an incoming get.
    pub fn on_get(
        &mut self,
        app: AppId,
        var: VarId,
        requested: Version,
        bbox: &BBox,
    ) -> GetDecision {
        let Some(st) = self.states.get_mut(&app) else { return GetDecision::Normal };
        if requested > st.max_version {
            self.finish(app);
            return GetDecision::Normal;
        }
        let found = st
            .script
            .iter()
            .enumerate()
            .find(|(i, ev)| {
                !st.consumed[*i]
                    && matches!(
                        ev,
                        LogEvent::Get { var: v, requested: r, bbox: b, .. }
                            if *v == var && *r == requested && b == bbox
                    )
            })
            .map(|(i, ev)| (i, *ev));
        match found {
            Some((i, ev)) => {
                st.consumed[i] = true;
                let (version, digest) = match ev {
                    LogEvent::Get { served, digest, .. } => (served, digest),
                    _ => unreachable!("matched a get"),
                };
                self.maybe_finish(app);
                GetDecision::Replay { version, digest }
            }
            None => {
                self.unmatched += 1;
                GetDecision::Normal
            }
        }
    }

    /// Record a verification failure discovered downstream (served data's
    /// digest differed from the logged digest).
    pub fn record_mismatch(&mut self) {
        self.mismatches += 1;
    }

    fn maybe_finish(&mut self, app: AppId) {
        if self.states.get(&app).map(|s| s.remaining() == 0).unwrap_or(false) {
            self.finish(app);
        }
    }

    fn finish(&mut self, app: AppId) {
        if self.states.remove(&app).is_some() {
            self.completed += 1;
        }
    }

    /// Digest mismatches seen so far.
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// Unmatched in-replay requests seen so far.
    pub fn unmatched(&self) -> u64 {
        self.unmatched
    }

    /// Completed replays.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Lowest resume version across active replays (GC must not collect
    /// anything newer than this floor while a replay is active).
    pub fn active_floor(&self) -> Option<Version> {
        self.states.values().map(|s| s.resume_version).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put_ev(app: u32, version: Version) -> LogEvent {
        LogEvent::Put { app, desc: desc(version), bytes: 10, digest: 100 + version as u64 }
    }

    fn get_ev(app: u32, version: Version) -> LogEvent {
        LogEvent::Get {
            app,
            var: 0,
            requested: version,
            served: version,
            bbox: BBox::d1(0, 9),
            bytes: 10,
            digest: 200 + version as u64,
        }
    }

    fn desc(version: Version) -> ObjDesc {
        ObjDesc { var: 0, version, bbox: BBox::d1(0, 9) }
    }

    #[test]
    fn empty_script_completes_immediately() {
        let mut rm = ReplayManager::new();
        assert_eq!(rm.begin(0, 4, vec![]), 0);
        assert!(!rm.is_replaying(0));
        assert_eq!(rm.completed(), 1);
    }

    #[test]
    fn puts_absorbed_in_order() {
        let mut rm = ReplayManager::new();
        rm.begin(0, 4, vec![put_ev(0, 5), put_ev(0, 6), put_ev(0, 7)]);
        for v in 5..=7 {
            let d = rm.on_put(0, &desc(v), 100 + v as u64);
            assert_eq!(d, PutDecision::Absorb { digest_ok: true }, "v={v}");
        }
        assert!(!rm.is_replaying(0), "all consumed ⇒ replay over");
        assert_eq!(rm.completed(), 1);
        // Next put is normal.
        assert_eq!(rm.on_put(0, &desc(8), 0), PutDecision::Store);
    }

    #[test]
    fn digest_mismatch_flagged_but_absorbed() {
        let mut rm = ReplayManager::new();
        rm.begin(0, 0, vec![put_ev(0, 1)]);
        let d = rm.on_put(0, &desc(1), 999);
        assert_eq!(d, PutDecision::Absorb { digest_ok: false });
        assert_eq!(rm.mismatches(), 1);
    }

    #[test]
    fn get_served_logged_version() {
        let mut rm = ReplayManager::new();
        rm.begin(1, 4, vec![get_ev(1, 5), get_ev(1, 6)]);
        let d = rm.on_get(1, 0, 5, &BBox::d1(0, 9));
        assert_eq!(d, GetDecision::Replay { version: 5, digest: 205 });
        assert_eq!(rm.pending(1), 1);
        let d = rm.on_get(1, 0, 6, &BBox::d1(0, 9));
        assert_eq!(d, GetDecision::Replay { version: 6, digest: 206 });
        assert!(!rm.is_replaying(1));
    }

    #[test]
    fn version_beyond_script_ends_replay() {
        let mut rm = ReplayManager::new();
        rm.begin(0, 4, vec![put_ev(0, 5)]);
        // Component skipped ahead (e.g. replay partially served elsewhere).
        assert_eq!(rm.on_put(0, &desc(9), 0), PutDecision::Store);
        assert!(!rm.is_replaying(0));
    }

    #[test]
    fn unmatched_request_counted_and_stored() {
        let mut rm = ReplayManager::new();
        rm.begin(0, 4, vec![put_ev(0, 5), put_ev(0, 6)]);
        // A put for version 5 but a different region: not in the script.
        let other = ObjDesc { var: 0, version: 5, bbox: BBox::d1(50, 59) };
        assert_eq!(rm.on_put(0, &other, 0), PutDecision::Store);
        assert_eq!(rm.unmatched(), 1);
        assert!(rm.is_replaying(0), "replay continues");
    }

    #[test]
    fn out_of_order_replay_tolerated() {
        let mut rm = ReplayManager::new();
        rm.begin(0, 0, vec![put_ev(0, 1), put_ev(0, 2)]);
        assert!(matches!(rm.on_put(0, &desc(2), 102), PutDecision::Absorb { .. }));
        assert!(matches!(rm.on_put(0, &desc(1), 101), PutDecision::Absorb { .. }));
        assert!(!rm.is_replaying(0));
    }

    #[test]
    fn independent_apps_do_not_interfere() {
        let mut rm = ReplayManager::new();
        rm.begin(0, 0, vec![put_ev(0, 1)]);
        // App 1 is not replaying.
        assert_eq!(rm.on_put(1, &desc(1), 0), PutDecision::Store);
        assert!(rm.is_replaying(0));
        assert_eq!(rm.active_floor(), Some(0));
    }

    #[test]
    fn mixed_put_get_script() {
        let mut rm = ReplayManager::new();
        rm.begin(2, 4, vec![put_ev(2, 5), get_ev(2, 5), put_ev(2, 6), get_ev(2, 6)]);
        assert!(matches!(rm.on_put(2, &desc(5), 105), PutDecision::Absorb { .. }));
        assert!(matches!(
            rm.on_get(2, 0, 5, &BBox::d1(0, 9)),
            GetDecision::Replay { version: 5, .. }
        ));
        assert!(matches!(rm.on_put(2, &desc(6), 106), PutDecision::Absorb { .. }));
        assert!(matches!(
            rm.on_get(2, 0, 6, &BBox::d1(0, 9)),
            GetDecision::Replay { version: 6, .. }
        ));
        assert_eq!(rm.completed(), 1);
    }
}
