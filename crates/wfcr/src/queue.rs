//! Per-application event queues — the data structure at the heart of the
//! paper's "queue based data consistency algorithm".
//!
//! The staging area keeps one queue per application component. Every data
//! transport request is pushed as it is served; `workflow_check()` pushes a
//! checkpoint marker. On failure, the events *after* the last checkpoint
//! marker form the replay script; at checkpoint boundaries the prefix that no
//! rollback can need anymore is discarded ("at the end of checkpoint cycle,
//! data staging will clean the event queue").
//!
//! # Index structure
//!
//! Transport events (put/get) and control markers (checkpoint/recovery) are
//! kept in two separate streams. Transport versions are monotonic per run —
//! a component's steps only move forward, and absorbed replays are never
//! re-logged — so the transport stream stays sorted by [`LogEvent::version`]
//! with O(1) appends (a stable binary insertion covers the rare out-of-order
//! arrival, e.g. a get served from an older version). That invariant turns
//! the two hot operations into range lookups:
//!
//! * [`EventQueue::replay_script`] — the replay window for a rollback to
//!   `resume` is the suffix after `partition_point(version <= resume)`:
//!   O(log n + k) for a k-event script instead of a full scan.
//! * [`EventQueue::truncate_through`] — GC drops the prefix up to the
//!   boundary as one `drain` of an index range instead of a linear `retain`.
//!
//! # Peek-before-commit
//!
//! Supervised restarts need a guarantee that in-flight work is never lost
//! while a consumer is down: a restart *peeks* at the replay window
//! ([`EventQueue::peek_since`], zero-copy) without consuming it, and events
//! only leave the queue when a checkpoint boundary *commits* them via
//! [`EventQueue::truncate_through`]. The queue counts both sides —
//! [`EventQueue::appended_transport`] and [`EventQueue::committed`] — so an
//! oracle can check the no-lost-event invariant
//! `appended_transport == committed + retained` at any point in a schedule.

use crate::event::{LogEvent, EVENT_BYTES};
use staging::proto::Version;

/// Event queue for one application component.
#[derive(Debug, Default, Clone, serde::Serialize, serde::Deserialize)]
pub struct EventQueue {
    /// Transport events in non-decreasing `version()` order (stable, so
    /// same-version events keep their append order).
    transport: Vec<LogEvent>,
    /// Control markers (checkpoint/recovery) in append order.
    markers: Vec<LogEvent>,
    /// Version covered by the newest checkpoint marker seen (low-water mark
    /// for rollback: the app can never resume from before this).
    ckpt_version: Option<Version>,
    /// `w_chk_id` of the newest checkpoint marker.
    last_w_chk_id: Option<u64>,
    /// Events ever appended (diagnostics).
    appended: u64,
    /// Transport events ever appended (no-lost-event accounting).
    #[serde(default)]
    appended_transport: u64,
    /// Transport events committed out of the queue by checkpoint-boundary
    /// truncation. Invariant: `appended_transport == committed +
    /// transport.len()` — nothing leaves the queue except through a commit.
    #[serde(default)]
    committed: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event. Checkpoint markers update the low-water mark.
    pub fn push(&mut self, ev: LogEvent) {
        self.appended += 1;
        if let LogEvent::Checkpoint { w_chk_id, upto_version, .. } = ev {
            self.ckpt_version = Some(match self.ckpt_version {
                Some(v) => v.max(upto_version),
                None => upto_version,
            });
            self.last_w_chk_id = Some(w_chk_id);
        }
        if !ev.is_transport() {
            self.markers.push(ev);
            return;
        }
        self.appended_transport += 1;
        let v = ev.version();
        match self.transport.last() {
            // Monotonic fast path: versions never regress in a normal run.
            Some(last) if last.version() > v => {
                let idx = self.transport.partition_point(|e| e.version() <= v);
                self.transport.insert(idx, ev);
            }
            _ => self.transport.push(ev),
        }
    }

    /// The version of the newest checkpoint (rollback target), if any.
    pub fn checkpoint_version(&self) -> Option<Version> {
        self.ckpt_version
    }

    /// The most recent checkpoint marker's id.
    pub fn last_w_chk_id(&self) -> Option<u64> {
        self.last_w_chk_id
    }

    /// Build the replay script for a rollback to `resume_version`: all
    /// transport events recorded *after* that version, in original order.
    /// These are the operations the recovering component will re-issue and
    /// that staging must reproduce.
    ///
    /// The transport stream is version-sorted, so the script is the suffix
    /// past the binary-searched window boundary — O(log n + k).
    pub fn replay_script(&self, resume_version: Version) -> Vec<LogEvent> {
        self.peek_since(resume_version).to_vec()
    }

    /// Peek at the replay window without consuming or copying it: every
    /// transport event recorded after `resume_version`, in order, as a
    /// borrowed slice. This is the peek half of peek-before-commit — a
    /// supervised restart inspects its in-flight window here, and the events
    /// stay queued until [`EventQueue::truncate_through`] commits them at a
    /// checkpoint boundary.
    pub fn peek_since(&self, resume_version: Version) -> &[LogEvent] {
        let start = self.transport.partition_point(|ev| ev.version() <= resume_version);
        &self.transport[start..]
    }

    /// Drop every event at or before `boundary` *provided* it precedes the
    /// newest checkpoint marker covering `boundary` (garbage collection).
    /// Returns the number of events discarded.
    pub fn truncate_through(&mut self, boundary: Version) -> usize {
        let Some(ckpt) = self.ckpt_version else { return 0 };
        let boundary = boundary.min(ckpt);
        // The collectible transport events are a contiguous sorted prefix.
        let cut = self.transport.partition_point(|ev| ev.version() <= boundary);
        self.transport.drain(..cut);
        self.committed += cut as u64;
        // Retain the newest checkpoint marker itself (so replay_script can
        // still find its anchor) and markers newer than the boundary.
        let last_id = self.last_w_chk_id;
        let markers_before = self.markers.len();
        self.markers.retain(|ev| match ev {
            LogEvent::Checkpoint { w_chk_id, .. } => Some(*w_chk_id) == last_id,
            ev => ev.version() > boundary,
        });
        cut + (markers_before - self.markers.len())
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.transport.len() + self.markers.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.transport.is_empty() && self.markers.is_empty()
    }

    /// Staging memory charged to this queue.
    pub fn bytes(&self) -> u64 {
        self.len() as u64 * EVENT_BYTES
    }

    /// Total events ever appended.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Transport events ever appended (the "in" side of peek-before-commit).
    pub fn appended_transport(&self) -> u64 {
        self.appended_transport
    }

    /// Transport events committed out by checkpoint-boundary truncation (the
    /// "out" side of peek-before-commit).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Transport events currently retained.
    pub fn transport_len(&self) -> usize {
        self.transport.len()
    }

    /// Iterate retained events in version order (transport events before
    /// markers of the same version), oldest-first — the shape of the paper's
    /// Figure 5 queue printouts.
    pub fn iter(&self) -> impl Iterator<Item = &LogEvent> {
        let mut merged: Vec<&LogEvent> = self.transport.iter().chain(self.markers.iter()).collect();
        merged.sort_by_key(|ev| ev.version());
        merged.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staging::geometry::BBox;
    use staging::proto::ObjDesc;

    fn put(app: u32, version: Version) -> LogEvent {
        LogEvent::Put {
            app,
            desc: ObjDesc { var: 0, version, bbox: BBox::d1(0, 9) },
            bytes: 10,
            digest: version as u64,
        }
    }

    fn get(app: u32, version: Version) -> LogEvent {
        LogEvent::Get {
            app,
            var: 0,
            requested: version,
            served: version,
            bbox: BBox::d1(0, 9),
            bytes: 10,
            digest: version as u64,
        }
    }

    fn ckpt(app: u32, id: u64, upto: Version) -> LogEvent {
        LogEvent::Checkpoint { app, w_chk_id: id, upto_version: upto }
    }

    #[test]
    fn replay_script_after_checkpoint() {
        // Mirrors Figure 5: checkpoints at ts4; failure rolls back to ts4;
        // replay covers ts5..=ts7.
        let mut q = EventQueue::new();
        for v in 1..=4 {
            q.push(put(1, v));
        }
        q.push(ckpt(1, 100, 4));
        for v in 5..=7 {
            q.push(put(1, v));
        }
        let script = q.replay_script(4);
        assert_eq!(script.len(), 3);
        assert!(script.iter().all(|e| e.version() > 4));
        assert_eq!(script[0].version(), 5);
        assert_eq!(script[2].version(), 7);
    }

    #[test]
    fn replay_script_without_checkpoint_replays_from_start() {
        let mut q = EventQueue::new();
        for v in 1..=3 {
            q.push(get(1, v));
        }
        let script = q.replay_script(0);
        assert_eq!(script.len(), 3);
    }

    #[test]
    fn replay_script_empty_when_nothing_after_marker() {
        let mut q = EventQueue::new();
        q.push(put(0, 1));
        q.push(ckpt(0, 7, 1));
        assert!(q.replay_script(1).is_empty());
    }

    #[test]
    fn multiple_checkpoints_pick_latest_applicable() {
        let mut q = EventQueue::new();
        q.push(put(0, 1));
        q.push(ckpt(0, 1, 1));
        q.push(put(0, 2));
        q.push(ckpt(0, 2, 2));
        q.push(put(0, 3));
        // Rollback to 2 replays only version 3.
        assert_eq!(q.replay_script(2).len(), 1);
        // Rollback to 1 replays versions 2 and 3.
        assert_eq!(q.replay_script(1).len(), 2);
    }

    #[test]
    fn checkpoint_version_tracks_max() {
        let mut q = EventQueue::new();
        assert_eq!(q.checkpoint_version(), None);
        q.push(ckpt(0, 1, 4));
        q.push(ckpt(0, 2, 8));
        assert_eq!(q.checkpoint_version(), Some(8));
        assert_eq!(q.last_w_chk_id(), Some(2));
    }

    #[test]
    fn truncate_respects_checkpoint_low_water() {
        let mut q = EventQueue::new();
        for v in 1..=4 {
            q.push(put(0, v));
        }
        q.push(ckpt(0, 9, 4));
        for v in 5..=6 {
            q.push(put(0, v));
        }
        // Boundary above the checkpoint is clamped to it: events 1..=4 go,
        // the marker stays, 5..=6 stay.
        let dropped = q.truncate_through(10);
        assert_eq!(dropped, 4);
        assert_eq!(q.len(), 3);
        assert_eq!(q.replay_script(4).len(), 2);
    }

    #[test]
    fn truncate_without_checkpoint_is_noop() {
        let mut q = EventQueue::new();
        q.push(put(0, 1));
        assert_eq!(q.truncate_through(5), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn bytes_accounting() {
        let mut q = EventQueue::new();
        assert_eq!(q.bytes(), 0);
        q.push(put(0, 1));
        q.push(put(0, 2));
        assert_eq!(q.bytes(), 2 * EVENT_BYTES);
        assert_eq!(q.appended(), 2);
        q.push(ckpt(0, 1, 2));
        q.truncate_through(2);
        assert_eq!(q.bytes(), EVENT_BYTES); // marker retained
        assert_eq!(q.appended(), 3);
    }

    #[test]
    fn replay_after_truncate_still_correct() {
        let mut q = EventQueue::new();
        for v in 1..=4 {
            q.push(put(0, v));
            q.push(get(0, v));
        }
        q.push(ckpt(0, 1, 4));
        for v in 5..=7 {
            q.push(put(0, v));
            q.push(get(0, v));
        }
        q.truncate_through(4);
        let script = q.replay_script(4);
        assert_eq!(script.len(), 6);
        let versions: Vec<Version> = script.iter().map(|e| e.version()).collect();
        assert_eq!(versions, vec![5, 5, 6, 6, 7, 7]);
    }

    #[test]
    fn out_of_order_served_version_stays_findable() {
        // A get served from an older version (stale fallback) arrives after
        // newer events; the sorted insert keeps every replay window exact.
        let mut q = EventQueue::new();
        q.push(put(0, 2));
        q.push(put(0, 5));
        q.push(get(0, 3)); // served=3, logged after version 5
        let script = q.replay_script(2);
        let versions: Vec<Version> = script.iter().map(|e| e.version()).collect();
        assert_eq!(versions, vec![3, 5]);
        assert_eq!(q.replay_script(4).len(), 1);
        assert_eq!(q.appended(), 3);
    }

    #[test]
    fn peek_before_commit_conserves_events() {
        let mut q = EventQueue::new();
        for v in 1..=4 {
            q.push(put(0, v));
        }
        // Peek is non-consuming and zero-copy.
        assert_eq!(q.peek_since(2).len(), 2);
        assert_eq!(q.peek_since(2).len(), 2, "peek again, nothing consumed");
        assert_eq!(q.appended_transport(), 4);
        assert_eq!(q.committed(), 0);
        assert_eq!(q.transport_len(), 4);
        // Commit happens only at a checkpoint boundary.
        q.push(ckpt(0, 1, 3));
        q.truncate_through(3);
        assert_eq!(q.committed(), 3);
        assert_eq!(q.transport_len(), 1);
        // No-lost-event invariant: in == out + retained.
        assert_eq!(q.appended_transport(), q.committed() + q.transport_len() as u64);
        // Markers never count against the transport conservation law.
        assert_eq!(q.appended(), 5);
    }

    #[test]
    fn iter_merges_markers_in_version_order() {
        let mut q = EventQueue::new();
        q.push(put(0, 1));
        q.push(put(0, 2));
        q.push(ckpt(0, 1, 2));
        q.push(put(0, 3));
        let kinds: Vec<Version> = q.iter().map(|e| e.version()).collect();
        assert_eq!(kinds, vec![1, 2, 2, 3]);
        assert!(matches!(q.iter().nth(2), Some(LogEvent::Checkpoint { .. })));
    }
}
