//! Per-application event queues — the data structure at the heart of the
//! paper's "queue based data consistency algorithm".
//!
//! The staging area keeps one queue per application component. Every data
//! transport request is pushed as it is served; `workflow_check()` pushes a
//! checkpoint marker. On failure, the events *after* the last checkpoint
//! marker form the replay script; at checkpoint boundaries the prefix that no
//! rollback can need anymore is discarded ("at the end of checkpoint cycle,
//! data staging will clean the event queue").

use crate::event::{LogEvent, EVENT_BYTES};
use staging::proto::Version;
use std::collections::VecDeque;

/// Event queue for one application component.
#[derive(Debug, Default, Clone, serde::Serialize, serde::Deserialize)]
pub struct EventQueue {
    events: VecDeque<LogEvent>,
    /// Version covered by the newest checkpoint marker seen (low-water mark
    /// for rollback: the app can never resume from before this).
    ckpt_version: Option<Version>,
    /// `w_chk_id` of the newest checkpoint marker.
    last_w_chk_id: Option<u64>,
    /// Events ever appended (diagnostics).
    appended: u64,
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event. Checkpoint markers update the low-water mark.
    pub fn push(&mut self, ev: LogEvent) {
        if let LogEvent::Checkpoint { w_chk_id, upto_version, .. } = ev {
            self.ckpt_version = Some(match self.ckpt_version {
                Some(v) => v.max(upto_version),
                None => upto_version,
            });
            self.last_w_chk_id = Some(w_chk_id);
        }
        self.events.push_back(ev);
        self.appended += 1;
    }

    /// The version of the newest checkpoint (rollback target), if any.
    pub fn checkpoint_version(&self) -> Option<Version> {
        self.ckpt_version
    }

    /// The most recent checkpoint marker's id.
    pub fn last_w_chk_id(&self) -> Option<u64> {
        self.last_w_chk_id
    }

    /// Build the replay script for a rollback to `resume_version`: all
    /// transport events recorded *after* that version's checkpoint marker, in
    /// original order. These are the operations the recovering component will
    /// re-issue and that staging must reproduce.
    pub fn replay_script(&self, resume_version: Version) -> Vec<LogEvent> {
        // Every transport event newer than the restored version, in original
        // order. (Versions are monotonic per run and absorbed replays are
        // never re-logged, so each transport event appears exactly once —
        // filtering by version is equivalent to, and more robust than,
        // anchoring on the checkpoint marker's queue position, because
        // `workflow_check` notifications can arrive after later data events.)
        self.events
            .iter()
            .filter(|ev| ev.is_transport() && ev.version() > resume_version)
            .copied()
            .collect()
    }

    /// Drop every event at or before `boundary` *provided* it precedes the
    /// newest checkpoint marker covering `boundary` (garbage collection).
    /// Returns the number of events discarded.
    pub fn truncate_through(&mut self, boundary: Version) -> usize {
        let Some(ckpt) = self.ckpt_version else { return 0 };
        let boundary = boundary.min(ckpt);
        let before = self.events.len();
        // Retain the newest checkpoint marker itself (so replay_script can
        // still find its anchor) and everything newer than the boundary.
        let last_id = self.last_w_chk_id;
        self.events.retain(|ev| match ev {
            LogEvent::Checkpoint { w_chk_id, .. } => Some(*w_chk_id) == last_id,
            ev => ev.version() > boundary,
        });
        before - self.events.len()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Staging memory charged to this queue.
    pub fn bytes(&self) -> u64 {
        self.events.len() as u64 * EVENT_BYTES
    }

    /// Total events ever appended.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Iterate retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &LogEvent> {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staging::geometry::BBox;
    use staging::proto::ObjDesc;

    fn put(app: u32, version: Version) -> LogEvent {
        LogEvent::Put {
            app,
            desc: ObjDesc { var: 0, version, bbox: BBox::d1(0, 9) },
            bytes: 10,
            digest: version as u64,
        }
    }

    fn get(app: u32, version: Version) -> LogEvent {
        LogEvent::Get {
            app,
            var: 0,
            requested: version,
            served: version,
            bbox: BBox::d1(0, 9),
            bytes: 10,
            digest: version as u64,
        }
    }

    fn ckpt(app: u32, id: u64, upto: Version) -> LogEvent {
        LogEvent::Checkpoint { app, w_chk_id: id, upto_version: upto }
    }

    #[test]
    fn replay_script_after_checkpoint() {
        // Mirrors Figure 5: checkpoints at ts4; failure rolls back to ts4;
        // replay covers ts5..=ts7.
        let mut q = EventQueue::new();
        for v in 1..=4 {
            q.push(put(1, v));
        }
        q.push(ckpt(1, 100, 4));
        for v in 5..=7 {
            q.push(put(1, v));
        }
        let script = q.replay_script(4);
        assert_eq!(script.len(), 3);
        assert!(script.iter().all(|e| e.version() > 4));
        assert_eq!(script[0].version(), 5);
        assert_eq!(script[2].version(), 7);
    }

    #[test]
    fn replay_script_without_checkpoint_replays_from_start() {
        let mut q = EventQueue::new();
        for v in 1..=3 {
            q.push(get(1, v));
        }
        let script = q.replay_script(0);
        assert_eq!(script.len(), 3);
    }

    #[test]
    fn replay_script_empty_when_nothing_after_marker() {
        let mut q = EventQueue::new();
        q.push(put(0, 1));
        q.push(ckpt(0, 7, 1));
        assert!(q.replay_script(1).is_empty());
    }

    #[test]
    fn multiple_checkpoints_pick_latest_applicable() {
        let mut q = EventQueue::new();
        q.push(put(0, 1));
        q.push(ckpt(0, 1, 1));
        q.push(put(0, 2));
        q.push(ckpt(0, 2, 2));
        q.push(put(0, 3));
        // Rollback to 2 replays only version 3.
        assert_eq!(q.replay_script(2).len(), 1);
        // Rollback to 1 replays versions 2 and 3.
        assert_eq!(q.replay_script(1).len(), 2);
    }

    #[test]
    fn checkpoint_version_tracks_max() {
        let mut q = EventQueue::new();
        assert_eq!(q.checkpoint_version(), None);
        q.push(ckpt(0, 1, 4));
        q.push(ckpt(0, 2, 8));
        assert_eq!(q.checkpoint_version(), Some(8));
        assert_eq!(q.last_w_chk_id(), Some(2));
    }

    #[test]
    fn truncate_respects_checkpoint_low_water() {
        let mut q = EventQueue::new();
        for v in 1..=4 {
            q.push(put(0, v));
        }
        q.push(ckpt(0, 9, 4));
        for v in 5..=6 {
            q.push(put(0, v));
        }
        // Boundary above the checkpoint is clamped to it: events 1..=4 go,
        // the marker stays, 5..=6 stay.
        let dropped = q.truncate_through(10);
        assert_eq!(dropped, 4);
        assert_eq!(q.len(), 3);
        assert_eq!(q.replay_script(4).len(), 2);
    }

    #[test]
    fn truncate_without_checkpoint_is_noop() {
        let mut q = EventQueue::new();
        q.push(put(0, 1));
        assert_eq!(q.truncate_through(5), 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn bytes_accounting() {
        let mut q = EventQueue::new();
        assert_eq!(q.bytes(), 0);
        q.push(put(0, 1));
        q.push(put(0, 2));
        assert_eq!(q.bytes(), 2 * EVENT_BYTES);
        assert_eq!(q.appended(), 2);
        q.push(ckpt(0, 1, 2));
        q.truncate_through(2);
        assert_eq!(q.bytes(), EVENT_BYTES); // marker retained
        assert_eq!(q.appended(), 3);
    }

    #[test]
    fn replay_after_truncate_still_correct() {
        let mut q = EventQueue::new();
        for v in 1..=4 {
            q.push(put(0, v));
            q.push(get(0, v));
        }
        q.push(ckpt(0, 1, 4));
        for v in 5..=7 {
            q.push(put(0, v));
            q.push(get(0, v));
        }
        q.truncate_through(4);
        let script = q.replay_script(4);
        assert_eq!(script.len(), 6);
        let versions: Vec<Version> = script.iter().map(|e| e.version()).collect();
        assert_eq!(versions, vec![5, 5, 6, 6, 7, 7]);
    }
}
