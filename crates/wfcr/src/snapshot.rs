//! Checkpointing the staging log itself.
//!
//! The paper notes that "to guarantee the data availability in staging, the
//! data staging can contain data resilience mechanisms such as data
//! replication or erasure coding. It can also be integrated with the third
//! part framework such as FTI for data resilience." This module provides the
//! serialization half of that integration: a quiescent logging backend can
//! be exported to a [`LogSnapshot`] (e.g. for an FTI-style persist of the
//! staging area) and rebuilt from one after a staging restart.
//!
//! Snapshots must be taken while no replay is active — a replay is a
//! transient protocol state between `workflow_restart()` and the component
//! catching up, not durable state.

use crate::backend::LoggingBackend;
use crate::gc::GcState;
use crate::queue::EventQueue;
use serde::{Deserialize, Serialize};
use staging::proto::AppId;
use staging::store::VersionedStore;
use std::collections::BTreeMap;

/// A serializable image of one staging server's log state.
#[derive(Debug, Serialize, Deserialize)]
pub struct LogSnapshot {
    /// The versioned data log.
    pub store: VersionedStore,
    /// Per-component event queues.
    pub queues: BTreeMap<AppId, EventQueue>,
    /// GC marks.
    pub gc: GcState,
    /// Next `W_Chk_ID` to assign.
    pub next_w_chk: u64,
}

/// Errors from snapshotting.
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// A component is mid-replay; the backend is not quiescent.
    ReplayActive {
        /// One offending component.
        app: AppId,
    },
}

impl LoggingBackend {
    /// Export the backend's durable state. Fails if any replay is active.
    pub fn snapshot(&self) -> Result<LogSnapshot, SnapshotError> {
        if let Some(app) = self.replaying_apps().first() {
            return Err(SnapshotError::ReplayActive { app: *app });
        }
        Ok(LogSnapshot {
            store: self.store_clone(),
            queues: self.queues_clone(),
            gc: self.gc_clone(),
            next_w_chk: self.next_w_chk(),
        })
    }

    /// Rebuild a backend from a snapshot (fresh replay state, counters reset).
    pub fn from_snapshot(snap: LogSnapshot) -> LoggingBackend {
        LoggingBackend::restore_parts(snap.store, snap.queues, snap.gc, snap.next_w_chk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use staging::geometry::BBox;
    use staging::payload::Payload;
    use staging::proto::{CtlRequest, GetRequest, ObjDesc, PutRequest, PutStatus};
    use staging::service::StoreBackend;

    const SIM: AppId = 0;
    const ANA: AppId = 1;

    fn populate(b: &mut LoggingBackend, steps: u32) -> Vec<u64> {
        let bbox = BBox::d1(0, 63);
        let mut digests = Vec::new();
        for v in 1..=steps {
            b.put(&PutRequest {
                app: SIM,
                desc: ObjDesc { var: 0, version: v, bbox },
                payload: Payload::virtual_from(64, &[v as u64]),
                seq: 0,
                tctx: obs::TraceCtx::NONE,
            });
            let (pieces, _) = b.get(&GetRequest {
                app: ANA,
                var: 0,
                version: v,
                bbox,
                seq: 0,
                tctx: obs::TraceCtx::NONE,
            });
            digests.push(crate::backend::pieces_digest(&pieces));
        }
        digests
    }

    #[test]
    fn snapshot_round_trip_preserves_replayability() {
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        let digests = populate(&mut b, 6);
        b.control(CtlRequest::Checkpoint { app: ANA, upto_version: 3 });

        // Snapshot → JSON → restore (simulating a staging restart backed by
        // FTI-style persistence).
        let snap = b.snapshot().expect("quiescent");
        let json = serde_json::to_string(&snap).expect("serialize");
        let snap2: LogSnapshot = serde_json::from_str(&json).expect("deserialize");
        let mut restored = LoggingBackend::from_snapshot(snap2);

        // The restored backend still serves a consumer rollback replay.
        let (resp, _) = restored.control(CtlRequest::Recovery { app: ANA, resume_version: 3 });
        assert_eq!(resp.pending_replay, 3);
        let bbox = BBox::d1(0, 63);
        for v in 4..=6u32 {
            let (pieces, _) = restored.get(&GetRequest {
                app: ANA,
                var: 0,
                version: v,
                bbox,
                seq: 0,
                tctx: obs::TraceCtx::NONE,
            });
            assert_eq!(
                crate::backend::pieces_digest(&pieces),
                digests[(v - 1) as usize],
                "restored replay of version {v}"
            );
        }
        assert_eq!(restored.digest_mismatches(), 0);
    }

    #[test]
    fn snapshot_rejected_during_replay() {
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        populate(&mut b, 4);
        b.control(CtlRequest::Recovery { app: ANA, resume_version: 0 });
        assert!(b.is_replaying(ANA));
        assert!(matches!(b.snapshot(), Err(SnapshotError::ReplayActive { app: ANA })));
    }

    #[test]
    fn restored_backend_continues_normally() {
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        populate(&mut b, 3);
        let snap = b.snapshot().unwrap();
        let mut restored = LoggingBackend::from_snapshot(snap);

        // New writes continue with correct semantics.
        let bbox = BBox::d1(0, 63);
        let (status, _) = restored.put(&PutRequest {
            app: SIM,
            desc: ObjDesc { var: 0, version: 4, bbox },
            payload: Payload::virtual_from(64, &[4]),
            seq: 0,
            tctx: obs::TraceCtx::NONE,
        });
        assert_eq!(status, PutStatus::Stored);
        assert_eq!(restored.store().versions(0), vec![1, 2, 3, 4]);
        // W_Chk_IDs keep advancing uniquely.
        let (r1, _) = restored.control(CtlRequest::Checkpoint { app: SIM, upto_version: 4 });
        let _ = r1;
        assert!(restored.queue(SIM).unwrap().last_w_chk_id().is_some());
    }

    #[test]
    fn bytes_preserved_across_snapshot() {
        let mut b = LoggingBackend::new();
        b.register_app(SIM);
        b.register_app(ANA);
        populate(&mut b, 5);
        let before = b.bytes_resident();
        let restored = LoggingBackend::from_snapshot(b.snapshot().unwrap());
        assert_eq!(restored.bytes_resident(), before);
    }
}
