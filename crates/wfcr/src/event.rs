//! Log events: the unit the staging area records and replays.

use serde::{Deserialize, Serialize};
use staging::geometry::BBox;
use staging::proto::{AppId, ObjDesc, VarId, Version};

/// Approximate in-staging footprint of one event record (descriptor, ids,
/// digest, queue linkage). Charged to staging memory per logged event.
pub const EVENT_BYTES: u64 = 64;

/// One entry in an application's event queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogEvent {
    /// A data write that flowed through staging.
    Put {
        /// Writing component.
        app: AppId,
        /// What was written.
        desc: ObjDesc,
        /// Payload size.
        bytes: u64,
        /// Payload digest (for redundant-write verification during replay).
        digest: u64,
    },
    /// A data read served by staging.
    Get {
        /// Reading component.
        app: AppId,
        /// Variable read.
        var: VarId,
        /// Version the application asked for.
        requested: Version,
        /// Version staging actually served (differs from `requested` only in
        /// exotic configurations; recorded because replay must reproduce it).
        served: Version,
        /// Region read.
        bbox: BBox,
        /// Bytes served.
        bytes: u64,
        /// Digest of the served data.
        digest: u64,
    },
    /// A `workflow_check()` notification: the component durably checkpointed
    /// everything up to and including `upto_version`.
    Checkpoint {
        /// Checkpointing component.
        app: AppId,
        /// The paper's globally unique checkpoint event id.
        w_chk_id: u64,
        /// Highest version covered by the checkpoint.
        upto_version: Version,
    },
    /// A `workflow_restart()` notification: the component rolled back and
    /// resumes after `resume_version`.
    Recovery {
        /// Recovering component.
        app: AppId,
        /// Version of the restored checkpoint.
        resume_version: Version,
    },
}

impl LogEvent {
    /// The component this event belongs to.
    pub fn app(&self) -> AppId {
        match *self {
            LogEvent::Put { app, .. }
            | LogEvent::Get { app, .. }
            | LogEvent::Checkpoint { app, .. }
            | LogEvent::Recovery { app, .. } => app,
        }
    }

    /// The data version this event concerns (checkpoint/recovery events
    /// report their boundary version).
    pub fn version(&self) -> Version {
        match *self {
            LogEvent::Put { desc, .. } => desc.version,
            LogEvent::Get { served, .. } => served,
            LogEvent::Checkpoint { upto_version, .. } => upto_version,
            LogEvent::Recovery { resume_version, .. } => resume_version,
        }
    }

    /// Is this a data-transport event (put/get) as opposed to a control
    /// marker?
    pub fn is_transport(&self) -> bool {
        matches!(self, LogEvent::Put { .. } | LogEvent::Get { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(version: Version) -> ObjDesc {
        ObjDesc { var: 0, version, bbox: BBox::d1(0, 9) }
    }

    #[test]
    fn accessors() {
        let p = LogEvent::Put { app: 2, desc: desc(7), bytes: 10, digest: 1 };
        assert_eq!(p.app(), 2);
        assert_eq!(p.version(), 7);
        assert!(p.is_transport());

        let g = LogEvent::Get {
            app: 1,
            var: 0,
            requested: 7,
            served: 6,
            bbox: BBox::d1(0, 9),
            bytes: 10,
            digest: 2,
        };
        assert_eq!(g.version(), 6);
        assert!(g.is_transport());

        let c = LogEvent::Checkpoint { app: 0, w_chk_id: 5, upto_version: 4 };
        assert_eq!(c.version(), 4);
        assert!(!c.is_transport());

        let r = LogEvent::Recovery { app: 0, resume_version: 4 };
        assert_eq!(r.version(), 4);
        assert!(!r.is_transport());
    }
}
