//! The global user interface (paper Table 1) for threaded-mode applications.
//!
//! | paper call              | method                              |
//! |-------------------------|-------------------------------------|
//! | `workflow_check()`      | [`WorkflowClient::workflow_check`]  |
//! | `workflow_restart()`    | [`WorkflowClient::workflow_restart`]|
//! | `dspaces_put_with_log()`| [`WorkflowClient::put_with_log`]    |
//! | `dspaces_get_with_log()`| [`WorkflowClient::get_with_log`]    |
//!
//! [`WorkflowClient`] wraps a [`staging::threaded::SyncClient`] (connected to
//! servers running the [`crate::backend::LoggingBackend`]) plus a shared
//! [`ckpt::CheckpointStore`]. `workflow_check` persists the component
//! snapshot *first*, then notifies staging — the ordering the paper's Figure
//! 7(a) prescribes (state must be durable before the marker bounds the log).
//! `workflow_restart` restores the snapshot, re-attaches, and notifies
//! staging so the servers enter replay mode for this component.

use ckpt::{CheckpointStore, Snapshot};
use parking_lot::Mutex;
use sim_core::rng::SplitMix64;
use staging::geometry::BBox;
use staging::payload::Payload;
use staging::proto::{AppId, GetPiece, PutStatus, VarId, Version};
use staging::threaded::{ClientError, SyncClient};
use std::sync::Arc;

/// Errors from the workflow interface.
#[derive(Debug, PartialEq, Eq)]
pub enum WorkflowError {
    /// Underlying staging client failure.
    Staging(ClientError),
    /// `workflow_restart` found no checkpoint to restore.
    NoCheckpoint,
}

impl From<ClientError> for WorkflowError {
    fn from(e: ClientError) -> Self {
        WorkflowError::Staging(e)
    }
}

/// Per-component handle implementing the paper's four-call interface.
pub struct WorkflowClient {
    staging: SyncClient,
    ckpts: Arc<Mutex<CheckpointStore>>,
    next_ckpt_id: u64,
    /// Torn-checkpoint fault injection: `(rate, seed)`; each save draws a
    /// deterministic per-ckpt_id decision.
    ckpt_faults: Option<(f64, u64)>,
    torn_injected: u64,
    torn_detected: u64,
}

impl WorkflowClient {
    /// Wrap a connected staging client and a shared checkpoint store.
    pub fn new(staging: SyncClient, ckpts: Arc<Mutex<CheckpointStore>>) -> Self {
        WorkflowClient {
            staging,
            ckpts,
            next_ckpt_id: 1,
            ckpt_faults: None,
            torn_injected: 0,
            torn_detected: 0,
        }
    }

    /// Enable torn-checkpoint injection: each `workflow_check` save is torn
    /// with probability `rate`, decided deterministically from
    /// `(seed, app, ckpt_id)`.
    pub fn with_ckpt_faults(mut self, rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        self.ckpt_faults = Some((rate, seed));
        self
    }

    /// Checkpoints torn by injection so far.
    pub fn torn_injected(&self) -> u64 {
        self.torn_injected
    }

    /// Torn checkpoints detected (and skipped) by `workflow_restart`.
    pub fn torn_detected(&self) -> u64 {
        self.torn_detected
    }

    fn tear_roll(&self, ckpt_id: u64) -> bool {
        let Some((rate, seed)) = self.ckpt_faults else { return false };
        let mix = seed
            ^ u64::from(self.staging.app()).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ ckpt_id.wrapping_mul(0xA24B_AED4_963E_E407);
        let x = SplitMix64::new(mix).next_u64();
        let unit = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < rate
    }

    /// This component's id.
    pub fn app(&self) -> AppId {
        self.staging.app()
    }

    /// `workflow_check()`: persist `snapshot` to reliable storage, then send
    /// the checkpoint event to data staging. Returns the snapshot's
    /// `W_Chk_ID`.
    pub fn workflow_check(
        &mut self,
        resume_step: u32,
        rng_state: [u64; 4],
        state_bytes: u64,
    ) -> Result<u64, WorkflowError> {
        let ckpt_id = self.next_ckpt_id;
        self.next_ckpt_id += 1;
        let snap = Snapshot::new(self.app(), ckpt_id, resume_step, rng_state, state_bytes);
        let w_chk_id = snap.w_chk_id();
        // Step 1 (Fig. 7a): save process state to reliable storage.
        {
            let mut store = self.ckpts.lock();
            store.save(snap);
            // Fault injection: the save may be torn (crash mid-write). The
            // marker below is still sent — the paper's ordering makes the
            // torn snapshot the *newest*, so restore must fall back.
            if self.tear_roll(ckpt_id) {
                store.tear_latest(self.app());
                self.torn_injected += 1;
            }
        }
        // Step 2: notify data staging; the marker bounds the replayable log.
        let upto = resume_step.saturating_sub(1);
        self.staging.checkpoint(upto)?;
        Ok(w_chk_id)
    }

    /// `workflow_restart()`: restore the latest checkpoint, re-initialize
    /// the staging client connection, and send the recovery event so the
    /// servers generate this component's replay script. Returns the restored
    /// snapshot.
    pub fn workflow_restart(&mut self) -> Result<Snapshot, WorkflowError> {
        let snap = {
            let store = self.ckpts.lock();
            // Checksum-verify: skip torn snapshots, falling back to the
            // newest complete one.
            let valid = store.latest_valid(self.app()).cloned();
            if let Some(newest) = store.latest(self.app()) {
                if valid.as_ref().map(|v| v.ckpt_id) != Some(newest.ckpt_id) {
                    self.torn_detected += 1;
                }
            }
            valid.ok_or(WorkflowError::NoCheckpoint)?
        };
        // (Re-attachment is implicit for the in-process mesh; a real client
        // would rebuild its RDMA connections here.)
        let resume_version = snap.resume_step.saturating_sub(1);
        self.staging.recover(resume_version)?;
        // Checkpoint ids continue after the restored one.
        self.next_ckpt_id = snap.ckpt_id + 1;
        Ok(snap)
    }

    /// `dspaces_put_with_log()`: write a region; servers log the event.
    pub fn put_with_log(
        &mut self,
        var: VarId,
        version: Version,
        bbox: &BBox,
        fill: impl FnMut(&BBox) -> Payload,
    ) -> Result<Vec<PutStatus>, WorkflowError> {
        Ok(self.staging.put(var, version, bbox, fill)?)
    }

    /// `dspaces_get_with_log()`: read a region; during recovery the servers
    /// serve the logged version.
    pub fn get_with_log(
        &mut self,
        var: VarId,
        version: Version,
        bbox: &BBox,
    ) -> Result<Vec<GetPiece>, WorkflowError> {
        Ok(self.staging.get(var, version, bbox)?)
    }

    /// Tear down the staging servers (test/shutdown convenience).
    pub fn shutdown_servers(&self) {
        self.staging.shutdown_servers();
    }

    /// Access to the shared checkpoint store.
    pub fn checkpoint_store(&self) -> &Arc<Mutex<CheckpointStore>> {
        &self.ckpts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::LoggingBackend;
    use net::threaded::ThreadedNet;
    use staging::dist::Distribution;
    use staging::service::{ServerCosts, ServerLogic};
    use staging::threaded::spawn_server;

    fn fill_for(version: Version) -> impl FnMut(&BBox) -> Payload {
        move |b: &BBox| {
            let data: Vec<u8> =
                (0..b.volume()).map(|i| (version as u64 * 37 + b.lb[0] + i) as u8).collect();
            Payload::inline(data)
        }
    }

    fn setup(
        nservers: usize,
        napps: usize,
    ) -> (Vec<std::thread::JoinHandle<ServerLogic<LoggingBackend>>>, Vec<WorkflowClient>) {
        let dist = Distribution::new(BBox::whole([16, 16, 16]), [8, 8, 8], nservers);
        let mut eps = ThreadedNet::mesh(nservers + napps);
        let client_eps = eps.split_off(nservers);
        let handles: Vec<_> = eps
            .into_iter()
            .map(|ep| {
                let mut backend = LoggingBackend::new();
                for a in 0..napps as AppId {
                    backend.register_app(a);
                }
                spawn_server(ep, ServerLogic::new(backend, ServerCosts::default()))
            })
            .collect();
        let ckpts = Arc::new(Mutex::new(CheckpointStore::new(2)));
        let clients = client_eps
            .into_iter()
            .enumerate()
            .map(|(i, ep)| {
                let sync = SyncClient::new(ep, dist.clone(), (0..nservers).collect(), i as AppId);
                WorkflowClient::new(sync, Arc::clone(&ckpts))
            })
            .collect();
        (handles, clients)
    }

    #[test]
    fn four_call_interface_end_to_end() {
        let (handles, mut clients) = setup(2, 2);
        let mut consumer = clients.pop().unwrap();
        let mut producer = clients.pop().unwrap();
        let bbox = BBox::whole([16, 16, 16]);

        // Steps 1..=4 write-then-read; checkpoint both at step 2 boundaries.
        let mut digests = Vec::new();
        for v in 1..=4u32 {
            producer.put_with_log(0, v, &bbox, fill_for(v)).unwrap();
            let pieces = consumer.get_with_log(0, v, &bbox).unwrap();
            digests.push(crate::backend::pieces_digest(&pieces));
            if v == 2 {
                producer.workflow_check(v + 1, [1, 2, 3, 4], 1 << 20).unwrap();
                consumer.workflow_check(v + 1, [5, 6, 7, 8], 1 << 18).unwrap();
            }
        }

        // Consumer fails and restarts: replays steps 3..=4 with original data.
        let snap = consumer.workflow_restart().unwrap();
        assert_eq!(snap.resume_step, 3);
        for (i, v) in (3..=4u32).enumerate() {
            let pieces = consumer.get_with_log(0, v, &bbox).unwrap();
            assert_eq!(
                crate::backend::pieces_digest(&pieces),
                digests[2 + i],
                "replayed step {v} observes original data"
            );
        }

        consumer.shutdown_servers();
        for h in handles {
            let logic = h.join().unwrap();
            assert_eq!(logic.backend().digest_mismatches(), 0);
        }
    }

    #[test]
    fn restart_without_checkpoint_fails() {
        let (handles, mut clients) = setup(1, 1);
        let mut c = clients.pop().unwrap();
        assert_eq!(c.workflow_restart().unwrap_err(), WorkflowError::NoCheckpoint);
        c.shutdown_servers();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn w_chk_ids_are_unique_across_components() {
        let (handles, mut clients) = setup(1, 2);
        let mut b = clients.pop().unwrap();
        let mut a = clients.pop().unwrap();
        let ida = a.workflow_check(1, [1, 1, 1, 1], 10).unwrap();
        let idb = b.workflow_check(1, [1, 1, 1, 1], 10).unwrap();
        let ida2 = a.workflow_check(2, [1, 1, 1, 1], 10).unwrap();
        assert_ne!(ida, idb);
        assert_ne!(ida, ida2);
        a.shutdown_servers();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn restart_skips_torn_checkpoint_and_falls_back() {
        let (handles, mut clients) = setup(2, 2);
        let mut consumer = clients.pop().unwrap();
        let mut producer = clients.pop().unwrap();
        let bbox = BBox::whole([16, 16, 16]);
        for v in 1..=3u32 {
            producer.put_with_log(0, v, &bbox, fill_for(v)).unwrap();
            consumer.get_with_log(0, v, &bbox).unwrap();
            consumer.workflow_check(v + 1, [v as u64; 4], 100).unwrap();
        }
        // The newest checkpoint (resume_step 4) was torn mid-write.
        consumer.checkpoint_store().lock().tear_latest(consumer.app());
        let snap = consumer.workflow_restart().unwrap();
        assert_eq!(snap.resume_step, 3, "fell back to the previous complete checkpoint");
        assert_eq!(consumer.torn_detected(), 1);
        consumer.shutdown_servers();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn injected_torn_checkpoints_are_counted_and_skipped() {
        let (handles, mut clients) = setup(1, 1);
        // Every save torn: restore must find nothing valid.
        let mut c = {
            let c = clients.pop().unwrap();
            let WorkflowClient { staging, ckpts, .. } = c;
            WorkflowClient::new(staging, ckpts).with_ckpt_faults(1.0, 9)
        };
        c.workflow_check(2, [1, 1, 1, 1], 100).unwrap();
        c.workflow_check(3, [2, 2, 2, 2], 100).unwrap();
        assert_eq!(c.torn_injected(), 2);
        assert_eq!(c.checkpoint_store().lock().torn_count(c.app()), 2);
        assert_eq!(c.workflow_restart().unwrap_err(), WorkflowError::NoCheckpoint);
        c.shutdown_servers();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn producer_restart_absorbs_rewrites() {
        let (handles, mut clients) = setup(2, 2);
        let mut consumer = clients.pop().unwrap();
        let mut producer = clients.pop().unwrap();
        let bbox = BBox::whole([16, 16, 16]);
        for v in 1..=3u32 {
            producer.put_with_log(0, v, &bbox, fill_for(v)).unwrap();
            consumer.get_with_log(0, v, &bbox).unwrap();
        }
        producer.workflow_check(2, [9, 9, 9, 9], 100).unwrap(); // covers step 1
        let snap = producer.workflow_restart().unwrap();
        assert_eq!(snap.resume_step, 2);
        // Deterministic re-execution of steps 2..=3.
        let s2 = producer.put_with_log(0, 2, &bbox, fill_for(2)).unwrap();
        let s3 = producer.put_with_log(0, 3, &bbox, fill_for(3)).unwrap();
        assert!(s2.iter().all(|s| *s == PutStatus::Absorbed));
        assert!(s3.iter().all(|s| *s == PutStatus::Absorbed));
        // New step stored normally.
        let s4 = producer.put_with_log(0, 4, &bbox, fill_for(4)).unwrap();
        assert!(s4.iter().all(|s| *s == PutStatus::Stored));
        producer.shutdown_servers();
        for h in handles {
            let logic = h.join().unwrap();
            assert_eq!(logic.backend().digest_mismatches(), 0);
        }
    }
}
