#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # wfcr — workflow-level checkpoint/restart with data logging
//!
//! This crate is the paper's contribution: a loosely-coupled crash-consistency
//! layer for staging-based in-situ workflows. Application components keep
//! using whatever fault-tolerance scheme suits them (independent C/R periods,
//! process replication, ...); the staging area logs every data-transport
//! event, and when one component rolls back, staging **replays** that
//! component's event history so it observes exactly the data the original
//! execution observed — without touching any other component.
//!
//! ## Module map (paper § → module)
//!
//! * §III-A.1 "Data Logging in Staging" → [`event`], [`queue`], [`backend`]
//! * §III-A.1 "queue based data consistency algorithm" → [`replay`]
//! * §III-A.2 "Storage Cost and Garbage Collection" → [`gc`] (driven from
//!   [`backend`])
//! * §III-B "Hybrid Checkpointing" → [`protocol`]
//! * §III-C "Global User Interface" (Table 1) → [`iface`]
//!
//! ## The consistency argument
//!
//! Both failure anomalies of Figure 2 are closed by the same queue mechanism:
//!
//! * **Case 1 (consumer fails):** the rolled-back analytics re-issues `get`s
//!   for steps it already processed. The producer has moved on, so the
//!   *current* version in staging is newer — but the logged `Get` events
//!   record which version each original read served, and the data log still
//!   holds those versions (GC only deletes what no possible rollback can
//!   need), so the replay serves the historical versions.
//! * **Case 2 (producer fails):** the rolled-back simulation re-executes and
//!   re-issues `put`s for steps already staged. The logged `Put` events let
//!   staging recognize them as redundant and absorb them (after verifying
//!   the payload digest matches, which deterministic re-execution from the
//!   checkpointed RNG state guarantees), so consumers never see a version
//!   regress or duplicate.

pub mod backend;
pub mod conservation;
pub mod event;
pub mod gc;
pub mod iface;
pub mod journal;
pub mod protocol;
pub mod queue;
pub mod replay;
pub mod snapshot;

pub use backend::LoggingBackend;
pub use conservation::{logged_put_keys, PieceKey};
pub use event::LogEvent;
pub use iface::WorkflowClient;
pub use journal::{JournalEntry, JournalHandle};
pub use protocol::{FtScheme, WorkflowProtocol};
pub use queue::EventQueue;
