//! Workflow-level fault-tolerance protocols and their rollback semantics.
//!
//! The evaluation compares five schemes (Figure 9's legend):
//!
//! * **Ds** — failure-free baseline, no logging, no checkpoints;
//! * **Co** — global coordinated C/R: one global period, barriers around the
//!   snapshot, and on any failure *every* component rolls back;
//! * **Un** — the paper's uncoordinated C/R + data logging: per-component
//!   periods, only the failed component rolls back, staging replays;
//! * **Hy** — hybrid: some components use process replication instead of
//!   C/R; replicated components never roll back at all;
//! * **In** — individual C/R *without* logging: only the failed component
//!   rolls back, consistency is (incorrectly) assumed — the theoretical
//!   lower bound on execution time.

use serde::{Deserialize, Serialize};
use staging::proto::AppId;

/// Per-component fault-tolerance scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FtScheme {
    /// No protection; a failure is fatal for the workflow.
    None,
    /// Periodic checkpoint/restart every `period` time steps.
    CheckpointRestart {
        /// Steps between checkpoints.
        period: u32,
    },
    /// Process replication with `replicas` copies; tolerates `replicas - 1`
    /// failures with near-zero recovery cost (fail-over to the replica).
    Replication {
        /// Total copies (≥ 2 to tolerate a failure).
        replicas: u32,
    },
}

impl FtScheme {
    /// Does a failed component under this scheme roll back (vs. fail-over)?
    pub fn rolls_back(&self) -> bool {
        matches!(self, FtScheme::CheckpointRestart { .. })
    }

    /// Checkpoint period, if the scheme checkpoints.
    pub fn period(&self) -> Option<u32> {
        match self {
            FtScheme::CheckpointRestart { period } => Some(*period),
            _ => None,
        }
    }

    /// Compute-resource multiplier of the scheme (replication runs extra
    /// copies).
    pub fn resource_factor(&self) -> f64 {
        match self {
            FtScheme::Replication { replicas } => *replicas as f64,
            _ => 1.0,
        }
    }
}

/// Workflow-level protocol tying the components' schemes together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkflowProtocol {
    /// Failure-free baseline (Ds): no checkpointing, no logging.
    FailureFree,
    /// Global coordinated checkpoint/restart (Co): no logging needed.
    Coordinated,
    /// Uncoordinated C/R with data logging (Un) — the paper's scheme.
    Uncoordinated,
    /// Hybrid C/R + replication with data logging (Hy) — the paper's scheme.
    Hybrid,
    /// Individual C/R, no logging, no consistency guarantee (In).
    Individual,
}

impl WorkflowProtocol {
    /// Does this protocol run the data/event logging backend in staging?
    pub fn uses_logging(&self) -> bool {
        matches!(self, WorkflowProtocol::Uncoordinated | WorkflowProtocol::Hybrid)
    }

    /// Does this protocol guarantee crash consistency of coupled data?
    pub fn is_consistent(&self) -> bool {
        !matches!(self, WorkflowProtocol::Individual | WorkflowProtocol::FailureFree)
    }

    /// Are checkpoints coordinated across components (global period plus
    /// cross-component barrier)?
    pub fn coordinated_checkpoints(&self) -> bool {
        matches!(self, WorkflowProtocol::Coordinated)
    }

    /// Which components roll back when `failed` fails, given each
    /// component's scheme? Returns the rollback set (component ids).
    pub fn rollback_set(&self, failed: AppId, schemes: &[(AppId, FtScheme)]) -> Vec<AppId> {
        match self {
            WorkflowProtocol::FailureFree => Vec::new(),
            WorkflowProtocol::Coordinated => {
                // Everybody returns to the last global checkpoint.
                schemes.iter().map(|(a, _)| *a).collect()
            }
            WorkflowProtocol::Uncoordinated
            | WorkflowProtocol::Hybrid
            | WorkflowProtocol::Individual => {
                let scheme = schemes
                    .iter()
                    .find(|(a, _)| *a == failed)
                    .map(|(_, s)| *s)
                    .unwrap_or(FtScheme::None);
                if scheme.rolls_back() || scheme == FtScheme::None {
                    vec![failed]
                } else {
                    Vec::new() // replication fails over without rollback
                }
            }
        }
    }

    /// Short label used in reports (matches the paper's legend).
    pub fn label(&self) -> &'static str {
        match self {
            WorkflowProtocol::FailureFree => "Ds",
            WorkflowProtocol::Coordinated => "Co",
            WorkflowProtocol::Uncoordinated => "Un",
            WorkflowProtocol::Hybrid => "Hy",
            WorkflowProtocol::Individual => "In",
        }
    }

    /// All five evaluated protocols in the paper's presentation order.
    pub fn all() -> [WorkflowProtocol; 5] {
        [
            WorkflowProtocol::FailureFree,
            WorkflowProtocol::Coordinated,
            WorkflowProtocol::Uncoordinated,
            WorkflowProtocol::Hybrid,
            WorkflowProtocol::Individual,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemes() -> Vec<(AppId, FtScheme)> {
        vec![
            (0, FtScheme::CheckpointRestart { period: 4 }),
            (1, FtScheme::CheckpointRestart { period: 5 }),
        ]
    }

    fn hybrid_schemes() -> Vec<(AppId, FtScheme)> {
        vec![
            (0, FtScheme::CheckpointRestart { period: 4 }),
            (1, FtScheme::Replication { replicas: 2 }),
        ]
    }

    #[test]
    fn coordinated_rolls_back_everyone() {
        let rb = WorkflowProtocol::Coordinated.rollback_set(1, &schemes());
        assert_eq!(rb, vec![0, 1]);
    }

    #[test]
    fn uncoordinated_rolls_back_failed_only() {
        let rb = WorkflowProtocol::Uncoordinated.rollback_set(1, &schemes());
        assert_eq!(rb, vec![1]);
        let rb = WorkflowProtocol::Uncoordinated.rollback_set(0, &schemes());
        assert_eq!(rb, vec![0]);
    }

    #[test]
    fn hybrid_replicated_component_never_rolls_back() {
        let rb = WorkflowProtocol::Hybrid.rollback_set(1, &hybrid_schemes());
        assert!(rb.is_empty(), "replicated analytics fails over");
        let rb = WorkflowProtocol::Hybrid.rollback_set(0, &hybrid_schemes());
        assert_eq!(rb, vec![0], "C/R simulation still rolls back");
    }

    #[test]
    fn failure_free_never_rolls_back() {
        assert!(WorkflowProtocol::FailureFree.rollback_set(0, &schemes()).is_empty());
    }

    #[test]
    fn logging_flags() {
        assert!(WorkflowProtocol::Uncoordinated.uses_logging());
        assert!(WorkflowProtocol::Hybrid.uses_logging());
        assert!(!WorkflowProtocol::Coordinated.uses_logging());
        assert!(!WorkflowProtocol::Individual.uses_logging());
        assert!(!WorkflowProtocol::FailureFree.uses_logging());
    }

    #[test]
    fn consistency_flags() {
        assert!(WorkflowProtocol::Coordinated.is_consistent());
        assert!(WorkflowProtocol::Uncoordinated.is_consistent());
        assert!(WorkflowProtocol::Hybrid.is_consistent());
        assert!(!WorkflowProtocol::Individual.is_consistent());
    }

    #[test]
    fn scheme_properties() {
        assert!(FtScheme::CheckpointRestart { period: 4 }.rolls_back());
        assert!(!FtScheme::Replication { replicas: 2 }.rolls_back());
        assert_eq!(FtScheme::CheckpointRestart { period: 4 }.period(), Some(4));
        assert_eq!(FtScheme::Replication { replicas: 2 }.period(), None);
        assert!((FtScheme::Replication { replicas: 2 }.resource_factor() - 2.0).abs() < 1e-12);
        assert!((FtScheme::None.resource_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labels_match_paper() {
        let labels: Vec<&str> = WorkflowProtocol::all().iter().map(|p| p.label()).collect();
        assert_eq!(labels, vec!["Ds", "Co", "Un", "Hy", "In"]);
    }

    #[test]
    fn unknown_component_treated_as_unprotected() {
        let rb = WorkflowProtocol::Uncoordinated.rollback_set(99, &schemes());
        assert_eq!(rb, vec![99]);
    }
}
