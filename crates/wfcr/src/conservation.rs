//! Cross-shard piece conservation: the bookkeeping side of the sharded
//! fleet's safety argument.
//!
//! In a sharded staging fleet every block of every `put` is routed to
//! exactly one shard, and replay after a shard-local rollback re-serves
//! exactly the pieces that shard logged. Two things can silently break
//! that: a routing bug that lands the same piece on two shards (a get or
//! replay would then double-serve it), and a rebalance that strands a
//! piece on a shard no current map points at (the piece is lost to every
//! future reader). This module extracts the logged piece population from
//! each shard's [`LoggingBackend`] so a model-checking oracle can prove,
//! per run, that the union over shards is both disjoint (no piece
//! double-served) and complete (no piece lost).

use crate::backend::LoggingBackend;
use crate::event::LogEvent;
use staging::proto::{AppId, VarId, Version};

/// Identity of one logged put piece: enough to recognise the same block of
/// the same write wherever it is stored. Block identity is the clipped
/// bbox's lower corner — the planners cut puts on block boundaries, so the
/// corner is unique per `(var, version)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PieceKey {
    /// Writing component.
    pub app: AppId,
    /// Variable written.
    pub var: VarId,
    /// Data version.
    pub version: Version,
    /// Lower corner of the clipped block bbox.
    pub lb: [u64; 3],
}

/// Every put piece currently logged by `backend`, in queue order. GC may
/// have truncated events below the checkpoint floor; conservation is
/// therefore asserted over the *retained* population, which is exactly the
/// set replay could ever re-serve.
pub fn logged_put_keys(backend: &LoggingBackend) -> Vec<PieceKey> {
    let mut keys = Vec::new();
    for app in backend.queue_apps() {
        let Some(q) = backend.queue(app) else { continue };
        for ev in q.iter() {
            if let LogEvent::Put { app, desc, .. } = *ev {
                keys.push(PieceKey { app, var: desc.var, version: desc.version, lb: desc.bbox.lb });
            }
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;
    use staging::geometry::BBox;
    use staging::proto::{ObjDesc, PutRequest, PutStatus};
    use staging::service::StoreBackend;
    use staging::Payload;

    fn put(backend: &mut LoggingBackend, app: AppId, var: VarId, version: Version, lb: u64) {
        let bbox = BBox::d1(lb, lb + 7);
        let req = PutRequest {
            app,
            desc: ObjDesc { var, version, bbox },
            payload: Payload::virtual_from(8, &[app as u64, var as u64, version as u64, lb]),
            seq: 0,
            tctx: obs::TraceCtx::NONE,
        };
        assert_eq!(backend.put(&req).0, PutStatus::Stored);
    }

    #[test]
    fn extracts_logged_puts_in_queue_order() {
        let mut b = LoggingBackend::new();
        put(&mut b, 0, 1, 3, 0);
        put(&mut b, 0, 1, 3, 8);
        put(&mut b, 2, 1, 4, 0);
        let keys = logged_put_keys(&b);
        assert_eq!(keys.len(), 3);
        assert_eq!(keys[0], PieceKey { app: 0, var: 1, version: 3, lb: [0, 0, 0] });
        assert_eq!(keys[1], PieceKey { app: 0, var: 1, version: 3, lb: [8, 0, 0] });
        assert_eq!(keys[2], PieceKey { app: 2, var: 1, version: 4, lb: [0, 0, 0] });
    }

    #[test]
    fn redundant_writes_repeat_the_same_key() {
        let mut b = LoggingBackend::new();
        put(&mut b, 0, 1, 3, 0);
        // Re-executed write of the same piece: absorbed as redundant, and
        // logged again — the population may repeat a key *within* a shard.
        // Conservation is about the same key never appearing on two
        // different shards, so PieceKey must recognise the re-execution as
        // the same piece.
        let bbox = BBox::d1(0, 7);
        let req = PutRequest {
            app: 0,
            desc: ObjDesc { var: 1, version: 3, bbox },
            payload: Payload::virtual_from(8, &[0, 1, 3, 0]),
            seq: 1,
            tctx: obs::TraceCtx::NONE,
        };
        let _ = b.put(&req);
        let keys = logged_put_keys(&b);
        assert_eq!(keys.len(), 2);
        assert_eq!(keys[0], keys[1]);
    }
}
