#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # ckpt — checkpoint/restart substrate
//!
//! Models the paper's checkpoint storage options: "checkpoints can be stored
//! through a centralized parallel file system, assumed to be fault-free.
//! Other options include storing the checkpoints in the node-local storage
//! (such as NVRAM and SSD) or burst-buffer".
//!
//! * [`snapshot`] — what a synthetic component's checkpoint *is*: logical
//!   progress (step counter, RNG state, pending coupling position) plus the
//!   size of the process state it stands for.
//! * [`target`] — storage-target cost models: a shared-bandwidth PFS (the
//!   coordinated baseline's bottleneck — all components restore through it
//!   simultaneously), unshared node-local storage, and a two-level SCR-style
//!   combination.
//! * [`store`] — the checkpoint directory: save/restore with retention,
//!   plus node-failure invalidation of node-local copies.
//! * [`durable`] — the PFS tier made concrete: snapshots journaled through a
//!   `logstore::LogStore` (real files via `FsMedia`), recovered after full
//!   process death without re-sealing.

pub mod durable;
pub mod snapshot;
pub mod store;
pub mod target;

/// Shared integrity primitives (re-exported from `logstore` so existing
/// `ckpt`-only users keep one import path).
pub use logstore::checksum;

pub use durable::DurableTier;
pub use snapshot::Snapshot;
pub use store::{CheckpointStore, SnapshotSink};
pub use target::{CkptTarget, NodeLocalModel, PfsModel, TwoLevelModel};
