//! The checkpoint directory: save, restore, retention, and node-failure
//! invalidation of fast copies.
//!
//! One [`CheckpointStore`] stands for the whole job's checkpoint state. Every
//! snapshot saved through a two-level target has a fast node-local copy and a
//! durable PFS copy; a node failure destroys the fast copies of the
//! components on that node (tracked per app here), forcing their next restore
//! down the slow path — matching SCR/FTI semantics.

use crate::snapshot::Snapshot;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// A durable persistence hook invoked as the last step of every completed
/// [`CheckpointStore::save`]. The production implementation is
/// [`crate::durable::DurableTier`] (snapshots journaled through a
/// `logstore::LogStore`); the default store has no sink and stays purely
/// in-memory.
pub trait SnapshotSink: Send {
    /// Persist one sealed snapshot. Called after the seal, so what lands on
    /// the media is exactly what a restore must verify.
    fn persist(&mut self, snap: &Snapshot) -> std::io::Result<()>;
}

/// Holds the optional sink without breaking `CheckpointStore`'s `Debug`.
#[derive(Default)]
struct SinkSlot(Option<Box<dyn SnapshotSink>>);

impl fmt::Debug for SinkSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.0.is_some() { "SinkSlot(attached)" } else { "SinkSlot(none)" })
    }
}

/// In-memory checkpoint directory with bounded retention per component.
#[derive(Debug)]
pub struct CheckpointStore {
    /// app → ckpt_id → snapshot.
    snaps: HashMap<u32, BTreeMap<u64, Snapshot>>,
    /// Apps whose node-local copies are currently invalid.
    local_lost: HashSet<u32>,
    /// Keep at most this many snapshots per app.
    retention: usize,
    /// Total bytes ever written (for I/O accounting).
    bytes_written: u64,
    /// Snapshots torn by fault injection ([`CheckpointStore::tear_latest`]).
    torn_injected: u64,
    /// Optional durable backend.
    sink: SinkSlot,
    /// Persist calls that returned an error (the in-memory copy stays
    /// authoritative; durability is degraded, not correctness).
    sink_errors: u64,
}

impl CheckpointStore {
    /// Create a store keeping the last `retention` checkpoints per component.
    pub fn new(retention: usize) -> Self {
        assert!(retention >= 1, "must keep at least one checkpoint");
        CheckpointStore {
            snaps: HashMap::new(),
            local_lost: HashSet::new(),
            retention,
            bytes_written: 0,
            torn_injected: 0,
            sink: SinkSlot(None),
            sink_errors: 0,
        }
    }

    /// Attach a durable backend; every subsequent save is persisted through
    /// it after sealing.
    pub fn attach_sink(&mut self, sink: Box<dyn SnapshotSink>) {
        self.sink = SinkSlot(Some(sink));
    }

    /// Is a durable backend attached?
    pub fn has_sink(&self) -> bool {
        self.sink.0.is_some()
    }

    /// Persist calls that failed (durability degraded; in-memory state is
    /// still authoritative).
    pub fn sink_errors(&self) -> u64 {
        self.sink_errors
    }

    /// Re-insert a snapshot recovered from durable storage, **without**
    /// re-sealing it and without charging `bytes_written`: the snapshot is
    /// stored exactly as read back, so one that was torn on the media still
    /// fails [`Snapshot::is_intact`] and restore falls back — re-sealing
    /// here would launder the damage. Retention applies as usual; restore in
    /// oldest-to-newest order to keep the newest snapshots.
    pub fn restore(&mut self, snap: Snapshot) {
        let per_app = self.snaps.entry(snap.app).or_default();
        per_app.insert(snap.ckpt_id, snap);
        while per_app.len() > self.retention {
            let (&oldest, _) = per_app.iter().next().expect("nonempty");
            per_app.remove(&oldest);
        }
    }

    /// Persist a snapshot. The store seals it (stamps the content checksum)
    /// as the final step of the write, so restore can distinguish complete
    /// saves from torn ones. Re-validates the app's node-local copies (the
    /// new checkpoint writes a fresh fast copy). Returns the evicted
    /// snapshot, if retention pushed one out.
    pub fn save(&mut self, mut snap: Snapshot) -> Option<Snapshot> {
        snap.seal();
        if let Some(sink) = self.sink.0.as_mut() {
            if sink.persist(&snap).is_err() {
                self.sink_errors += 1;
            }
        }
        self.bytes_written += snap.persisted_bytes();
        self.local_lost.remove(&snap.app);
        let per_app = self.snaps.entry(snap.app).or_default();
        per_app.insert(snap.ckpt_id, snap);
        if per_app.len() > self.retention {
            let (&oldest, _) = per_app.iter().next().expect("nonempty");
            return per_app.remove(&oldest);
        }
        None
    }

    /// Latest snapshot for `app`, if any — torn or not. Restore paths should
    /// prefer [`CheckpointStore::latest_valid`].
    pub fn latest(&self, app: u32) -> Option<&Snapshot> {
        self.snaps.get(&app).and_then(|m| m.values().next_back())
    }

    /// Latest snapshot for `app` whose checksum verifies, skipping torn
    /// writes (newest first). This is the restore-time fallback: a crash
    /// mid-checkpoint leaves the newest snapshot torn, and recovery falls
    /// back to the previous complete one.
    pub fn latest_valid(&self, app: u32) -> Option<&Snapshot> {
        self.snaps.get(&app).and_then(|m| m.values().rev().find(|s| s.is_intact()))
    }

    /// Fault injection: corrupt the newest snapshot of `app` as a torn
    /// write would (content perturbed after the seal). Returns whether a
    /// snapshot was present to tear.
    pub fn tear_latest(&mut self, app: u32) -> bool {
        if let Some(s) = self.snaps.get_mut(&app).and_then(|m| m.values_mut().next_back()) {
            s.state_bytes ^= 0xDEAD;
            self.torn_injected += 1;
            true
        } else {
            false
        }
    }

    /// Number of snapshots torn by fault injection.
    pub fn torn_injected(&self) -> u64 {
        self.torn_injected
    }

    /// Torn (checksum-failing) snapshots currently retained for `app`.
    pub fn torn_count(&self, app: u32) -> usize {
        self.snaps.get(&app).map(|m| m.values().filter(|s| !s.is_intact()).count()).unwrap_or(0)
    }

    /// A specific snapshot.
    pub fn get(&self, app: u32, ckpt_id: u64) -> Option<&Snapshot> {
        self.snaps.get(&app).and_then(|m| m.get(&ckpt_id))
    }

    /// Number of retained snapshots for `app`.
    pub fn count(&self, app: u32) -> usize {
        self.snaps.get(&app).map(BTreeMap::len).unwrap_or(0)
    }

    /// Mark `app`'s node-local checkpoint copies destroyed (its node died).
    pub fn invalidate_local(&mut self, app: u32) {
        self.local_lost.insert(app);
    }

    /// Is a node-local copy available for `app`'s latest checkpoint?
    pub fn local_available(&self, app: u32) -> bool {
        !self.local_lost.contains(&app) && self.count(app) > 0
    }

    /// Cumulative checkpoint bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Apps with at least one snapshot.
    pub fn apps(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.snaps.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(app: u32, id: u64, step: u32) -> Snapshot {
        Snapshot::new(app, id, step, [id, 2, 3, 4], 1000)
    }

    #[test]
    fn save_and_latest() {
        let mut st = CheckpointStore::new(3);
        st.save(snap(0, 1, 4));
        st.save(snap(0, 2, 8));
        assert_eq!(st.latest(0).unwrap().resume_step, 8);
        assert_eq!(st.count(0), 2);
        assert!(st.latest(1).is_none());
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut st = CheckpointStore::new(2);
        assert!(st.save(snap(0, 1, 4)).is_none());
        assert!(st.save(snap(0, 2, 8)).is_none());
        let evicted = st.save(snap(0, 3, 12)).unwrap();
        assert_eq!(evicted.ckpt_id, 1);
        assert_eq!(st.count(0), 2);
        assert!(st.get(0, 1).is_none());
        assert!(st.get(0, 2).is_some());
    }

    #[test]
    fn per_app_isolation() {
        let mut st = CheckpointStore::new(1);
        st.save(snap(0, 1, 4));
        st.save(snap(1, 1, 5));
        assert_eq!(st.latest(0).unwrap().resume_step, 4);
        assert_eq!(st.latest(1).unwrap().resume_step, 5);
        assert_eq!(st.apps(), vec![0, 1]);
    }

    #[test]
    fn local_invalidation_cycle() {
        let mut st = CheckpointStore::new(2);
        st.save(snap(0, 1, 4));
        assert!(st.local_available(0));
        st.invalidate_local(0);
        assert!(!st.local_available(0));
        // A fresh checkpoint restores fast-copy availability.
        st.save(snap(0, 2, 8));
        assert!(st.local_available(0));
    }

    #[test]
    fn local_unavailable_without_snapshots() {
        let st = CheckpointStore::new(2);
        assert!(!st.local_available(9));
    }

    #[test]
    fn torn_latest_falls_back_to_previous_valid() {
        let mut st = CheckpointStore::new(3);
        st.save(snap(0, 1, 4));
        st.save(snap(0, 2, 8));
        assert!(st.latest(0).unwrap().is_intact(), "save seals");
        assert!(st.tear_latest(0));
        assert_eq!(st.torn_injected(), 1);
        assert_eq!(st.torn_count(0), 1);
        // latest() still returns the torn snapshot; latest_valid() skips it.
        assert_eq!(st.latest(0).unwrap().ckpt_id, 2);
        assert!(!st.latest(0).unwrap().is_intact());
        let valid = st.latest_valid(0).unwrap();
        assert_eq!(valid.ckpt_id, 1);
        assert_eq!(valid.resume_step, 4);
        // A later complete checkpoint becomes the valid latest again.
        st.save(snap(0, 3, 12));
        assert_eq!(st.latest_valid(0).unwrap().ckpt_id, 3);
    }

    #[test]
    fn tear_without_snapshots_is_a_noop() {
        let mut st = CheckpointStore::new(2);
        assert!(!st.tear_latest(5));
        assert_eq!(st.torn_injected(), 0);
        assert!(st.latest_valid(5).is_none());
    }

    #[test]
    fn byte_accounting_accumulates() {
        let mut st = CheckpointStore::new(2);
        st.save(snap(0, 1, 4));
        st.save(snap(0, 2, 8));
        assert_eq!(st.bytes_written(), 2000);
        // Eviction does not reduce the cumulative I/O counter.
        st.save(snap(0, 3, 12));
        assert_eq!(st.bytes_written(), 3000);
    }
}
