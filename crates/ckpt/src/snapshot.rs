//! Component checkpoint snapshots.
//!
//! The synthetic workloads' process state is fully characterized by logical
//! progress: the next time step to execute, the RNG state driving workload
//! jitter, and bookkeeping counters. A snapshot records that progress plus
//! `state_bytes`, the size of the process image the snapshot stands for —
//! the quantity every storage-cost model charges.

use serde::{Deserialize, Serialize};

/// A point-in-time checkpoint of one application component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Component that took the checkpoint.
    pub app: u32,
    /// Monotonic checkpoint id within the component (the paper's
    /// `W_Chk_ID` is derived from `(app, ckpt_id)`).
    pub ckpt_id: u64,
    /// First time step to execute after restoring this snapshot.
    pub resume_step: u32,
    /// RNG state of the component at checkpoint time (so re-execution is
    /// bit-identical to the original execution — required for the paper's
    /// redundant-write absorption to be semantically safe).
    pub rng_state: [u64; 4],
    /// Size of the process state this snapshot stands for, bytes.
    pub state_bytes: u64,
    /// Opaque user payload (e.g. serialized solver state in examples).
    #[serde(default)]
    pub user_data: Vec<u8>,
    /// Integrity checksum over the logical content, written last by a
    /// completed save ([`Snapshot::seal`]). `0` means unsealed (legacy
    /// snapshots predating checksums), which is treated as intact. A torn
    /// write leaves a checksum that does not match the content, which
    /// [`Snapshot::is_intact`] detects at restore time.
    #[serde(default)]
    pub checksum: u64,
}

impl Snapshot {
    /// Create a snapshot with no user payload.
    pub fn new(
        app: u32,
        ckpt_id: u64,
        resume_step: u32,
        rng_state: [u64; 4],
        state_bytes: u64,
    ) -> Self {
        Snapshot {
            app,
            ckpt_id,
            resume_step,
            rng_state,
            state_bytes,
            user_data: Vec::new(),
            checksum: 0,
        }
    }

    /// FNV-1a over every content field (everything except `checksum`),
    /// computed with the shared [`logstore::checksum`] primitives so the
    /// snapshot seal and the durable log's record framing cannot drift apart.
    pub fn computed_checksum(&self) -> u64 {
        let mut h = logstore::checksum::Fnv1a::new();
        h.update_u64(u64::from(self.app));
        h.update_u64(self.ckpt_id);
        h.update_u64(u64::from(self.resume_step));
        for w in self.rng_state {
            h.update_u64(w);
        }
        h.update_u64(self.state_bytes);
        h.update_u64(self.user_data.len() as u64);
        h.update(&self.user_data);
        h.finish()
    }

    /// Stamp the checksum, marking the snapshot as completely written.
    pub fn seal(&mut self) {
        self.checksum = self.computed_checksum();
    }

    /// Does the checksum match the content? Unsealed (`checksum == 0`)
    /// snapshots are accepted for backward compatibility.
    pub fn is_intact(&self) -> bool {
        self.checksum == 0 || self.checksum == self.computed_checksum()
    }

    /// The paper's globally unique checkpoint event id for this snapshot.
    pub fn w_chk_id(&self) -> u64 {
        ((self.app as u64) << 48) | (self.ckpt_id & 0xFFFF_FFFF_FFFF)
    }

    /// Total bytes written when persisting this snapshot.
    pub fn persisted_bytes(&self) -> u64 {
        self.state_bytes + self.user_data.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w_chk_id_unique_per_app_and_id() {
        let a = Snapshot::new(0, 1, 4, [1, 2, 3, 4], 100);
        let b = Snapshot::new(1, 1, 4, [1, 2, 3, 4], 100);
        let c = Snapshot::new(0, 2, 8, [1, 2, 3, 4], 100);
        assert_ne!(a.w_chk_id(), b.w_chk_id());
        assert_ne!(a.w_chk_id(), c.w_chk_id());
    }

    #[test]
    fn persisted_bytes_includes_user_data() {
        let mut s = Snapshot::new(0, 1, 4, [0, 0, 0, 1], 1000);
        assert_eq!(s.persisted_bytes(), 1000);
        s.user_data = vec![0u8; 24];
        assert_eq!(s.persisted_bytes(), 1024);
    }

    #[test]
    fn serde_round_trip() {
        let s = Snapshot {
            app: 3,
            ckpt_id: 9,
            resume_step: 17,
            rng_state: [5, 6, 7, 8],
            state_bytes: 4096,
            user_data: vec![1, 2, 3],
            checksum: 0,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn seal_and_detect_torn_content() {
        let mut s = Snapshot::new(0, 1, 4, [1, 2, 3, 4], 100);
        assert!(s.is_intact(), "unsealed legacy snapshots are accepted");
        s.seal();
        assert!(s.is_intact());
        s.state_bytes += 1; // torn write: content changed after the seal
        assert!(!s.is_intact());
        s.seal();
        assert!(s.is_intact());
    }

    #[test]
    fn checksum_unchanged_by_shared_hasher_refactor() {
        // The seal must stay byte-compatible with the original in-crate
        // FNV-1a loop: snapshots sealed before the extraction to
        // `logstore::checksum` must still verify.
        let mut s = Snapshot::new(3, 9, 17, [5, 6, 7, 8], 4096);
        s.user_data = vec![1, 2, 3];
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        let word = |h: &mut u64, w: u64| {
            for b in w.to_le_bytes() {
                *h = (*h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        word(&mut h, 3);
        word(&mut h, 9);
        word(&mut h, 17);
        for w in [5u64, 6, 7, 8] {
            word(&mut h, w);
        }
        word(&mut h, 4096);
        word(&mut h, 3);
        for b in [1u8, 2, 3] {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
        assert_eq!(s.computed_checksum(), h);
    }

    #[test]
    fn legacy_json_without_checksum_deserializes_intact() {
        let json = r#"{"app":0,"ckpt_id":1,"resume_step":4,
                       "rng_state":[1,2,3,4],"state_bytes":100}"#;
        let s: Snapshot = serde_json::from_str(json).unwrap();
        assert_eq!(s.checksum, 0);
        assert!(s.is_intact());
    }
}
