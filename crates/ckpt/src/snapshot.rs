//! Component checkpoint snapshots.
//!
//! The synthetic workloads' process state is fully characterized by logical
//! progress: the next time step to execute, the RNG state driving workload
//! jitter, and bookkeeping counters. A snapshot records that progress plus
//! `state_bytes`, the size of the process image the snapshot stands for —
//! the quantity every storage-cost model charges.

use serde::{Deserialize, Serialize};

/// A point-in-time checkpoint of one application component.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Component that took the checkpoint.
    pub app: u32,
    /// Monotonic checkpoint id within the component (the paper's
    /// `W_Chk_ID` is derived from `(app, ckpt_id)`).
    pub ckpt_id: u64,
    /// First time step to execute after restoring this snapshot.
    pub resume_step: u32,
    /// RNG state of the component at checkpoint time (so re-execution is
    /// bit-identical to the original execution — required for the paper's
    /// redundant-write absorption to be semantically safe).
    pub rng_state: [u64; 4],
    /// Size of the process state this snapshot stands for, bytes.
    pub state_bytes: u64,
    /// Opaque user payload (e.g. serialized solver state in examples).
    #[serde(default)]
    pub user_data: Vec<u8>,
}

impl Snapshot {
    /// Create a snapshot with no user payload.
    pub fn new(
        app: u32,
        ckpt_id: u64,
        resume_step: u32,
        rng_state: [u64; 4],
        state_bytes: u64,
    ) -> Self {
        Snapshot { app, ckpt_id, resume_step, rng_state, state_bytes, user_data: Vec::new() }
    }

    /// The paper's globally unique checkpoint event id for this snapshot.
    pub fn w_chk_id(&self) -> u64 {
        ((self.app as u64) << 48) | (self.ckpt_id & 0xFFFF_FFFF_FFFF)
    }

    /// Total bytes written when persisting this snapshot.
    pub fn persisted_bytes(&self) -> u64 {
        self.state_bytes + self.user_data.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn w_chk_id_unique_per_app_and_id() {
        let a = Snapshot::new(0, 1, 4, [1, 2, 3, 4], 100);
        let b = Snapshot::new(1, 1, 4, [1, 2, 3, 4], 100);
        let c = Snapshot::new(0, 2, 8, [1, 2, 3, 4], 100);
        assert_ne!(a.w_chk_id(), b.w_chk_id());
        assert_ne!(a.w_chk_id(), c.w_chk_id());
    }

    #[test]
    fn persisted_bytes_includes_user_data() {
        let mut s = Snapshot::new(0, 1, 4, [0, 0, 0, 1], 1000);
        assert_eq!(s.persisted_bytes(), 1000);
        s.user_data = vec![0u8; 24];
        assert_eq!(s.persisted_bytes(), 1024);
    }

    #[test]
    fn serde_round_trip() {
        let s = Snapshot {
            app: 3,
            ckpt_id: 9,
            resume_step: 17,
            rng_state: [5, 6, 7, 8],
            state_bytes: 4096,
            user_data: vec![1, 2, 3],
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
