//! The durable (PFS) checkpoint tier: real bytes behind the in-memory
//! directory.
//!
//! The paper assumes "checkpoints can be stored through a centralized
//! parallel file system, assumed to be fault-free"; [`DurableTier`] is that
//! tier made concrete. It implements [`SnapshotSink`], journaling every
//! sealed snapshot (JSON-encoded) through a `logstore::LogStore` with an
//! immediate flush — a checkpoint the caller believes taken must survive the
//! very next crash, so there is no batching on this path. After a process
//! death, [`open`] replays the surviving records into snapshots and
//! [`DurableTier::load_into`] rebuilds the directory via
//! [`CheckpointStore::restore`] (no re-sealing: a snapshot torn on the media
//! still fails its integrity check and restore falls back to an older one).
//!
//! The checkpoint log is **never compacted**: watermarks are `w_chk_id =
//! (app << 48) | ckpt_id`, which is not monotonic across apps, and the
//! retention window is small anyway — bounded growth comes from the store's
//! own eviction keeping the replay set tiny.

use crate::snapshot::Snapshot;
use crate::store::{CheckpointStore, SnapshotSink};
use logstore::{LogConfig, LogStore, Media};
use std::io;

/// The file-backed checkpoint tier. One per checkpoint directory.
#[derive(Debug)]
pub struct DurableTier {
    log: LogStore,
    /// Reusable serialization scratch: persist encodes into this buffer
    /// instead of allocating a fresh `Vec` per snapshot.
    scratch: Vec<u8>,
}

/// Open the tier over `media`, recovering every intact snapshot record in
/// write order (oldest first — feed them to [`CheckpointStore::restore`] in
/// this order so retention keeps the newest).
pub fn open(media: Box<dyn Media>, cfg: LogConfig) -> io::Result<(DurableTier, Vec<Snapshot>)> {
    let log = LogStore::open(media, cfg)?;
    let mut snaps = Vec::new();
    for rec in log.read_all()? {
        // Records are CRC-clean by construction; a record that decodes to
        // garbage anyway (format drift) is dropped rather than trusted.
        if let Ok(snap) = serde_json::from_slice::<Snapshot>(&rec.payload) {
            snaps.push(snap);
        }
    }
    Ok((DurableTier { log, scratch: Vec::new() }, snaps))
}

impl DurableTier {
    /// A fresh tier over `media` (recovered snapshots discarded).
    pub fn new(media: Box<dyn Media>, cfg: LogConfig) -> io::Result<Self> {
        Ok(open(media, cfg)?.0)
    }

    /// Rebuild `store` from `snaps` (as returned by [`open`]).
    pub fn load_into(store: &mut CheckpointStore, snaps: Vec<Snapshot>) {
        for snap in snaps {
            store.restore(snap);
        }
    }

    /// Bytes physically flushed to the media so far.
    pub fn bytes_flushed(&self) -> u64 {
        self.log.bytes_flushed()
    }

    /// Records recovered by the opening scan.
    pub fn recovered_records(&self) -> u64 {
        self.log.recovered_records()
    }

    /// Did the opening scan find the log undamaged?
    pub fn was_clean(&self) -> bool {
        self.log.was_clean()
    }
}

impl SnapshotSink for DurableTier {
    fn persist(&mut self, snap: &Snapshot) -> io::Result<()> {
        self.scratch.clear();
        serde_json::to_writer(&mut self.scratch, snap)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        self.log.append(snap.w_chk_id(), &self.scratch)?;
        // A checkpoint is a commit point: flush regardless of policy.
        self.log.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logstore::MemMedia;

    fn snap(app: u32, id: u64, step: u32) -> Snapshot {
        Snapshot::new(app, id, step, [id, 2, 3, 4], 1000)
    }

    fn durable_store(mem: &MemMedia, retention: usize) -> CheckpointStore {
        let tier = DurableTier::new(Box::new(mem.clone()), LogConfig::default()).unwrap();
        let mut store = CheckpointStore::new(retention);
        store.attach_sink(Box::new(tier));
        store
    }

    #[test]
    fn saves_survive_full_process_death() {
        let mem = MemMedia::new();
        let mut store = durable_store(&mem, 3);
        store.save(snap(0, 1, 4));
        store.save(snap(0, 2, 8));
        store.save(snap(1, 1, 5));
        assert_eq!(store.sink_errors(), 0);
        drop(store); // process death; nothing graceful happens
        mem.crash();

        let (tier, snaps) = open(Box::new(mem.clone()), LogConfig::default()).unwrap();
        assert!(tier.was_clean());
        assert_eq!(snaps.len(), 3, "persist flushes per snapshot — all survive");
        let mut rebuilt = CheckpointStore::new(3);
        DurableTier::load_into(&mut rebuilt, snaps);
        assert_eq!(rebuilt.latest_valid(0).unwrap().resume_step, 8);
        assert_eq!(rebuilt.latest_valid(1).unwrap().resume_step, 5);
        assert_eq!(rebuilt.bytes_written(), 0, "restore never recharges I/O accounting");
    }

    #[test]
    fn reload_respects_retention_keeping_newest() {
        let mem = MemMedia::new();
        let mut store = durable_store(&mem, 2);
        for id in 1..=5 {
            store.save(snap(0, id, id as u32 * 4));
        }
        drop(store);
        let (_, snaps) = open(Box::new(mem.clone()), LogConfig::default()).unwrap();
        // The log holds all five (never compacted) …
        assert_eq!(snaps.len(), 5);
        // … but the rebuilt directory keeps only the retention window.
        let mut rebuilt = CheckpointStore::new(2);
        DurableTier::load_into(&mut rebuilt, snaps);
        assert_eq!(rebuilt.count(0), 2);
        assert_eq!(rebuilt.latest_valid(0).unwrap().ckpt_id, 5);
        assert!(rebuilt.get(0, 3).is_none());
    }

    #[test]
    fn torn_snapshot_on_media_is_detected_not_laundered() {
        let mem = MemMedia::new();
        // Persist one good and one content-corrupted snapshot directly
        // through the tier (as a torn PFS write would leave them).
        let mut tier = DurableTier::new(Box::new(mem.clone()), LogConfig::default()).unwrap();
        let mut good = snap(0, 1, 4);
        good.seal();
        tier.persist(&good).unwrap();
        let mut torn = snap(0, 2, 8);
        torn.seal();
        torn.state_bytes ^= 0xDEAD; // content changed after the seal
        tier.persist(&torn).unwrap();
        drop(tier);

        let (_, snaps) = open(Box::new(mem.clone()), LogConfig::default()).unwrap();
        let mut rebuilt = CheckpointStore::new(3);
        DurableTier::load_into(&mut rebuilt, snaps);
        assert_eq!(rebuilt.count(0), 2);
        assert!(!rebuilt.latest(0).unwrap().is_intact(), "restore must not re-seal");
        assert_eq!(rebuilt.latest_valid(0).unwrap().ckpt_id, 1, "falls back past the torn one");
        assert_eq!(rebuilt.torn_count(0), 1);
    }
}
