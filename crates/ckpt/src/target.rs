//! Storage-target cost models for checkpoint traffic.
//!
//! The decisive difference between the coordinated baseline and the paper's
//! uncoordinated scheme shows up here: under coordinated C/R *every*
//! component checkpoints (and after a failure, restores) through the shared
//! parallel file system at the same moment, so each gets `1/writers` of the
//! aggregate bandwidth; under uncoordinated C/R only the failed component
//! restores, at full bandwidth, while the others keep computing.

use serde::{Deserialize, Serialize};
use sim_core::time::SimTime;

/// A checkpoint storage target's timing model.
pub trait CkptTarget {
    /// Time for one writer to persist `bytes` while `concurrent_writers`
    /// total writers (including this one) stream to the target.
    fn write_time(&self, bytes: u64, concurrent_writers: usize) -> SimTime;

    /// Time for one reader to restore `bytes` with `concurrent_readers`
    /// total readers.
    fn read_time(&self, bytes: u64, concurrent_readers: usize) -> SimTime;

    /// Human-readable name for reports.
    fn label(&self) -> &'static str;
}

/// Centralized parallel file system with shared aggregate bandwidth.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PfsModel {
    /// Aggregate bandwidth, bytes/second (e.g. Cori's Lustre ~700 GB/s for
    /// the whole machine; per-job slices are far smaller).
    pub aggregate_bw: f64,
    /// Per-operation latency (metadata + open/close), seconds.
    pub latency_s: f64,
}

impl Default for PfsModel {
    fn default() -> Self {
        // A modest per-job PFS slice: 50 GB/s aggregate, 20 ms latency.
        PfsModel { aggregate_bw: 50e9, latency_s: 0.02 }
    }
}

impl CkptTarget for PfsModel {
    fn write_time(&self, bytes: u64, concurrent_writers: usize) -> SimTime {
        let w = concurrent_writers.max(1) as f64;
        SimTime::from_secs_f64(self.latency_s + bytes as f64 * w / self.aggregate_bw)
    }

    fn read_time(&self, bytes: u64, concurrent_readers: usize) -> SimTime {
        self.write_time(bytes, concurrent_readers)
    }

    fn label(&self) -> &'static str {
        "pfs"
    }
}

/// Node-local storage (NVRAM/SSD): no cross-writer contention.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NodeLocalModel {
    /// Per-node bandwidth, bytes/second.
    pub bw: f64,
    /// Per-operation latency, seconds.
    pub latency_s: f64,
}

impl Default for NodeLocalModel {
    fn default() -> Self {
        // NVMe-class: 3 GB/s, 0.5 ms.
        NodeLocalModel { bw: 3e9, latency_s: 0.0005 }
    }
}

impl CkptTarget for NodeLocalModel {
    fn write_time(&self, bytes: u64, _concurrent_writers: usize) -> SimTime {
        SimTime::from_secs_f64(self.latency_s + bytes as f64 / self.bw)
    }

    fn read_time(&self, bytes: u64, concurrent_readers: usize) -> SimTime {
        self.write_time(bytes, concurrent_readers)
    }

    fn label(&self) -> &'static str {
        "node-local"
    }
}

/// Two-level (SCR/FTI-style) checkpointing: blocking write to node-local,
/// asynchronous flush to the PFS. Restores read node-local when the copy
/// survived, PFS otherwise.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, Default)]
pub struct TwoLevelModel {
    /// Fast level.
    pub local: NodeLocalModel,
    /// Durable level.
    pub pfs: PfsModel,
}

impl TwoLevelModel {
    /// Restore time when the node-local copy is (or is not) available.
    pub fn restore_time(
        &self,
        bytes: u64,
        local_available: bool,
        concurrent_readers: usize,
    ) -> SimTime {
        if local_available {
            self.local.read_time(bytes, concurrent_readers)
        } else {
            self.pfs.read_time(bytes, concurrent_readers)
        }
    }
}

impl CkptTarget for TwoLevelModel {
    fn write_time(&self, bytes: u64, concurrent_writers: usize) -> SimTime {
        // Blocking cost is the local write; the PFS flush is asynchronous.
        self.local.write_time(bytes, concurrent_writers)
    }

    fn read_time(&self, bytes: u64, concurrent_readers: usize) -> SimTime {
        // Conservative default: assume the local copy was lost with the node.
        self.pfs.read_time(bytes, concurrent_readers)
    }

    fn label(&self) -> &'static str {
        "two-level"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pfs_contention_scales_linearly() {
        let pfs = PfsModel { aggregate_bw: 10e9, latency_s: 0.0 };
        let one = pfs.write_time(1 << 30, 1);
        let four = pfs.write_time(1 << 30, 4);
        let ratio = four.as_secs_f64() / one.as_secs_f64();
        assert!((ratio - 4.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn pfs_latency_floor() {
        let pfs = PfsModel { aggregate_bw: 10e9, latency_s: 0.02 };
        let t = pfs.write_time(0, 1);
        assert_eq!(t, SimTime::from_millis(20));
    }

    #[test]
    fn node_local_ignores_contention() {
        let nl = NodeLocalModel::default();
        assert_eq!(nl.write_time(1 << 20, 1), nl.write_time(1 << 20, 1000));
    }

    #[test]
    fn node_local_faster_than_pfs_under_contention() {
        let nl = NodeLocalModel::default();
        let pfs = PfsModel::default();
        let bytes = 4 << 30; // 4 GiB per writer
                             // Alone the PFS wins (50 GB/s vs 3 GB/s)...
        assert!(pfs.write_time(bytes, 1) < nl.write_time(bytes, 1));
        // ...but with 64 concurrent writers node-local wins.
        assert!(nl.write_time(bytes, 64) < pfs.write_time(bytes, 64));
    }

    #[test]
    fn two_level_blocking_cost_is_local() {
        let tl = TwoLevelModel::default();
        assert_eq!(tl.write_time(1 << 20, 8), tl.local.write_time(1 << 20, 8));
    }

    #[test]
    fn two_level_restore_path_selection() {
        let tl = TwoLevelModel::default();
        let bytes = 1 << 30;
        let local = tl.restore_time(bytes, true, 1);
        let remote = tl.restore_time(bytes, false, 64);
        assert!(remote > local);
        assert_eq!(local, tl.local.read_time(bytes, 1));
        assert_eq!(remote, tl.pfs.read_time(bytes, 64));
    }

    #[test]
    fn labels_stable() {
        assert_eq!(PfsModel::default().label(), "pfs");
        assert_eq!(NodeLocalModel::default().label(), "node-local");
        assert_eq!(TwoLevelModel::default().label(), "two-level");
    }
}
