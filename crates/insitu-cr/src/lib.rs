#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # insitu-cr — scalable crash consistency for staging-based in-situ workflows
//!
//! Umbrella crate for the reproduction of Duan & Parashar, *"Scalable Crash
//! Consistency for Staging-based In-situ Scientific Workflows"* (IPDPS
//! 2020). It re-exports every layer of the workspace so downstream users
//! depend on a single crate:
//!
//! | re-export | contents |
//! |-----------|----------|
//! | [`wfcr`] | **the paper's contribution** — data/event logging, queue-based replay, GC, the `workflow_check` / `workflow_restart` / `put_with_log` / `get_with_log` interface |
//! | [`staging`] | DataSpaces-like staging substrate (geometry, SFC distribution, versioned store, servers) |
//! | [`workflow`] | synthetic coupled workflows, protocol drivers (Ds/Co/Un/Hy/In), experiment configs |
//! | [`resilience`] | CoREC-like staged-data protection (Reed–Solomon, replication, rebuild) |
//! | [`ckpt`] | checkpoint snapshots + storage-target cost models |
//! | [`mpi_sim`] | communicators, ULFM-style recovery, collective cost models |
//! | [`net`] | simulated interconnect (discrete-event) + real-thread transport |
//! | [`sim_core`] | deterministic discrete-event engine |
//!
//! ## End-to-end in thirty lines
//!
//! The core guarantee — a rolled-back component re-observes exactly what its
//! original execution observed — at the backend level:
//!
//! ```
//! use insitu_cr::prelude::*;
//!
//! let mut staging = LoggingBackend::new();
//! staging.register_app(0); // simulation
//! staging.register_app(1); // analytics
//!
//! let bbox = BBox::d1(0, 63);
//! let mut observed = Vec::new();
//! for step in 1..=4u32 {
//!     staging.put(&PutRequest {
//!         app: 0,
//!         desc: ObjDesc { var: 0, version: step, bbox },
//!         payload: Payload::virtual_from(64, &[step as u64]),
//!         seq: 0,
//!         tctx: TraceCtx::NONE,
//!     });
//!     let (pieces, _) =
//!         staging.get(&GetRequest { app: 1, var: 0, version: step, bbox, seq: 0, tctx: TraceCtx::NONE });
//!     observed.push(pieces_digest(&pieces));
//! }
//!
//! // The analytics checkpoints through step 2, fails, and restarts:
//! staging.control(CtlRequest::Checkpoint { app: 1, upto_version: 2 });
//! staging.control(CtlRequest::Recovery { app: 1, resume_version: 2 });
//!
//! // Replayed reads of steps 3 and 4 are served the original data.
//! for step in 3..=4u32 {
//!     let (pieces, _) =
//!         staging.get(&GetRequest { app: 1, var: 0, version: step, bbox, seq: 0, tctx: TraceCtx::NONE });
//!     assert_eq!(pieces_digest(&pieces), observed[(step - 1) as usize]);
//! }
//! assert_eq!(staging.digest_mismatches(), 0);
//! ```
//!
//! ## Simulating a full workflow
//!
//! ```
//! use insitu_cr::prelude::*;
//!
//! // The Table II configuration under the paper's uncoordinated scheme,
//! // one random failure (MTBF 10 min), on the discrete-event engine:
//! let cfg = workflow::config::tiny(WorkflowProtocol::Uncoordinated);
//! let report = workflow::runner::run(&cfg);
//! assert_eq!(report.digest_mismatches, 0);
//! ```

pub use ckpt;
pub use mpi_sim;
pub use net;
pub use obs;
pub use resilience;
pub use sim_core;
pub use staging;
pub use wfcr;
pub use workflow;

/// The most commonly used items in one import.
pub mod prelude {
    pub use ckpt::{CheckpointStore, Snapshot};
    pub use obs::TraceCtx;
    pub use staging::dist::{Curve, Distribution};
    pub use staging::geometry::BBox;
    pub use staging::payload::Payload;
    pub use staging::proto::{
        CtlRequest, GetRequest, ObjDesc, PutRequest, PutStatus, VarId, Version,
    };
    pub use staging::service::{PlainBackend, ServerCosts, ServerLogic, StoreBackend};
    pub use wfcr::backend::{pieces_digest, LoggingBackend};
    pub use wfcr::iface::WorkflowClient;
    pub use wfcr::protocol::{FtScheme, WorkflowProtocol};
    pub use workflow::{self, RunReport, WorkflowConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_links_all_layers() {
        use crate::prelude::*;
        let rs = resilience::ReedSolomon::new(4, 2);
        assert_eq!(rs.data_shards(), 4);
        let b = LoggingBackend::new();
        assert_eq!(b.bytes_resident(), 0);
        let _ = WorkflowProtocol::all();
        let store = PlainBackend::new(2);
        assert_eq!(store.stale_gets(), 0);
    }
}
