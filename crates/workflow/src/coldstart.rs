//! Cold restart from disk: full staging process death and reconstruction.
//!
//! The DES runner simulates component failures while the staging area keeps
//! running; this module drives the complementary scenario the persistence
//! layer exists for — *every* process dies (servers, clients, checkpoint
//! directory) and the workflow is rebuilt purely from the durable media:
//!
//! 1. Each staging server's `wfcr` journal is scanned (`LogStore::open`
//!    truncates any torn tail), decoded, and replayed through
//!    [`wfcr::LoggingBackend::from_journal`] — store, event queues, GC marks
//!    and `W_Chk_ID` allocation all resume where the durable prefix ended.
//! 2. The checkpoint directory reloads from its own log via
//!    [`ckpt::durable::open`] without re-sealing (torn snapshots stay
//!    detectable).
//! 3. Fresh clients call `workflow_restart()` exactly as after an ordinary
//!    component failure, and the run resumes. Anything buffered past the
//!    last commit point was lost with the crash — and is re-executed
//!    deterministically, so final observations are byte-identical to an
//!    uninterrupted run.
//!
//! The harness runs real threads ([`staging::threaded`]) so the "kill" is a
//! genuine teardown of server threads, not a simulated event.

use ckpt::CheckpointStore;
use logstore::{FsMedia, LogConfig, LogStore, Media, MemMedia};
use parking_lot::Mutex;
use staging::dist::Distribution;
use staging::geometry::BBox;
use staging::payload::Payload;
use staging::proto::AppId;
use staging::service::{ServerCosts, ServerLogic};
use staging::threaded::{spawn_server, SyncClient};
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::Arc;
use wfcr::backend::{pieces_digest, LoggingBackend};
use wfcr::iface::WorkflowClient;

const SIM: AppId = 0;
const ANA: AppId = 1;
const DOMAIN: [u64; 3] = [16, 16, 16];
const BLOCK: [u64; 3] = [8, 8, 8];

/// Shape of a cold-restart experiment.
#[derive(Debug, Clone)]
pub struct ColdStartPlan {
    /// Staging server (thread) count.
    pub nservers: usize,
    /// Coupling steps in the full run.
    pub steps: u32,
    /// The whole workflow is killed right after this step completes.
    pub kill_after: u32,
    /// Both components checkpoint every this many steps.
    pub ckpt_period: u32,
    /// Journal/checkpoint log configuration (segment size, flush policy).
    pub log: LogConfig,
    /// Checkpoint retention per component.
    pub retention: usize,
}

impl Default for ColdStartPlan {
    fn default() -> Self {
        ColdStartPlan {
            nservers: 2,
            steps: 12,
            kill_after: 6,
            ckpt_period: 4,
            log: LogConfig::default(),
            retention: 3,
        }
    }
}

impl ColdStartPlan {
    fn validate(&self) {
        assert!(self.nservers >= 1);
        assert!(self.ckpt_period >= 1);
        assert!(
            self.kill_after >= self.ckpt_period && self.kill_after <= self.steps,
            "the kill must land after at least one checkpoint and inside the run"
        );
    }
}

/// Where the durable state lives; the provider outlives the "process death"
/// and is all the restart gets to see.
pub trait MediaProvider {
    /// Journal media for staging server `server`.
    fn journal_media(&self, server: usize) -> io::Result<Box<dyn Media>>;
    /// Media for the checkpoint directory's durable tier.
    fn ckpt_media(&self) -> io::Result<Box<dyn Media>>;
    /// Apply crash semantics at process death (drop unsynced bytes for
    /// in-memory media; a no-op for real files, where the page cache is
    /// assumed written back by `fsync` and survival of synced data is the
    /// contract under test).
    fn crash(&self);
}

/// Hermetic in-memory media with faithful fsync semantics: everything not
/// synced at kill time is gone.
#[derive(Debug)]
pub struct MemProvider {
    servers: Vec<MemMedia>,
    ckpt: MemMedia,
}

impl MemProvider {
    /// One independent medium per server plus one for checkpoints.
    pub fn new(nservers: usize) -> Self {
        MemProvider {
            servers: (0..nservers).map(|_| MemMedia::new()).collect(),
            ckpt: MemMedia::new(),
        }
    }

    /// The underlying per-server media (tests).
    pub fn server_media(&self, server: usize) -> &MemMedia {
        &self.servers[server]
    }
}

impl MediaProvider for MemProvider {
    fn journal_media(&self, server: usize) -> io::Result<Box<dyn Media>> {
        Ok(Box::new(self.servers[server].clone()))
    }

    fn ckpt_media(&self) -> io::Result<Box<dyn Media>> {
        Ok(Box::new(self.ckpt.clone()))
    }

    fn crash(&self) {
        for m in &self.servers {
            m.crash();
        }
        self.ckpt.crash();
    }
}

/// Real files under a root directory: `root/server{i}` per journal and
/// `root/ckpt` for the checkpoint tier.
#[derive(Debug)]
pub struct FsProvider {
    root: PathBuf,
}

impl FsProvider {
    /// Use (and create) `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        FsProvider { root: root.into() }
    }
}

impl MediaProvider for FsProvider {
    fn journal_media(&self, server: usize) -> io::Result<Box<dyn Media>> {
        Ok(Box::new(FsMedia::new(self.root.join(format!("server{server}")))?))
    }

    fn ckpt_media(&self) -> io::Result<Box<dyn Media>> {
        Ok(Box::new(FsMedia::new(self.root.join("ckpt"))?))
    }

    fn crash(&self) {}
}

/// What a cold-restart run measured.
#[derive(Debug, Clone)]
pub struct ColdStartOutcome {
    /// Digest of each step's observed pieces (consumer side), across both
    /// lives of the workflow.
    pub digests: BTreeMap<u32, u64>,
    /// Wall-clock rebuild time: journal scan through clients restarted,
    /// milliseconds.
    pub cold_restart_ms: f64,
    /// Journal entries recovered from disk across all servers.
    pub recovered_entries: u64,
    /// Snapshots recovered from the durable checkpoint tier.
    pub recovered_snapshots: u64,
    /// Step the producer resumed from.
    pub producer_resume: u32,
    /// Step the consumer resumed from.
    pub consumer_resume: u32,
    /// Bytes flushed by the second-life journals (post-restart activity).
    pub log_bytes_flushed: u64,
    /// Segments compacted by checkpoint-watermark compaction (both lives
    /// leave their mark in the media; this counts second-life deletions).
    pub segments_compacted: u64,
    /// Redundant re-puts absorbed during the resume.
    pub absorbed_puts: u64,
    /// Gets served from the replayed log during the resume.
    pub replayed_gets: u64,
    /// Replay digest mismatches (must be 0).
    pub digest_mismatches: u64,
}

/// Deterministic per-step data, shared by every phase so re-execution
/// reproduces payloads bit-for-bit.
fn field(version: u32) -> impl FnMut(&BBox) -> Payload {
    move |b: &BBox| {
        let data: Vec<u8> = (0..b.volume())
            .map(|i| (version as u64 * 131 + b.lb[0] * 7 + b.lb[2] + i) as u8)
            .collect();
        Payload::inline(data)
    }
}

struct Cluster {
    handles: Vec<std::thread::JoinHandle<ServerLogic<LoggingBackend>>>,
    producer: WorkflowClient,
    consumer: WorkflowClient,
    domain: BBox,
}

fn spawn_cluster(backends: Vec<LoggingBackend>, ckpts: Arc<Mutex<CheckpointStore>>) -> Cluster {
    let nservers = backends.len();
    let domain = BBox::whole(DOMAIN);
    let dist = Distribution::new(domain, BLOCK, nservers);
    let mut eps = net::threaded::ThreadedNet::mesh(nservers + 2);
    let mut client_eps = eps.split_off(nservers);
    let handles: Vec<_> = eps
        .into_iter()
        .zip(backends)
        .map(|(ep, b)| spawn_server(ep, ServerLogic::new(b, ServerCosts::default())))
        .collect();
    let consumer_ep = client_eps.pop().expect("consumer endpoint");
    let producer_ep = client_eps.pop().expect("producer endpoint");
    let producer = WorkflowClient::new(
        SyncClient::new(producer_ep, dist.clone(), (0..nservers).collect(), SIM),
        Arc::clone(&ckpts),
    );
    let consumer = WorkflowClient::new(
        SyncClient::new(consumer_ep, dist, (0..nservers).collect(), ANA),
        ckpts,
    );
    Cluster { handles, producer, consumer, domain }
}

/// Drive steps `from_p..` (producer) and `from_c..` (consumer) through `to`,
/// interleaved in version order. Checkpoints fire on the plan's period.
fn drive(
    c: &mut Cluster,
    plan: &ColdStartPlan,
    from_p: u32,
    from_c: u32,
    to: u32,
    digests: &mut BTreeMap<u32, u64>,
) {
    let domain = c.domain;
    for v in from_p.min(from_c)..=to {
        if v >= from_p {
            c.producer.put_with_log(0, v, &domain, field(v)).expect("put");
            if v % plan.ckpt_period == 0 {
                c.producer.workflow_check(v + 1, [v as u64, 1, 2, 3], 1 << 20).expect("sim ckpt");
            }
        }
        if v >= from_c {
            // The threaded server returns what is stored; poll until the
            // version lands (it already has, in this sequential driver, but
            // replayed reads may briefly race the recovery notification).
            let pieces = loop {
                match c.consumer.get_with_log(0, v, &domain) {
                    Ok(p) => break p,
                    Err(_) => std::thread::yield_now(),
                }
            };
            digests.insert(v, pieces_digest(&pieces));
            if v % plan.ckpt_period == 0 {
                c.consumer.workflow_check(v + 1, [v as u64, 4, 5, 6], 1 << 18).expect("ana ckpt");
            }
        }
    }
}

/// Shut the cluster down and hand back the server logics (the journal flush
/// at a *graceful* end; a crash teardown drops them unflushed instead).
fn teardown(c: Cluster) -> Vec<ServerLogic<LoggingBackend>> {
    c.consumer.shutdown_servers();
    c.handles.into_iter().map(|h| h.join().expect("server thread")).collect()
}

/// The ground truth: the same workflow with no kill, journals detached.
pub fn uninterrupted_digests(plan: &ColdStartPlan) -> BTreeMap<u32, u64> {
    plan.validate();
    let backends = (0..plan.nservers)
        .map(|_| {
            let mut b = LoggingBackend::new();
            b.register_app(SIM);
            b.register_app(ANA);
            b
        })
        .collect();
    let ckpts = Arc::new(Mutex::new(CheckpointStore::new(plan.retention)));
    let mut cluster = spawn_cluster(backends, ckpts);
    let mut digests = BTreeMap::new();
    drive(&mut cluster, plan, 1, 1, plan.steps, &mut digests);
    for logic in teardown(cluster) {
        assert_eq!(logic.backend().digest_mismatches(), 0);
    }
    digests
}

/// Run with durable journals, kill everything after `plan.kill_after`,
/// cold-restart from the media, and finish the run.
pub fn interrupted_run(
    plan: &ColdStartPlan,
    media: &dyn MediaProvider,
) -> io::Result<ColdStartOutcome> {
    plan.validate();
    let apps = [SIM, ANA];

    // ---- First life: journaled run up to the kill point. ----
    let backends = (0..plan.nservers)
        .map(|s| {
            let mut b = LoggingBackend::new();
            b.register_app(SIM);
            b.register_app(ANA);
            b.attach_journal(Box::new(LogStore::open(media.journal_media(s)?, plan.log)?));
            Ok(b)
        })
        .collect::<io::Result<Vec<_>>>()?;
    let mut ckpt_store = CheckpointStore::new(plan.retention);
    ckpt_store
        .attach_sink(Box::new(ckpt::durable::DurableTier::new(media.ckpt_media()?, plan.log)?));
    let ckpts = Arc::new(Mutex::new(ckpt_store));
    let mut cluster = spawn_cluster(backends, ckpts);
    let mut digests = BTreeMap::new();
    drive(&mut cluster, plan, 1, 1, plan.kill_after, &mut digests);

    // ---- Process death: tear the threads down WITHOUT flushing, then drop
    // every in-memory structure. Unsynced media bytes vanish.
    drop(teardown(cluster));
    media.crash();

    // ---- Cold restart, timed: rebuild every server and the checkpoint
    // directory purely from the surviving media.
    let t0 = std::time::Instant::now();
    let mut backends = Vec::with_capacity(plan.nservers);
    let mut recovered_entries = 0u64;
    for s in 0..plan.nservers {
        let log = LogStore::open(media.journal_media(s)?, plan.log)?;
        let entries = wfcr::journal::decode_records(&log.read_all()?);
        recovered_entries += entries.len() as u64;
        let mut b = LoggingBackend::from_journal(entries, &apps);
        // The reopened log continues the same sequence stream.
        b.attach_journal(Box::new(log));
        backends.push(b);
    }
    let (tier, snaps) = ckpt::durable::open(media.ckpt_media()?, plan.log)?;
    let recovered_snapshots = snaps.len() as u64;
    let mut ckpt_store = CheckpointStore::new(plan.retention);
    ckpt::durable::DurableTier::load_into(&mut ckpt_store, snaps);
    ckpt_store.attach_sink(Box::new(tier));
    let ckpts = Arc::new(Mutex::new(ckpt_store));
    let mut cluster = spawn_cluster(backends, ckpts);
    // `workflow_restart()` exactly as after an ordinary component failure:
    // restore the snapshot, notify staging, enter replay.
    let psnap = cluster.producer.workflow_restart().expect("producer restart");
    let csnap = cluster.consumer.workflow_restart().expect("consumer restart");
    let cold_restart_ms = t0.elapsed().as_secs_f64() * 1e3;

    // ---- Second life: resume to the end. Repeated versions are absorbed
    // (producer) or replay-served (consumer), so `digests` entries for
    // replayed steps are overwritten — equivalence demands they not change.
    drive(&mut cluster, plan, psnap.resume_step, csnap.resume_step, plan.steps, &mut digests);

    let mut outcome = ColdStartOutcome {
        digests,
        cold_restart_ms,
        recovered_entries,
        recovered_snapshots,
        producer_resume: psnap.resume_step,
        consumer_resume: csnap.resume_step,
        log_bytes_flushed: 0,
        segments_compacted: 0,
        absorbed_puts: 0,
        replayed_gets: 0,
        digest_mismatches: 0,
    };
    for mut logic in teardown(cluster) {
        let b = logic.backend_mut();
        b.flush_journal();
        outcome.log_bytes_flushed += b.journal_bytes_flushed();
        outcome.segments_compacted += b.journal_segments_compacted();
        outcome.absorbed_puts += b.absorbed_puts();
        outcome.replayed_gets += b.replayed_gets();
        outcome.digest_mismatches += b.digest_mismatches();
        assert_eq!(b.journal_errors(), 0, "journal I/O must stay clean");
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_cold_restart_is_equivalent_to_uninterrupted() {
        let plan = ColdStartPlan::default();
        let media = MemProvider::new(plan.nservers);
        let out = interrupted_run(&plan, &media).expect("interrupted run");
        assert_eq!(out.digest_mismatches, 0);
        assert!(out.recovered_entries > 0, "the journal must not come back empty");
        assert!(out.recovered_snapshots > 0, "checkpoints must survive the crash");
        assert!(out.cold_restart_ms >= 0.0);
        assert_eq!(out.producer_resume, 5, "kill at 6 with period 4 resumes at 5");
        let truth = uninterrupted_digests(&plan);
        assert_eq!(out.digests, truth, "cold restart must reproduce the run byte-for-byte");
    }

    #[test]
    fn kill_validation_rejects_pre_checkpoint_kills() {
        let plan = ColdStartPlan { kill_after: 2, ckpt_period: 4, ..Default::default() };
        let media = MemProvider::new(plan.nservers);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = interrupted_run(&plan, &media);
        }));
        assert!(err.is_err(), "a kill before the first checkpoint has nothing to restart from");
    }
}
