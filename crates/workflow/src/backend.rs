//! Runtime backend selection: plain staging (Ds/Co/In) vs. logging staging
//! (Un/Hy), behind one concrete type so the server actor stays monomorphic.

use staging::proto::{CtlRequest, CtlResponse, GetPiece, GetRequest, PutRequest, PutStatus};
use staging::service::{OpStats, PlainBackend, StoreBackend};
use wfcr::backend::LoggingBackend;
use wfcr::protocol::WorkflowProtocol;

/// Either staging backend, chosen by protocol.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one long-lived instance per server actor
pub enum AnyBackend {
    /// Baseline staging (bounded version retention, no logging).
    Plain(PlainBackend),
    /// Crash-consistency logging staging.
    Logging(LoggingBackend),
}

impl AnyBackend {
    /// Build the backend a protocol requires. `apps` pre-registers the
    /// workflow components with the logging backend's GC.
    pub fn for_protocol(
        protocol: WorkflowProtocol,
        plain_max_versions: usize,
        apps: &[u32],
    ) -> AnyBackend {
        Self::for_protocol_with_gc(protocol, plain_max_versions, apps, true)
    }

    /// As [`AnyBackend::for_protocol`], with explicit GC control (the GC
    /// ablation disables collection to expose unbounded log growth).
    pub fn for_protocol_with_gc(
        protocol: WorkflowProtocol,
        plain_max_versions: usize,
        apps: &[u32],
        gc_enabled: bool,
    ) -> AnyBackend {
        if protocol.uses_logging() {
            let mut b = LoggingBackend::new();
            for &a in apps {
                b.register_app(a);
            }
            b.set_gc_enabled(gc_enabled);
            AnyBackend::Logging(b)
        } else {
            AnyBackend::Plain(PlainBackend::new(plain_max_versions))
        }
    }

    /// The logging backend, if that is what this is.
    pub fn as_logging(&self) -> Option<&LoggingBackend> {
        match self {
            AnyBackend::Logging(b) => Some(b),
            AnyBackend::Plain(_) => None,
        }
    }

    /// The logging backend, mutably (cold-restart wiring and journal
    /// harvest).
    pub fn as_logging_mut(&mut self) -> Option<&mut LoggingBackend> {
        match self {
            AnyBackend::Logging(b) => Some(b),
            AnyBackend::Plain(_) => None,
        }
    }

    /// The plain backend, if that is what this is.
    pub fn as_plain(&self) -> Option<&PlainBackend> {
        match self {
            AnyBackend::Plain(b) => Some(b),
            AnyBackend::Logging(_) => None,
        }
    }

    /// Attach a durable journal sink to whichever backend this is.
    pub fn attach_journal(&mut self, sink: Box<dyn logstore::Journal>) {
        match self {
            AnyBackend::Plain(b) => b.attach_journal(sink),
            AnyBackend::Logging(b) => b.attach_journal(sink),
        }
    }

    /// Attach a durable journal sink with an explicit coalescing window
    /// (entries reach the log as batched group commits of this many records).
    pub fn attach_journal_coalesced(&mut self, sink: Box<dyn logstore::Journal>, coalesce: usize) {
        match self {
            AnyBackend::Plain(b) => b.attach_journal_coalesced(sink, coalesce),
            AnyBackend::Logging(b) => b.attach_journal_coalesced(sink, coalesce),
        }
    }

    /// Force the journal's buffered tail down (graceful shutdown / harvest).
    pub fn flush_journal(&mut self) {
        match self {
            AnyBackend::Plain(b) => b.flush_journal(),
            AnyBackend::Logging(b) => b.flush_journal(),
        }
    }

    /// Bytes the journal has physically flushed (0 when detached).
    pub fn journal_bytes_flushed(&self) -> u64 {
        match self {
            AnyBackend::Plain(b) => b.journal_bytes_flushed(),
            AnyBackend::Logging(b) => b.journal_bytes_flushed(),
        }
    }

    /// Journal segment files compacted away (0 when detached).
    pub fn journal_segments_compacted(&self) -> u64 {
        match self {
            AnyBackend::Plain(b) => b.journal_segments_compacted(),
            AnyBackend::Logging(b) => b.journal_segments_compacted(),
        }
    }

    /// Journal I/O errors swallowed (durability degraded, never state).
    pub fn journal_errors(&self) -> u64 {
        match self {
            AnyBackend::Plain(b) => b.journal_errors(),
            AnyBackend::Logging(b) => b.journal_errors(),
        }
    }

    /// Journal group commits — multi-record fsyncs (0 when detached).
    pub fn journal_group_commits(&self) -> u64 {
        match self {
            AnyBackend::Plain(b) => b.journal_group_commits(),
            AnyBackend::Logging(b) => b.journal_group_commits(),
        }
    }

    /// Journal records delivered through batched hand-offs (0 when detached).
    pub fn journal_records_batched(&self) -> u64 {
        match self {
            AnyBackend::Plain(b) => b.journal_records_batched(),
            AnyBackend::Logging(b) => b.journal_records_batched(),
        }
    }

    /// Gets served a version other than the requested one (plain backend
    /// only; the logging backend never serves unverified stale data).
    pub fn stale_gets(&self) -> u64 {
        match self {
            AnyBackend::Plain(b) => b.stale_gets(),
            AnyBackend::Logging(_) => 0,
        }
    }
}

impl StoreBackend for AnyBackend {
    fn put(&mut self, req: &PutRequest) -> (PutStatus, OpStats) {
        match self {
            AnyBackend::Plain(b) => b.put(req),
            AnyBackend::Logging(b) => b.put(req),
        }
    }

    fn get(&mut self, req: &GetRequest) -> (Vec<GetPiece>, OpStats) {
        match self {
            AnyBackend::Plain(b) => b.get(req),
            AnyBackend::Logging(b) => b.get(req),
        }
    }

    fn control(&mut self, req: CtlRequest) -> (CtlResponse, OpStats) {
        match self {
            AnyBackend::Plain(b) => b.control(req),
            AnyBackend::Logging(b) => b.control(req),
        }
    }

    fn get_ready(&self, req: &GetRequest) -> bool {
        match self {
            AnyBackend::Plain(b) => b.get_ready(req),
            AnyBackend::Logging(b) => b.get_ready(req),
        }
    }

    fn bytes_resident(&self) -> u64 {
        match self {
            AnyBackend::Plain(b) => b.bytes_resident(),
            AnyBackend::Logging(b) => b.bytes_resident(),
        }
    }

    fn journal_bytes_flushed(&self) -> u64 {
        AnyBackend::journal_bytes_flushed(self)
    }

    fn journal_segments_compacted(&self) -> u64 {
        AnyBackend::journal_segments_compacted(self)
    }

    fn journal_group_commits(&self) -> u64 {
        AnyBackend::journal_group_commits(self)
    }

    fn journal_records_batched(&self) -> u64 {
        AnyBackend::journal_records_batched(self)
    }

    fn live_log_events(&self) -> u64 {
        match self {
            AnyBackend::Plain(b) => b.live_log_events(),
            AnyBackend::Logging(b) => b.live_log_events(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_selection_by_protocol() {
        for p in WorkflowProtocol::all() {
            let b = AnyBackend::for_protocol(p, 2, &[0, 1]);
            match (p.uses_logging(), &b) {
                (true, AnyBackend::Logging(_)) => {}
                (false, AnyBackend::Plain(_)) => {}
                _ => panic!("wrong backend for {p:?}"),
            }
        }
    }

    #[test]
    fn accessors() {
        let p = AnyBackend::for_protocol(WorkflowProtocol::Coordinated, 2, &[]);
        assert!(p.as_plain().is_some());
        assert!(p.as_logging().is_none());
        let l = AnyBackend::for_protocol(WorkflowProtocol::Uncoordinated, 2, &[0]);
        assert!(l.as_logging().is_some());
        assert!(l.as_plain().is_none());
    }

    #[test]
    fn delegation_works() {
        use staging::geometry::BBox;
        use staging::payload::Payload;
        use staging::proto::ObjDesc;
        let mut b = AnyBackend::for_protocol(WorkflowProtocol::Uncoordinated, 2, &[0]);
        let req = PutRequest {
            app: 0,
            desc: ObjDesc { var: 0, version: 1, bbox: BBox::d1(0, 9) },
            payload: Payload::virtual_from(10, &[1]),
            seq: 0,
            tctx: obs::TraceCtx::NONE,
        };
        let (status, stats) = b.put(&req);
        assert_eq!(status, PutStatus::Stored);
        assert_eq!(stats.log_events, 1, "logging backend logs");
        assert!(b.bytes_resident() > 0);
    }
}
