//! Virtual-time telemetry scraper: turns the cumulative metrics registry
//! into a byte-deterministic windowed time series.
//!
//! A [`TelemetryActor`] ticks itself every [`crate::config::TelemetryCfg`]
//! window of *virtual* time. Each tick scrapes the engine's metrics
//! registry — counters, gauges, and the exact tail histograms — into a
//! [`telemetry::SeriesBuilder`], which diffs cumulative state into
//! per-window activity. Because the tick instants, the registry contents,
//! and the scrape order (name-ordered `BTreeMap` iteration) are all
//! functions of the seed, the same seed always yields the same series,
//! byte for byte.
//!
//! When the config carries SLO objectives, a [`telemetry::SloEval`] steps
//! on every closed window; burn-rate breaches are emitted as `slo.breach`
//! instants into the obs trace at the window-close timestamp, so a breach
//! sits causally among the puts and faults that caused it.
//!
//! The actor is observational only: it never touches the RNG, sends
//! nothing to other actors, and stops rescheduling once the engine is
//! stopping, so a telemetry-on run produces the same simulated outcome as
//! the same run without telemetry (only the dispatch count differs — the
//! ticks themselves are events).

use crate::config::TelemetryCfg;
use sim_core::engine::{Actor, Ctx, Event};
use sim_core::metrics::Metrics;
use sim_core::time::SimTime;
use telemetry::{Series, SeriesBuilder, SloEval, SloReport};

/// The scraper's self-rescheduling tick.
pub struct Tick;

/// The scraper actor. Register it last so the component/server actor-id
/// layout other subsystems depend on is untouched.
pub struct TelemetryActor {
    window: SimTime,
    builder: Option<SeriesBuilder>,
    slo: Option<SloEval>,
    tracer: obs::Tracer,
}

impl TelemetryActor {
    /// Scraper for `cfg` (validated upstream).
    pub fn new(cfg: &TelemetryCfg) -> TelemetryActor {
        TelemetryActor {
            window: cfg.window,
            builder: Some(SeriesBuilder::new(cfg.window.0.max(1))),
            slo: cfg.slo.as_ref().map(|s| SloEval::new(s.clone())),
            tracer: obs::Tracer::off(),
        }
    }

    /// Attach the run's shared trace recorder.
    pub fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.tracer = tracer;
    }

    /// Scrape the cumulative registry into one closed window ending at
    /// `end_ns`.
    fn scrape(builder: &mut SeriesBuilder, end_ns: u64, m: &Metrics) {
        builder.begin_window(end_ns);
        for (name, v) in m.counters() {
            builder.feed_counter(name, v);
        }
        for (name, g) in m.gauges() {
            builder.feed_gauge(name, g.value);
        }
        for (name, h) in m.tails() {
            builder.feed_hist(name, h);
        }
        builder.close_window();
    }

    /// Step the SLO evaluator on the most recent window and emit any
    /// burn-rate breaches as trace instants stamped `(t, seq)`.
    fn step_slo(&mut self, t: u64, seq: u64) {
        let (Some(ev), Some(w)) =
            (&mut self.slo, self.builder.as_ref().and_then(|b| b.last_window()))
        else {
            return;
        };
        let fired = ev.step(w);
        if fired.is_empty() || !self.tracer.enabled() {
            return;
        }
        let track = self.tracer.track("telemetry");
        for b in fired {
            self.tracer.instant(
                obs::TraceCtx::NONE,
                track,
                "slo.breach",
                t,
                seq,
                vec![
                    obs::arg("objective", &b.objective),
                    obs::arg("burn", format!("{:.3}", b.burn_rate)),
                ],
            );
        }
    }

    /// Flush the final (usually partial) window at `end_ns` and hand back
    /// the finished series plus the SLO outcome. Called once from harvest.
    pub fn harvest(&mut self, end_ns: u64, seq: u64, m: &Metrics) -> (Series, Option<SloReport>) {
        let mut builder = self.builder.take().expect("telemetry harvested once");
        let needs_final = builder.last_window().is_none_or(|w| w.end_ns < end_ns);
        if needs_final {
            Self::scrape(&mut builder, end_ns, m);
            self.builder = Some(builder);
            self.step_slo(end_ns, seq);
            builder = self.builder.take().expect("builder restored");
        }
        (builder.finish(), self.slo.take().map(SloEval::finish))
    }
}

impl Actor for TelemetryActor {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        if !ev.is::<Tick>() {
            return;
        }
        let end_ns = ctx.now().0;
        let seq = ctx.seq();
        if let Some(builder) = self.builder.as_mut() {
            Self::scrape(builder, end_ns, ctx.metrics());
            self.step_slo(end_ns, seq);
        }
        if !ctx.stopping() {
            ctx.timer(self.window, Tick);
        }
    }

    fn name(&self) -> &str {
        "telemetry-scraper"
    }
}
