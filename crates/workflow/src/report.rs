//! Run results: exactly the quantities the paper's figures plot.

use serde::{Deserialize, Serialize};
use sim_core::metrics::MetricsSnapshot;
use wfcr::protocol::WorkflowProtocol;

/// Aggregated outcome of one workflow run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Configuration label.
    pub label: String,
    /// Protocol run.
    pub protocol: WorkflowProtocol,
    /// Total workflow execution time, seconds (time of the last component
    /// finishing) — Figure 9(e) / Figure 10's y-axis.
    pub total_time_s: f64,
    /// Per-component finish times `(app, seconds)`.
    pub finish_times_s: Vec<(u32, f64)>,
    /// Put requests acked.
    pub puts: u64,
    /// Get requests answered.
    pub gets: u64,
    /// Sum of put response times, seconds — Figure 9(a)/(b)'s
    /// "cumulative data write response time".
    pub cumulative_put_response_s: f64,
    /// Mean put response time, seconds.
    pub mean_put_response_s: f64,
    /// Streaming p99 of put response time, seconds (0 when no puts).
    pub p99_put_response_s: f64,
    /// Peak staging memory across servers (sum of per-server peaks), bytes —
    /// Figure 9(c)/(d)'s "memory usage". After merging threaded per-shard
    /// registries this is the provable *lower* bound on the combined peak.
    pub staging_peak_bytes: u64,
    /// Upper bound on the combined peak after merges (sum of part peaks);
    /// equals [`RunReport::staging_peak_bytes`] for single-registry runs.
    /// `summary()` prints `peak..peak_upper` when the bounds diverge.
    #[serde(default)]
    pub staging_peak_upper_bytes: u64,
    /// Staging memory at the end of the run.
    pub staging_final_bytes: u64,
    /// Checkpoints taken (component-level).
    pub ckpts: u64,
    /// Rollback recoveries performed.
    pub recoveries: u64,
    /// Replication fail-overs absorbed.
    pub failovers: u64,
    /// Time steps re-executed due to rollbacks.
    pub rollback_steps: u64,
    /// Redundant replay puts absorbed by the log.
    pub absorbed_puts: u64,
    /// Gets served from the log at a historical version.
    pub replayed_gets: u64,
    /// Replay digest mismatches (must be 0 for deterministic components).
    pub digest_mismatches: u64,
    /// Gets served a version other than the one requested (nonzero only
    /// under non-logging protocols — quantifies In's inconsistency).
    pub stale_gets: u64,
    /// Bytes reclaimed by log garbage collection.
    pub gc_reclaimed_bytes: u64,
    /// Staging-server failures survived via resilience rebuilds.
    pub staging_rebuilds: u64,
    /// Proactive (predictor-triggered) checkpoints taken.
    pub proactive_ckpts: u64,
    /// Steps executed including re-execution (all components).
    pub steps_executed: u64,
    /// Total time spent in ULFM repair across recoveries, seconds.
    pub recovery_ulfm_s: f64,
    /// Total time spent restoring checkpoints (incl. staging-client
    /// reconnection) across recoveries, seconds.
    pub recovery_restore_s: f64,
    /// Total coordinated-rollback orchestration time (Co only), seconds.
    pub co_rollback_s: f64,
    /// Total messages through the interconnect.
    pub net_msgs: u64,
    /// Total bytes through the interconnect.
    pub net_bytes: u64,
    /// Component-level retransmissions issued while riding out injected
    /// network faults (0 in fault-free runs).
    pub net_retries: u64,
    /// Transient staging-server stall windows served through.
    pub server_stalls: u64,
    /// Discrete events dispatched (simulation diagnostics).
    pub events_dispatched: u64,
    /// Bytes physically flushed by the durable staging journals (0 when
    /// durability is off).
    #[serde(default)]
    pub log_bytes_flushed: u64,
    /// Journal segment files deleted by checkpoint-watermark compaction.
    #[serde(default)]
    pub segments_compacted: u64,
    /// Journal group commits: fsyncs that made two or more records durable
    /// at once (0 when durability is off or nothing batched).
    #[serde(default)]
    pub journal_group_commits: u64,
    /// Journal records that reached the log through batched coalesced
    /// hand-offs rather than per-record appends.
    #[serde(default)]
    pub journal_records_batched: u64,
    /// Restart grants issued by the supervisor, including staging-server
    /// rebuilds and replica failovers it accounted as outages (0 in
    /// unsupervised runs).
    #[serde(default)]
    pub restarts: u64,
    /// Poison inputs quarantined to the dead-letter queue.
    #[serde(default)]
    pub quarantined: u64,
    /// Mean time to repair across supervised outages, seconds (death of a
    /// domain → resumed execution; consecutive deaths extend one outage).
    #[serde(default)]
    pub mttr_mean_s: f64,
    /// Longest single supervised outage, seconds.
    #[serde(default)]
    pub mttr_max_s: f64,
    /// Wall-clock time of the cold-restart rebuild (journal scan + state
    /// reconstruction), milliseconds. 0 for runs without a cold restart.
    #[serde(default)]
    pub cold_restart_ms: f64,
    /// Shard count of the partitioned data plane (0 = unsharded run).
    #[serde(default)]
    pub shards: u64,
    /// Partition-map rebalances that cut over mid-run.
    #[serde(default)]
    pub rebalances: u64,
    /// Puts served per shard, shard order (empty in unsharded runs).
    #[serde(default)]
    pub shard_puts: Vec<u64>,
    /// Log-replayed gets per shard, shard order (empty in unsharded runs).
    #[serde(default)]
    pub shard_replays: Vec<u64>,
    /// Schedules explored by the model-checker runner mode
    /// ([`crate::mcheck_mode::explore`]); 0 for plain runs.
    #[serde(default)]
    pub schedules_explored: u64,
    /// Exploration runs cut by state-hash pruning; 0 for plain runs.
    #[serde(default)]
    pub states_pruned: u64,
    /// Full metrics-registry snapshot at harvest time: every counter, gauge
    /// (with both `peak` and `peak_upper` bounds), and stream the run touched,
    /// in name order. `None` in reports deserialized from older runs.
    #[serde(default)]
    pub metrics: Option<MetricsSnapshot>,
    /// Deterministic windowed time series (telemetry-on runs only): queue
    /// depths, put latency histograms, journal flush bytes, MTTR — per
    /// scrape window, byte-identical across same-seed runs.
    #[serde(default)]
    pub series: Option<telemetry::Series>,
    /// SLO evaluation outcome (telemetry-on runs with objectives only).
    #[serde(default)]
    pub slo: Option<telemetry::SloReport>,
}

impl RunReport {
    /// Percentage change of total time vs. a baseline report:
    /// negative = this run was faster.
    pub fn time_delta_pct(&self, base: &RunReport) -> f64 {
        (self.total_time_s - base.total_time_s) / base.total_time_s * 100.0
    }

    /// Percentage increase of peak staging memory vs. a baseline.
    pub fn memory_delta_pct(&self, base: &RunReport) -> f64 {
        (self.staging_peak_bytes as f64 - base.staging_peak_bytes as f64)
            / base.staging_peak_bytes as f64
            * 100.0
    }

    /// Percentage increase of cumulative write response time vs. a baseline.
    pub fn write_response_delta_pct(&self, base: &RunReport) -> f64 {
        (self.cumulative_put_response_s - base.cumulative_put_response_s)
            / base.cumulative_put_response_s
            * 100.0
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        let mib = |b: u64| b as f64 / (1 << 20) as f64;
        // Merged gauges only bound the combined high-water mark; an honest
        // summary shows the interval instead of silently picking a side.
        let peak_mem = if self.staging_peak_upper_bytes > self.staging_peak_bytes {
            format!(
                "{:.1}..{:.1}MiB",
                mib(self.staging_peak_bytes),
                mib(self.staging_peak_upper_bytes)
            )
        } else {
            format!("{:.1}MiB", mib(self.staging_peak_bytes))
        };
        let mut s = format!(
            "{:<28} {:>4} total={:>9.2}s puts={} cumW={:.3}s peakMem={peak_mem} ckpts={} rec={} replay(g={},p={}) mism={} retries={} stalls={} stale={}",
            self.label,
            self.protocol.label(),
            self.total_time_s,
            self.puts,
            self.cumulative_put_response_s,
            self.ckpts,
            self.recoveries,
            self.replayed_gets,
            self.absorbed_puts,
            self.digest_mismatches,
            self.net_retries,
            self.server_stalls,
            self.stale_gets,
        );
        if self.journal_group_commits > 0 || self.journal_records_batched > 0 {
            s.push_str(&format!(
                " gc={} batch={}",
                self.journal_group_commits, self.journal_records_batched
            ));
        }
        if self.restarts > 0 || self.quarantined > 0 {
            s.push_str(&format!(
                " rst={} quar={} mttr={:.3}s/max={:.3}s",
                self.restarts, self.quarantined, self.mttr_mean_s, self.mttr_max_s
            ));
        }
        if self.shards > 0 {
            s.push_str(&format!(" shards={} rebal={}", self.shards, self.rebalances));
        }
        if let Some(series) = &self.series {
            s.push_str(&format!(" windows={}", series.windows.len()));
        }
        if let Some(slo) = &self.slo {
            if slo.ok() {
                s.push_str(" slo=ok");
            } else {
                s.push_str(&format!(" slo=BREACH({})", slo.breaches().len()));
            }
        }
        s
    }

    /// The whole report as one JSON line (no trailing newline) — the format
    /// examples append to result files and `wf-trace` reads back.
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(self).expect("RunReport serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total: f64, mem: u64, cum: f64) -> RunReport {
        RunReport {
            label: "t".into(),
            protocol: WorkflowProtocol::Uncoordinated,
            total_time_s: total,
            finish_times_s: vec![],
            puts: 0,
            gets: 0,
            cumulative_put_response_s: cum,
            mean_put_response_s: 0.0,
            p99_put_response_s: 0.0,
            staging_peak_bytes: mem,
            staging_peak_upper_bytes: mem,
            staging_final_bytes: 0,
            ckpts: 0,
            recoveries: 0,
            failovers: 0,
            rollback_steps: 0,
            absorbed_puts: 0,
            replayed_gets: 0,
            digest_mismatches: 0,
            stale_gets: 0,
            gc_reclaimed_bytes: 0,
            staging_rebuilds: 0,
            proactive_ckpts: 0,
            steps_executed: 0,
            recovery_ulfm_s: 0.0,
            recovery_restore_s: 0.0,
            co_rollback_s: 0.0,
            net_msgs: 0,
            net_bytes: 0,
            net_retries: 0,
            server_stalls: 0,
            events_dispatched: 0,
            log_bytes_flushed: 0,
            segments_compacted: 0,
            journal_group_commits: 0,
            journal_records_batched: 0,
            restarts: 0,
            quarantined: 0,
            mttr_mean_s: 0.0,
            mttr_max_s: 0.0,
            cold_restart_ms: 0.0,
            shards: 0,
            rebalances: 0,
            shard_puts: vec![],
            shard_replays: vec![],
            schedules_explored: 0,
            states_pruned: 0,
            metrics: None,
            series: None,
            slo: None,
        }
    }

    #[test]
    fn summary_prints_peak_interval_when_merge_bounds_diverge() {
        let exact = report(1.0, 2 << 20, 1.0);
        assert!(exact.summary().contains("peakMem=2.0MiB"), "{}", exact.summary());
        let mut merged = report(1.0, 2 << 20, 1.0);
        merged.staging_peak_upper_bytes = 3 << 20;
        let s = merged.summary();
        assert!(s.contains("peakMem=2.0..3.0MiB"), "diverged bounds surface: {s}");
    }

    #[test]
    fn deltas() {
        let base = report(100.0, 1000, 10.0);
        let faster = report(90.0, 1840, 11.2);
        assert!((faster.time_delta_pct(&base) + 10.0).abs() < 1e-9);
        assert!((faster.memory_delta_pct(&base) - 84.0).abs() < 1e-9);
        assert!((faster.write_response_delta_pct(&base) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn summary_contains_label() {
        let r = report(1.0, 1, 1.0);
        assert!(r.summary().contains("Un"));
    }

    #[test]
    fn summary_surfaces_journal_and_supervision_counters_when_nonzero() {
        let plain = report(1.0, 1, 1.0);
        assert!(!plain.summary().contains("gc="), "zero counters stay out of the line");
        assert!(!plain.summary().contains("rst="));
        let mut r = report(1.0, 1, 1.0);
        r.journal_group_commits = 4;
        r.journal_records_batched = 17;
        r.restarts = 3;
        r.quarantined = 1;
        r.mttr_mean_s = 0.25;
        r.mttr_max_s = 0.5;
        let s = r.summary();
        assert!(s.contains("gc=4 batch=17"), "journal counters surface: {s}");
        assert!(s.contains("rst=3 quar=1 mttr=0.250s/max=0.500s"), "supervision: {s}");
        // And the JSON line round-trips them.
        let back: RunReport = serde_json::from_str(&r.to_json_line()).unwrap();
        assert_eq!(back.restarts, 3);
        assert_eq!(back.quarantined, 1);
        assert_eq!(back.journal_group_commits, 4);
    }

    #[test]
    fn summary_surfaces_shard_fields_when_sharded() {
        let plain = report(1.0, 1, 1.0);
        assert!(!plain.summary().contains("shards="), "unsharded runs stay quiet");
        let mut r = report(1.0, 1, 1.0);
        r.shards = 4;
        r.rebalances = 1;
        r.shard_puts = vec![24, 24, 24, 24];
        r.shard_replays = vec![0, 8, 0, 0];
        let s = r.summary();
        assert!(s.contains("shards=4 rebal=1"), "shard segment surfaces: {s}");
        let back: RunReport = serde_json::from_str(&r.to_json_line()).unwrap();
        assert_eq!(back.shards, 4);
        assert_eq!(back.shard_puts, vec![24, 24, 24, 24]);
        assert_eq!(back.shard_replays, vec![0, 8, 0, 0]);
    }
}
