//! The application-component actor: compute → couple (put/get) → checkpoint,
//! plus the full failure/recovery state machine.
//!
//! One actor models one application component (all its ranks): per-rank
//! detail that matters for the paper's metrics — aggregate data volume,
//! collective costs scaling with rank count, checkpoint state size — is
//! carried in the cost models; per-rank detail that does not (individual
//! compute jitter) is folded into one jittered compute phase per step.
//!
//! ## Normal cycle (per time step)
//!
//! 1. `Computing` — a timer models the solver/analysis kernel;
//! 2. `IoWait` — producers scatter block puts to the staging servers,
//!    consumers issue (blocking) gets; the actor waits for every ack;
//! 3. checkpoint boundary? Under Un/Hy/In the component checkpoints on its
//!    own period (PFS write, then `workflow_check` notification under
//!    logging protocols); under Co it rendezvouses with every other
//!    component through the [`crate::director::Director`], paying barriers
//!    and contended PFS writes;
//! 4. next step.
//!
//! ## Failure handling
//!
//! * C/R component under Un/Hy/In: ULFM repair → contended-free PFS restore
//!   → `workflow_restart` notification (logging only) → re-execution from
//!   the checkpoint, with staging absorbing re-puts / replaying gets;
//! * replicated component under Hy: a fail-over pause, no rollback;
//! * any component under Co: reports to the director, which orchestrates the
//!   global rollback (see `director.rs`).
//!
//! ## Supervised failure handling
//!
//! When the run enables supervision ([`crate::config::SupervisionCfg`]), the
//! component stops orchestrating its own recovery: a death notifies the
//! [`crate::supervisor_actor::SupervisorActor`] and the component parks in
//! `SupervisedWait` until a [`crate::supervisor_actor::RestartGrant`]
//! arrives (after backoff and any breaker hold). The grant carries the
//! component's [`RecoveryPolicy`] — checkpoint rollback, journal replay
//! (rollback without re-reading the checkpoint image), or restart-in-place
//! (no rollback at all) — and, for poison inputs past the breaker
//! threshold, the step to quarantine. Unlike the unsupervised path, a
//! failure *during* recovery is not coalesced: it kills the recovery and
//! re-notifies the supervisor, whose backoff grows with the consecutive
//! death count.

use crate::config::{ComponentConfig, WorkflowConfig};
use ckpt::target::CkptTarget;
use faultplane::RetryPolicy;
use mpi_sim::comm::Communicator;
use mpi_sim::ulfm::{self, UlfmCosts};
use net::des::{Delivered, EndpointId, NetworkHandle};
use obs::{arg, TraceCtx};
use sim_core::engine::{Actor, ActorId, Ctx, Event};
use sim_core::rng::Xoshiro256StarStar;
use sim_core::time::SimTime;
use staging::geometry::BBox;
use staging::proto::{
    CtlAck, CtlMsg, CtlRequest, CtlResponse, GetRequest, GetResponse, PutRequest, PutResponse,
    PutStatus,
};
use staging::server::{plan_get_routed, plan_put_virtual_routed, HEADER_BYTES};
use staging::Router;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use supervise::{DeathCause, RecoveryPolicy};

/// Kick-off message (runner → component at t=0).
pub struct StartStep;

/// Compute phase finished.
struct ComputeDone {
    step: u32,
    incarnation: u32,
}

/// Independent checkpoint write finished.
struct CkptWriteDone {
    incarnation: u32,
}

/// Injected fail-stop failure (runner → component).
pub struct Fail;

/// Failure-predictor warning (runner → component): a failure is imminent;
/// take an out-of-band checkpoint at the next step boundary (proactive
/// checkpointing).
pub struct FailureWarning;

/// ULFM repair finished.
struct UlfmDone {
    incarnation: u32,
}

/// Checkpoint restore finished.
struct RestoreDone {
    incarnation: u32,
}

/// Director → component: coordinated checkpoint at `step` is complete.
pub struct CkptRelease {
    /// The checkpointed step.
    pub step: u32,
}

/// Director → component: global rollback finished; resume from
/// `resume_step`.
pub struct RollbackComplete {
    /// First step to (re-)execute.
    pub resume_step: u32,
}

/// Self-timer: re-send unacknowledged requests (armed only when network
/// fault injection is active). `incarnation`/`epoch` orphan stale ticks
/// after a rollback or after the wait completed.
struct RetryTick {
    incarnation: u32,
    epoch: u64,
}

/// A request kept for possible redelivery while unacknowledged.
enum RetryReq {
    Put(PutRequest),
    Get(GetRequest),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Computing,
    IoWait,
    CkptWrite,
    CkptRendezvous,
    CtlWait(AfterCtl),
    RecUlfm,
    RecRestore,
    /// Dead; waiting for the supervisor's restart grant (supervised runs).
    SupervisedWait,
    Done,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AfterCtl {
    AdvanceStep,
    ResumeCompute,
}

/// The component actor. Public fields would invite runner-side fiddling;
/// everything is wired through [`ComponentActor::new`] + setters used by the
/// runner during wiring.
pub struct ComponentActor {
    cfg: ComponentConfig,
    protocol: wfcr::protocol::WorkflowProtocol,
    total_steps: u32,
    coordinated_period: u32,
    router: Router,
    domain: BBox,
    /// Variables this component writes each step.
    write_vars: Vec<u32>,
    /// Variables this component reads each step, with the writer's subset
    /// fraction and pattern (readers consume what producers produce, where
    /// they produce it).
    read_vars: Vec<(u32, u64, crate::config::SubsetPattern)>,
    bytes_per_point: u64,
    net: NetworkHandle,
    ep: EndpointId,
    server_eps: Vec<EndpointId>,
    director: ActorId,
    rng: Xoshiro256StarStar,
    comm: Communicator,
    ulfm: UlfmCosts,
    pfs: ckpt::PfsModel,
    ckpt_target: crate::config::CkptTarget,
    node_local: ckpt::NodeLocalModel,
    failover: SimTime,
    reconnect_per_rank: SimTime,

    step: u32,
    phase: Phase,
    incarnation: u32,
    pending: usize,
    issue: HashMap<u64, SimTime>,
    seq: u64,
    /// Retry policy; `Some` only when the run injects network faults.
    retry: Option<RetryPolicy>,
    /// Unacknowledged data requests kept for redelivery (retry runs only).
    outstanding: BTreeMap<u64, (EndpointId, RetryReq)>,
    /// Servers that have not acked the in-flight [`CtlMsg`] (retry runs).
    ctl_outstanding: BTreeSet<EndpointId>,
    /// The in-flight sequenced control envelope (retry runs).
    ctl_msg: Option<CtlMsg>,
    /// Orphans stale [`RetryTick`]s when a wait completes.
    retry_epoch: u64,
    /// Re-send rounds performed in the current wait.
    retry_attempt: u32,
    /// Cumulative backoff in the current wait (deadline accounting).
    retry_backoff_ns: u64,
    last_ckpt_step: u32,
    /// Extra delay folded into the next compute phase (replication
    /// fail-over pauses).
    pending_delay: SimTime,
    /// A failure warning arrived: checkpoint at the next step boundary.
    proactive_pending: bool,
    /// Proactive checkpoints taken.
    proactive_ckpts: u32,

    /// Steps executed including re-execution.
    steps_executed: u64,
    /// Rollback recoveries performed.
    recoveries: u32,
    /// Fail-overs absorbed by replication.
    failovers: u32,
    /// Failures ignored because a recovery was already in progress.
    coalesced_failures: u32,
    /// Puts acked as absorbed (server recognized a redundant replay write).
    absorbed_acks: u64,
    finish_time: Option<SimTime>,

    // ---- supervision (all fields inert when `supervisor` is None) -------
    /// The supervisor actor, when the run enables supervision. The
    /// component's [`RecoveryPolicy`] lives with the supervisor and arrives
    /// in each grant.
    supervisor: Option<ActorId>,
    /// Step whose input is poisoned (crashes this consumer on every attempt).
    poison_step: Option<u32>,
    /// Steps quarantined by the supervisor: their poison no longer fires.
    quarantined_steps: BTreeSet<u32>,
    /// An outage is open (death reported, recovery not yet complete).
    outage_open: bool,
    /// The granted restart skips the checkpoint read (journal replay).
    restore_skips_ckpt: bool,
    /// The granted restart is in-place: no rollback, no staging recovery.
    restart_in_place: bool,

    // ---- observability (all fields inert when the tracer is off) -------
    tracer: obs::Tracer,
    track: obs::TrackId,
    /// Open per-step span.
    step_span: TraceCtx,
    /// Open put/get rpc spans, keyed by request seq.
    rpc_spans: BTreeMap<u64, TraceCtx>,
    /// Open control-round span.
    ctl_span: TraceCtx,
    /// Open checkpoint span (write or rendezvous).
    ckpt_span: TraceCtx,
    /// Open recovery root span.
    recovery_span: TraceCtx,
    /// Open recovery phase child span (`ulfm`, `restore`, `co_rollback`).
    rec_phase_span: TraceCtx,
    /// Open replay-window child span of the recovery.
    replay_span: TraceCtx,
    /// The step that was executing when the failure hit; the replay window
    /// closes once re-execution advances past it.
    replay_until: u32,
}

impl ComponentActor {
    /// Build a component from the workflow config. Network wiring (`net`,
    /// `ep`, `server_eps`, `director`) is patched by the runner after actor
    /// registration.
    pub fn new(wf: &WorkflowConfig, cfg: ComponentConfig, rng: Xoshiro256StarStar) -> Self {
        let router = wf.build_router();
        let comm = Communicator::new(cfg.ranks, cfg.spares);
        // Variable namespace: every writing component owns the var range
        // [app·nvars, app·nvars + nvars); readers consume the union of every
        // *other* writer's range. A Producer+Consumer pair degenerates to
        // the classic write-then-read coupling; Peer components exchange
        // fields bidirectionally (the Figure 5 scenario).
        let own_range = |app: u32| (app * wf.nvars..(app + 1) * wf.nvars).collect::<Vec<u32>>();
        let write_vars = if cfg.role.writes() { own_range(cfg.app) } else { Vec::new() };
        let read_vars: Vec<(u32, u64, crate::config::SubsetPattern)> = if cfg.role.reads() {
            wf.components
                .iter()
                .filter(|c| c.app != cfg.app && c.role.writes())
                .flat_map(|c| {
                    own_range(c.app)
                        .into_iter()
                        .map(move |v| (v, c.subset_millis, c.subset_pattern))
                })
                .collect()
        } else {
            Vec::new()
        };
        ComponentActor {
            protocol: wf.protocol,
            total_steps: wf.total_steps,
            coordinated_period: wf.coordinated_period,
            router,
            domain: wf.domain_bbox(),
            write_vars,
            read_vars,
            bytes_per_point: wf.bytes_per_point,
            net: NetworkHandle { actor: 0 },
            ep: 0,
            server_eps: Vec::new(),
            director: 0,
            rng,
            comm,
            ulfm: wf.ulfm,
            pfs: wf.pfs,
            ckpt_target: wf.ckpt_target,
            node_local: wf.node_local,
            failover: wf.failover,
            reconnect_per_rank: wf.reconnect_per_rank,
            step: 1,
            phase: Phase::Idle,
            incarnation: 0,
            pending: 0,
            issue: HashMap::new(),
            seq: 0,
            retry: None,
            outstanding: BTreeMap::new(),
            ctl_outstanding: BTreeSet::new(),
            ctl_msg: None,
            retry_epoch: 0,
            retry_attempt: 0,
            retry_backoff_ns: 0,
            last_ckpt_step: 0,
            pending_delay: SimTime::ZERO,
            proactive_pending: false,
            proactive_ckpts: 0,
            steps_executed: 0,
            recoveries: 0,
            failovers: 0,
            coalesced_failures: 0,
            absorbed_acks: 0,
            finish_time: None,
            supervisor: None,
            poison_step: None,
            quarantined_steps: BTreeSet::new(),
            outage_open: false,
            restore_skips_ckpt: false,
            restart_in_place: false,
            tracer: obs::Tracer::off(),
            track: obs::TrackId(0),
            step_span: TraceCtx::NONE,
            rpc_spans: BTreeMap::new(),
            ctl_span: TraceCtx::NONE,
            ckpt_span: TraceCtx::NONE,
            recovery_span: TraceCtx::NONE,
            rec_phase_span: TraceCtx::NONE,
            replay_span: TraceCtx::NONE,
            replay_until: 0,
            cfg,
        }
    }

    /// Runner wiring: network handle, own endpoint, server endpoints,
    /// director actor id.
    pub fn wire(
        &mut self,
        net: NetworkHandle,
        ep: EndpointId,
        server_eps: Vec<EndpointId>,
        director: ActorId,
    ) {
        self.net = net;
        self.ep = ep;
        self.server_eps = server_eps;
        self.director = director;
    }

    /// This component's app id.
    pub fn app(&self) -> u32 {
        self.cfg.app
    }

    /// Enable bounded retry of staging requests (runner wiring, fault runs
    /// only). Control messages switch to the sequenced [`CtlMsg`] envelope
    /// so servers can dedup redelivered non-idempotent control.
    pub fn enable_retry(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// Runner wiring: place this component under supervision. Failures then
    /// notify `supervisor` instead of self-orchestrating recovery.
    pub fn set_supervisor(&mut self, supervisor: ActorId) {
        self.supervisor = Some(supervisor);
    }

    /// Runner wiring: the input this component consumes at `step` is
    /// poisoned — it kills the component every time it is processed, until
    /// the supervisor quarantines the step.
    pub fn set_poison(&mut self, step: u32) {
        self.poison_step = Some(step);
    }

    /// Steps the supervisor has quarantined on this component.
    pub fn quarantined_steps(&self) -> &BTreeSet<u32> {
        &self.quarantined_steps
    }

    /// Rollback recoveries performed.
    pub fn recoveries(&self) -> u32 {
        self.recoveries
    }

    /// Replication fail-overs absorbed.
    pub fn failovers(&self) -> u32 {
        self.failovers
    }

    /// Steps executed including re-execution.
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Acks that reported [`PutStatus::Absorbed`].
    pub fn absorbed_acks(&self) -> u64 {
        self.absorbed_acks
    }

    /// Failures coalesced into an in-progress recovery.
    pub fn coalesced_failures(&self) -> u32 {
        self.coalesced_failures
    }

    /// Proactive (predictor-triggered) checkpoints taken.
    pub fn proactive_ckpts(&self) -> u32 {
        self.proactive_ckpts
    }

    /// Virtual time at which this component finished all steps.
    pub fn finish_time(&self) -> Option<SimTime> {
        self.finish_time
    }

    // ---- observability --------------------------------------------------

    /// Runner wiring: attach a tracer. The component records onto its own
    /// track (`app<id>:<name>`); requests carry the issuing span's context
    /// so server-side work nests under the client rpc span.
    pub fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.track = tracer.track(&format!("app{}:{}", self.cfg.app, self.cfg.name));
        self.tracer = tracer;
    }

    fn span_begin(
        &self,
        ctx: &Ctx<'_>,
        parent: TraceCtx,
        name: &str,
        args: Vec<obs::Arg>,
    ) -> TraceCtx {
        self.tracer.begin(parent, self.track, name, ctx.now().as_nanos(), ctx.seq(), args)
    }

    fn span_end(&self, ctx: &Ctx<'_>, span: TraceCtx, args: Vec<obs::Arg>) {
        self.tracer.end(span, self.track, ctx.now().as_nanos(), ctx.seq(), args);
    }

    fn span_instant(&self, ctx: &Ctx<'_>, parent: TraceCtx, name: &str, args: Vec<obs::Arg>) {
        self.tracer.instant(parent, self.track, name, ctx.now().as_nanos(), ctx.seq(), args);
    }

    /// Close every open non-recovery span (rpc, ctl, ckpt, step) with an
    /// `aborted` marker. Called when a failure or a global rollback discards
    /// in-flight work, so the trace still pairs every `Begin` with one `End`.
    fn abort_work_spans(&mut self, ctx: &Ctx<'_>) {
        if !self.tracer.enabled() {
            self.rpc_spans.clear();
            return;
        }
        for (_, s) in std::mem::take(&mut self.rpc_spans) {
            self.span_end(ctx, s, vec![arg("status", "aborted")]);
        }
        for s in [
            std::mem::take(&mut self.ctl_span),
            std::mem::take(&mut self.ckpt_span),
            std::mem::take(&mut self.step_span),
        ] {
            if !s.is_none() {
                self.span_end(ctx, s, vec![arg("status", "aborted")]);
            }
        }
    }

    // ---- step machinery -----------------------------------------------

    fn begin_step(&mut self, ctx: &mut Ctx<'_>) {
        // Resuming compute closes the outage: the component is back in
        // service (MTTR measures death → resumed execution, not death →
        // caught-up re-execution).
        if self.outage_open {
            self.outage_open = false;
            if let Some(sup) = self.supervisor {
                let msg = crate::supervisor_actor::ComponentRecovered { app: self.cfg.app };
                ctx.send_now(sup, msg);
            }
        }
        if self.step > self.total_steps {
            self.finish(ctx);
            return;
        }
        if self.tracer.enabled() {
            // Entering re-execution after a recovery opens the replay
            // window; everything until the failed step re-runs under it.
            if !self.recovery_span.is_none()
                && self.replay_span.is_none()
                && self.step <= self.replay_until
            {
                self.replay_span = self.span_begin(
                    ctx,
                    self.recovery_span,
                    "replay",
                    vec![arg("from_step", self.step), arg("until_step", self.replay_until)],
                );
            }
            if self.step_span.is_none() {
                let parent = self.replay_span;
                self.step_span = self.span_begin(ctx, parent, "step", vec![arg("step", self.step)]);
            }
        }
        self.phase = Phase::Computing;
        let jitter = 1.0 + self.cfg.jitter * (2.0 * self.rng.next_f64() - 1.0);
        let dur = SimTime::from_secs_f64(self.cfg.compute_per_step.as_secs_f64() * jitter)
            + self.pending_delay;
        self.pending_delay = SimTime::ZERO;
        let (step, incarnation) = (self.step, self.incarnation);
        ctx.timer(dur, ComputeDone { step, incarnation });
    }

    fn issue_io(&mut self, ctx: &mut Ctx<'_>) {
        self.steps_executed += 1;
        let mut count = 0usize;
        // Writes first ("write immediately followed by read"): a Peer pair
        // exchanging fields must both have written before either read can
        // complete, and issuing puts first makes that deadlock-free.
        let write_regions = crate::config::coupled_regions(
            &self.domain,
            self.cfg.subset_millis,
            self.cfg.subset_pattern,
            self.step,
        );
        for &var in &self.write_vars {
            for region in &write_regions {
                let reqs = plan_put_virtual_routed(
                    &self.router,
                    self.cfg.app,
                    var,
                    self.step,
                    region,
                    self.bytes_per_point,
                    self.seq,
                );
                self.seq += reqs.len() as u64;
                count += reqs.len();
                for (server, mut req) in reqs {
                    self.issue.insert(req.seq, ctx.now());
                    if self.tracer.enabled() {
                        let s = self.span_begin(
                            ctx,
                            self.step_span,
                            "put",
                            vec![
                                arg("var", req.desc.var),
                                arg("version", req.desc.version),
                                arg("seq", req.seq),
                                arg("server", server),
                            ],
                        );
                        self.rpc_spans.insert(req.seq, s);
                        req.tctx = s;
                    }
                    let size = HEADER_BYTES + req.payload.accounted_len();
                    let to = self.server_eps[server];
                    if self.retry.is_some() {
                        self.outstanding.insert(req.seq, (to, RetryReq::Put(req.clone())));
                    }
                    self.net.send(ctx, self.ep, to, size, req);
                }
            }
        }
        for &(var, subset_millis, pattern) in &self.read_vars {
            for region in
                crate::config::coupled_regions(&self.domain, subset_millis, pattern, self.step)
            {
                let reqs =
                    plan_get_routed(&self.router, self.cfg.app, var, self.step, &region, self.seq);
                self.seq += reqs.len() as u64;
                count += reqs.len();
                for (server, mut req) in reqs {
                    self.issue.insert(req.seq, ctx.now());
                    if self.tracer.enabled() {
                        let s = self.span_begin(
                            ctx,
                            self.step_span,
                            "get",
                            vec![
                                arg("var", req.var),
                                arg("version", req.version),
                                arg("seq", req.seq),
                                arg("server", server),
                            ],
                        );
                        self.rpc_spans.insert(req.seq, s);
                        req.tctx = s;
                    }
                    let to = self.server_eps[server];
                    if self.retry.is_some() {
                        self.outstanding.insert(req.seq, (to, RetryReq::Get(req.clone())));
                    }
                    self.net.send(ctx, self.ep, to, HEADER_BYTES, req);
                }
            }
        }
        if count == 0 {
            self.step_io_done(ctx);
        } else {
            self.pending = count;
            self.phase = Phase::IoWait;
            self.arm_retry(ctx);
        }
    }

    // ---- retry machinery (network-fault runs only) ---------------------

    /// Start a fresh retry window for the wait phase just entered.
    fn arm_retry(&mut self, ctx: &mut Ctx<'_>) {
        let Some(p) = self.retry else { return };
        self.retry_epoch += 1;
        self.retry_attempt = 0;
        self.retry_backoff_ns = 0;
        let delay = SimTime::from_nanos(p.backoff_ns(1));
        ctx.timer(delay, RetryTick { incarnation: self.incarnation, epoch: self.retry_epoch });
    }

    /// Leave the current wait: orphan pending ticks, drop kept requests.
    fn cancel_retry(&mut self) {
        self.retry_epoch += 1;
        self.retry_attempt = 0;
        self.retry_backoff_ns = 0;
        self.outstanding.clear();
        self.ctl_outstanding.clear();
        self.ctl_msg = None;
    }

    fn on_retry_tick(&mut self, ctx: &mut Ctx<'_>, tick: &RetryTick) {
        if tick.incarnation != self.incarnation || tick.epoch != self.retry_epoch {
            return;
        }
        let Some(p) = self.retry else { return };
        let window = p.backoff_ns(self.retry_attempt + 1);
        self.retry_attempt += 1;
        self.retry_backoff_ns = self.retry_backoff_ns.saturating_add(window);
        if !p.allows(self.retry_attempt, self.retry_backoff_ns) {
            // Budget exhausted: stop re-sending. The component wedges and
            // the run's completion assertion surfaces it — DES fault runs
            // use an unlimited-attempt policy, so reaching this means the
            // policy was explicitly strict.
            ctx.metrics().inc("wf.retry_exhausted", 1);
            return;
        }
        let mut resent = 0u64;
        match self.phase {
            Phase::IoWait => {
                for (seq, (to, req)) in &self.outstanding {
                    if let Some(&s) = self.rpc_spans.get(seq) {
                        self.span_instant(
                            ctx,
                            s,
                            "resend",
                            vec![arg("attempt", self.retry_attempt)],
                        );
                    }
                    match req {
                        RetryReq::Put(r) => {
                            let size = HEADER_BYTES + r.payload.accounted_len();
                            self.net.send(ctx, self.ep, *to, size, r.clone());
                        }
                        RetryReq::Get(r) => {
                            self.net.send(ctx, self.ep, *to, HEADER_BYTES, r.clone());
                        }
                    }
                    resent += 1;
                }
            }
            Phase::CtlWait(_) => {
                if let Some(msg) = self.ctl_msg {
                    if !self.ctl_outstanding.is_empty() && !self.ctl_span.is_none() {
                        self.span_instant(
                            ctx,
                            self.ctl_span,
                            "resend",
                            vec![arg("attempt", self.retry_attempt)],
                        );
                    }
                    for &to in &self.ctl_outstanding {
                        self.net.send(ctx, self.ep, to, HEADER_BYTES, msg);
                        resent += 1;
                    }
                }
            }
            _ => return,
        }
        if resent > 0 {
            ctx.metrics().inc("wf.net_retries", resent);
        }
        let delay = SimTime::from_nanos(p.backoff_ns(self.retry_attempt + 1));
        ctx.timer(delay, RetryTick { incarnation: self.incarnation, epoch: self.retry_epoch });
    }

    fn ckpt_due(&self) -> bool {
        use wfcr::protocol::WorkflowProtocol as P;
        match self.protocol {
            P::FailureFree => false,
            P::Coordinated => self.step.is_multiple_of(self.coordinated_period),
            P::Uncoordinated | P::Hybrid | P::Individual => {
                self.cfg.scheme.period().map(|p| self.step.is_multiple_of(p)).unwrap_or(false)
            }
        }
    }

    fn step_io_done(&mut self, ctx: &mut Ctx<'_>) {
        self.cancel_retry();
        // Poison input: the data consumed this step is malformed and kills
        // the component while it processes it — every time, until the
        // supervisor quarantines the step (after which the input is shed
        // and the step completes without it).
        if self.supervisor.is_some()
            && self.poison_step == Some(self.step)
            && !self.quarantined_steps.contains(&self.step)
        {
            self.fail_with(ctx, DeathCause::PoisonPut { step: self.step });
            return;
        }
        // A predictor warning forces an out-of-band checkpoint under the
        // uncoordinated-family protocols (proactive checkpointing).
        let proactive_now = self.proactive_pending
            && !self.protocol.coordinated_checkpoints()
            && self.cfg.scheme.rolls_back();
        if proactive_now {
            self.proactive_pending = false;
            self.proactive_ckpts += 1;
            ctx.metrics().inc("wf.proactive_ckpts", 1);
        }
        if !self.ckpt_due() && !proactive_now {
            self.advance_step(ctx);
            return;
        }
        if self.tracer.enabled() {
            let kind = if self.protocol.coordinated_checkpoints() { "rendezvous" } else { "write" };
            self.ckpt_span = self.span_begin(
                ctx,
                self.step_span,
                "ckpt",
                vec![arg("kind", kind), arg("step", self.step)],
            );
        }
        if self.protocol.coordinated_checkpoints() {
            self.phase = Phase::CkptRendezvous;
            let msg = crate::director::ComponentReady { app: self.cfg.app, step: self.step };
            ctx.send_now(self.director, msg);
        } else {
            self.phase = Phase::CkptWrite;
            // Independent checkpoint: sole writer on its target.
            let cost = match self.ckpt_target {
                crate::config::CkptTarget::Pfs => self.pfs.write_time(self.cfg.state_bytes, 1),
                // Two-level: blocking cost is the node-local write; the PFS
                // flush proceeds asynchronously.
                crate::config::CkptTarget::TwoLevel => {
                    self.node_local.write_time(self.cfg.state_bytes, 1)
                }
            };
            ctx.metrics().observe("wf.ckpt_write_s", cost.as_secs_f64());
            let incarnation = self.incarnation;
            ctx.timer(cost, CkptWriteDone { incarnation });
        }
    }

    fn send_ctl_all(&mut self, ctx: &mut Ctx<'_>, req: CtlRequest, then: AfterCtl) {
        self.pending = self.server_eps.len();
        self.phase = Phase::CtlWait(then);
        if self.tracer.enabled() {
            let (name, parent) = match &req {
                CtlRequest::Checkpoint { .. } => ("ckpt_ctl", self.step_span),
                CtlRequest::Recovery { .. } => ("restart_ctl", self.recovery_span),
                _ => ("ctl", TraceCtx::NONE),
            };
            self.ctl_span = self.span_begin(ctx, parent, name, vec![arg("servers", self.pending)]);
        }
        if self.retry.is_some() {
            // Control is not idempotent; under possible redelivery it rides
            // the sequenced envelope the servers dedup on (app, seq). The
            // trace context rides the envelope too — the bare CtlRequest is
            // journaled verbatim and must stay identifier-free.
            let msg = CtlMsg { app: self.cfg.app, seq: self.seq, req, tctx: self.ctl_span };
            self.seq += 1;
            self.ctl_msg = Some(msg);
            self.ctl_outstanding = self.server_eps.iter().copied().collect();
            for &to in &self.server_eps {
                self.net.send(ctx, self.ep, to, HEADER_BYTES, msg);
            }
            self.arm_retry(ctx);
        } else {
            for &to in &self.server_eps {
                self.net.send(ctx, self.ep, to, HEADER_BYTES, req);
            }
        }
    }

    fn advance_step(&mut self, ctx: &mut Ctx<'_>) {
        let s = std::mem::take(&mut self.step_span);
        self.span_end(ctx, s, Vec::new());
        if let Some(sup) = self.supervisor {
            // Progress beacon for wedge detection.
            let msg = crate::supervisor_actor::Progress {
                app: self.cfg.app,
                step: self.step,
                done: false,
            };
            ctx.send_now(sup, msg);
        }
        self.step += 1;
        // Re-execution caught up with the failed step: the replay window —
        // and with it the whole recovery — is over.
        if !self.replay_span.is_none() && self.step > self.replay_until {
            let r = std::mem::take(&mut self.replay_span);
            self.span_end(ctx, r, Vec::new());
            let rec = std::mem::take(&mut self.recovery_span);
            self.span_end(ctx, rec, Vec::new());
        }
        self.begin_step(ctx);
    }

    fn finish(&mut self, ctx: &mut Ctx<'_>) {
        if self.phase == Phase::Done {
            return;
        }
        self.abort_work_spans(ctx);
        for s in [
            std::mem::take(&mut self.rec_phase_span),
            std::mem::take(&mut self.replay_span),
            std::mem::take(&mut self.recovery_span),
        ] {
            if !s.is_none() {
                self.span_end(ctx, s, Vec::new());
            }
        }
        self.phase = Phase::Done;
        self.finish_time = Some(ctx.now());
        if let Some(sup) = self.supervisor {
            let msg = crate::supervisor_actor::Progress {
                app: self.cfg.app,
                step: self.step,
                done: true,
            };
            ctx.send_now(sup, msg);
        }
        let msg = crate::director::Finished { app: self.cfg.app };
        ctx.send_now(self.director, msg);
    }

    // ---- failure machinery ---------------------------------------------

    fn on_fail(&mut self, ctx: &mut Ctx<'_>) {
        self.fail_with(ctx, DeathCause::FailStop);
    }

    fn fail_with(&mut self, ctx: &mut Ctx<'_>, cause: DeathCause) {
        if self.phase == Phase::Done {
            return;
        }
        // Replication absorbs a fail-stop without a death (supervised or
        // not): the replica takes over and the workflow never notices.
        let replicated = !self.cfg.scheme.rolls_back()
            && matches!(self.cfg.scheme, wfcr::protocol::FtScheme::Replication { .. })
            && !self.protocol.coordinated_checkpoints();
        if self.supervisor.is_some() && !(replicated && cause == DeathCause::FailStop) {
            self.supervised_fail(ctx, cause);
            return;
        }
        if matches!(self.phase, Phase::RecUlfm | Phase::RecRestore)
            || matches!(self.phase, Phase::CtlWait(AfterCtl::ResumeCompute))
        {
            self.coalesced_failures += 1;
            ctx.metrics().inc("wf.failures_coalesced", 1);
            self.span_instant(ctx, self.recovery_span, "failure_coalesced", Vec::new());
            return;
        }
        ctx.metrics().inc("wf.failures", 1);
        self.span_instant(ctx, self.step_span, "failure", vec![arg("step", self.step)]);

        if replicated {
            // Replication: fail over to the replica; no rollback, no staging
            // recovery. The pause lands on the next compute phase. Under
            // supervision the fail-stop is still *observed*: the supervisor
            // opens an outage (MTTR accounting) that the next step start
            // closes — but it grants no restart, because the replica already
            // took over.
            self.failovers += 1;
            self.pending_delay += self.failover;
            ctx.metrics().inc("wf.failovers", 1);
            self.span_instant(ctx, self.step_span, "failover", Vec::new());
            if let Some(sup) = self.supervisor {
                self.outage_open = true;
                let msg = crate::supervisor_actor::FailoverNotice { app: self.cfg.app };
                ctx.send_now(sup, msg);
            }
            return;
        }

        if self.protocol.coordinated_checkpoints() {
            // Co: the director orchestrates the global rollback.
            self.incarnation += 1;
            self.issue.clear();
            self.cancel_retry();
            self.pending = 0;
            self.phase = Phase::Idle;
            if self.tracer.enabled() {
                self.abort_work_spans(ctx);
                if self.recovery_span.is_none() {
                    self.replay_until = self.step;
                    self.recovery_span = self.span_begin(
                        ctx,
                        TraceCtx::NONE,
                        "recovery",
                        vec![arg("kind", "coordinated"), arg("failed_step", self.step)],
                    );
                    self.rec_phase_span =
                        self.span_begin(ctx, self.recovery_span, "co_rollback", Vec::new());
                }
            }
            let msg = crate::director::CoFailure { app: self.cfg.app };
            ctx.send_now(self.director, msg);
            return;
        }

        // Un / Hy(C-R component) / In: local rollback recovery.
        self.begin_rollback(ctx);
    }

    /// Supervised death: tear down in-flight work, park in `SupervisedWait`,
    /// and report to the supervisor. Unlike the unsupervised path a death
    /// during recovery is *not* coalesced — it kills the recovery and counts
    /// as another consecutive death (growing the supervisor's backoff).
    fn supervised_fail(&mut self, ctx: &mut Ctx<'_>, cause: DeathCause) {
        if self.phase == Phase::SupervisedWait {
            // Already dead and awaiting a grant: a dead component cannot
            // die again.
            self.coalesced_failures += 1;
            ctx.metrics().inc("wf.failures_coalesced", 1);
            return;
        }
        ctx.metrics().inc("wf.failures", 1);
        self.span_instant(
            ctx,
            self.step_span,
            "failure",
            vec![arg("step", self.step), arg("cause", cause.label())],
        );
        self.incarnation += 1;
        self.issue.clear();
        self.cancel_retry();
        self.pending = 0;
        self.restore_skips_ckpt = false;
        self.restart_in_place = false;
        if self.tracer.enabled() {
            self.abort_work_spans(ctx);
            // A death during recovery aborts the open recovery phase.
            let p = std::mem::take(&mut self.rec_phase_span);
            if !p.is_none() {
                self.span_end(ctx, p, vec![arg("status", "aborted")]);
            }
            if self.recovery_span.is_none() {
                self.replay_until = self.step;
                self.recovery_span = self.span_begin(
                    ctx,
                    TraceCtx::NONE,
                    "recovery",
                    vec![
                        arg("kind", "supervised"),
                        arg("cause", cause.label()),
                        arg("failed_step", self.step),
                    ],
                );
            } else {
                let r = std::mem::take(&mut self.replay_span);
                if !r.is_none() {
                    self.span_end(ctx, r, vec![arg("status", "aborted")]);
                }
                self.replay_until = self.replay_until.max(self.step);
            }
        }
        self.outage_open = true;
        self.phase = Phase::SupervisedWait;
        let sup = self.supervisor.expect("supervised_fail requires a supervisor");
        let msg =
            crate::supervisor_actor::ComponentDown { app: self.cfg.app, step: self.step, cause };
        ctx.send_now(sup, msg);
    }

    /// The supervisor granted a restart (after backoff / breaker hold).
    fn on_restart_grant(
        &mut self,
        ctx: &mut Ctx<'_>,
        grant: &crate::supervisor_actor::RestartGrant,
    ) {
        if self.phase != Phase::SupervisedWait {
            return;
        }
        if let Some(step) = grant.quarantine {
            // The poisoned input is shed: re-execution of `step` completes
            // without it instead of dying again.
            self.quarantined_steps.insert(step);
            ctx.metrics().inc("wf.quarantined_steps", 1);
            self.span_instant(ctx, self.recovery_span, "quarantine", vec![arg("step", step)]);
        }
        match grant.policy {
            RecoveryPolicy::Checkpoint => {}
            RecoveryPolicy::JournalReplay => self.restore_skips_ckpt = true,
            RecoveryPolicy::RestartInPlace => self.restart_in_place = true,
        }
        if !self.restart_in_place {
            // Rollback policies re-execute from the checkpoint; in-place
            // restart resumes the interrupted step from live state and is
            // not counted as a rollback recovery.
            self.recoveries += 1;
            ctx.metrics().inc("wf.recoveries", 1);
            ctx.metrics().inc(
                "wf.rollback_steps",
                u64::from(self.step.saturating_sub(self.last_ckpt_step + 1)),
            );
        }
        if self.tracer.enabled() {
            self.rec_phase_span = self.span_begin(
                ctx,
                self.recovery_span,
                "ulfm",
                vec![arg("policy", grant.policy.label())],
            );
        }
        self.phase = Phase::RecUlfm;
        let victim = self.rng.next_bounded(self.comm.size().max(1) as u64) as usize;
        let breakdown = ulfm::recover(&mut self.comm, &[victim], &self.ulfm, true);
        ctx.metrics().observe("wf.ulfm_s", breakdown.total().as_secs_f64());
        let incarnation = self.incarnation;
        ctx.timer(breakdown.total(), UlfmDone { incarnation });
    }

    fn begin_rollback(&mut self, ctx: &mut Ctx<'_>) {
        self.incarnation += 1;
        self.issue.clear();
        self.cancel_retry();
        self.pending = 0;
        self.recoveries += 1;
        ctx.metrics().inc("wf.recoveries", 1);
        ctx.metrics()
            .inc("wf.rollback_steps", u64::from(self.step.saturating_sub(self.last_ckpt_step + 1)));
        if self.tracer.enabled() {
            self.abort_work_spans(ctx);
            if self.recovery_span.is_none() {
                self.replay_until = self.step;
                self.recovery_span = self.span_begin(
                    ctx,
                    TraceCtx::NONE,
                    "recovery",
                    vec![arg("failed_step", self.step), arg("ckpt_step", self.last_ckpt_step)],
                );
            } else {
                // A second failure landed inside the replay window: the
                // window restarts but the recovery root stays open.
                let r = std::mem::take(&mut self.replay_span);
                self.span_end(ctx, r, vec![arg("status", "aborted")]);
                self.replay_until = self.replay_until.max(self.step);
            }
            self.rec_phase_span = self.span_begin(ctx, self.recovery_span, "ulfm", Vec::new());
        }
        self.phase = Phase::RecUlfm;
        let victim = self.rng.next_bounded(self.comm.size().max(1) as u64) as usize;
        let breakdown = ulfm::recover(&mut self.comm, &[victim], &self.ulfm, true);
        ctx.metrics().observe("wf.ulfm_s", breakdown.total().as_secs_f64());
        let incarnation = self.incarnation;
        ctx.timer(breakdown.total(), UlfmDone { incarnation });
    }

    fn on_ulfm_done(&mut self, ctx: &mut Ctx<'_>) {
        if self.tracer.enabled() {
            let p = std::mem::take(&mut self.rec_phase_span);
            self.span_end(ctx, p, Vec::new());
            self.rec_phase_span = self.span_begin(
                ctx,
                self.recovery_span,
                "restore",
                vec![arg("bytes", self.cfg.state_bytes)],
            );
        }
        self.phase = Phase::RecRestore;
        // Checkpoint restore + staging client re-initialization (every rank
        // of the restarted component re-registers with staging — the
        // `workflow_restart()` client-recovery step of Fig. 7b). The failed
        // component's node-local checkpoint copies died with it, so even
        // under two-level checkpointing its restore reads the PFS. Journal
        // replay and in-place restarts skip the checkpoint image read and
        // pay only the reconnect.
        let read = if self.restore_skips_ckpt || self.restart_in_place {
            SimTime::ZERO
        } else {
            self.pfs.read_time(self.cfg.state_bytes, 1)
        };
        let cost = read + self.reconnect_per_rank.scale(self.cfg.ranks as u64);
        ctx.metrics().observe("wf.restore_s", cost.as_secs_f64());
        let incarnation = self.incarnation;
        ctx.timer(cost, RestoreDone { incarnation });
    }

    fn on_restore_done(&mut self, ctx: &mut Ctx<'_>) {
        let p = std::mem::take(&mut self.rec_phase_span);
        self.span_end(ctx, p, Vec::new());
        if self.restart_in_place {
            // In-place restart: no rollback — the interrupted step
            // re-executes from live state and staging needs no replay
            // script.
            self.restart_in_place = false;
            self.begin_step(ctx);
            return;
        }
        self.restore_skips_ckpt = false;
        self.step = self.last_ckpt_step + 1;
        if self.protocol.uses_logging() {
            // workflow_restart(): notify staging; servers build the replay
            // script before the component re-issues anything.
            let req =
                CtlRequest::Recovery { app: self.cfg.app, resume_version: self.last_ckpt_step };
            self.send_ctl_all(ctx, req, AfterCtl::ResumeCompute);
        } else {
            self.begin_step(ctx);
        }
    }
}

impl Actor for ComponentActor {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        let ev = match ev.downcast::<Delivered>() {
            Ok((_, d)) => {
                let from = d.from;
                let p = d.payload;
                if p.is::<PutResponse>() {
                    let r = p.downcast::<PutResponse>().unwrap();
                    self.outstanding.remove(&r.seq);
                    if let Some(t0) = self.issue.remove(&r.seq) {
                        let rt = ctx.now().saturating_sub(t0);
                        ctx.metrics().observe_tail("wf.put_response_s", rt.as_secs_f64());
                        ctx.metrics().inc("wf.puts", 1);
                        if r.status == PutStatus::Absorbed {
                            self.absorbed_acks += 1;
                            ctx.metrics().inc("wf.puts_absorbed", 1);
                        }
                        if let Some(s) = self.rpc_spans.remove(&r.seq) {
                            let status =
                                if r.status == PutStatus::Absorbed { "absorbed" } else { "stored" };
                            self.span_end(ctx, s, vec![arg("status", status)]);
                        }
                        self.pending = self.pending.saturating_sub(1);
                        if self.pending == 0 && self.phase == Phase::IoWait {
                            self.step_io_done(ctx);
                        }
                    }
                } else if p.is::<GetResponse>() {
                    let r = p.downcast::<GetResponse>().unwrap();
                    self.outstanding.remove(&r.seq);
                    if let Some(t0) = self.issue.remove(&r.seq) {
                        let rt = ctx.now().saturating_sub(t0);
                        ctx.metrics().observe_tail("wf.get_response_s", rt.as_secs_f64());
                        ctx.metrics().inc("wf.gets", 1);
                        if let Some(s) = self.rpc_spans.remove(&r.seq) {
                            self.span_end(ctx, s, vec![arg("pieces", r.pieces.len())]);
                        }
                        self.pending = self.pending.saturating_sub(1);
                        if self.pending == 0 && self.phase == Phase::IoWait {
                            self.step_io_done(ctx);
                        }
                    }
                } else if p.is::<CtlResponse>() {
                    if let Phase::CtlWait(then) = self.phase {
                        self.pending = self.pending.saturating_sub(1);
                        if self.pending == 0 {
                            let s = std::mem::take(&mut self.ctl_span);
                            self.span_end(ctx, s, Vec::new());
                            match then {
                                AfterCtl::AdvanceStep => self.advance_step(ctx),
                                AfterCtl::ResumeCompute => self.begin_step(ctx),
                            }
                        }
                    }
                } else if p.is::<CtlAck>() {
                    let ack = p.downcast::<CtlAck>().unwrap();
                    if let Phase::CtlWait(then) = self.phase {
                        // Per-server dedup: a transport-duplicated or
                        // retried ack counts once.
                        if self.ctl_msg.map(|m| m.seq) == Some(ack.seq)
                            && self.ctl_outstanding.remove(&from)
                        {
                            self.pending = self.pending.saturating_sub(1);
                            if self.pending == 0 {
                                self.cancel_retry();
                                let s = std::mem::take(&mut self.ctl_span);
                                self.span_end(ctx, s, Vec::new());
                                match then {
                                    AfterCtl::AdvanceStep => self.advance_step(ctx),
                                    AfterCtl::ResumeCompute => self.begin_step(ctx),
                                }
                            }
                        }
                    }
                }
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<RetryTick>() {
            Ok((_, t)) => {
                self.on_retry_tick(ctx, &t);
                return;
            }
            Err(ev) => ev,
        };

        if ev.is::<StartStep>() {
            if self.phase == Phase::Idle {
                self.begin_step(ctx);
            }
            return;
        }
        let ev = match ev.downcast::<ComputeDone>() {
            Ok((_, c)) => {
                if c.incarnation == self.incarnation
                    && c.step == self.step
                    && self.phase == Phase::Computing
                {
                    self.issue_io(ctx);
                }
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<CkptWriteDone>() {
            Ok((_, c)) => {
                if c.incarnation == self.incarnation && self.phase == Phase::CkptWrite {
                    self.last_ckpt_step = self.step;
                    ctx.metrics().inc("wf.ckpts", 1);
                    let s = std::mem::take(&mut self.ckpt_span);
                    self.span_end(ctx, s, Vec::new());
                    if self.protocol.uses_logging() {
                        let req =
                            CtlRequest::Checkpoint { app: self.cfg.app, upto_version: self.step };
                        self.send_ctl_all(ctx, req, AfterCtl::AdvanceStep);
                    } else {
                        self.advance_step(ctx);
                    }
                }
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<CkptRelease>() {
            Ok((_, r)) => {
                if self.phase == Phase::CkptRendezvous {
                    self.last_ckpt_step = r.step;
                    ctx.metrics().inc("wf.ckpts", 1);
                    let s = std::mem::take(&mut self.ckpt_span);
                    self.span_end(ctx, s, Vec::new());
                    self.advance_step(ctx);
                }
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<RollbackComplete>() {
            Ok((_, r)) => {
                // Global coordinated rollback (Co): everyone resumes.
                if self.phase != Phase::Done {
                    self.incarnation += 1;
                    self.issue.clear();
                    self.cancel_retry();
                    self.pending = 0;
                    self.recoveries += 1;
                    ctx.metrics().inc("wf.recoveries", 1);
                    // Bystanders roll back mid-step: abandon their open
                    // work spans; the failed component closes its
                    // `co_rollback` phase and enters the replay window.
                    self.abort_work_spans(ctx);
                    let p = std::mem::take(&mut self.rec_phase_span);
                    self.span_end(ctx, p, Vec::new());
                    self.last_ckpt_step = r.resume_step.saturating_sub(1);
                    self.step = r.resume_step;
                    self.begin_step(ctx);
                }
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<UlfmDone>() {
            Ok((_, u)) => {
                if u.incarnation == self.incarnation && self.phase == Phase::RecUlfm {
                    self.on_ulfm_done(ctx);
                }
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<RestoreDone>() {
            Ok((_, r)) => {
                if r.incarnation == self.incarnation && self.phase == Phase::RecRestore {
                    self.on_restore_done(ctx);
                }
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<crate::supervisor_actor::RestartGrant>() {
            Ok((_, g)) => {
                self.on_restart_grant(ctx, &g);
                return;
            }
            Err(ev) => ev,
        };
        if ev.is::<crate::supervisor_actor::WedgeKill>() {
            self.fail_with(ctx, DeathCause::Wedge);
            return;
        }
        if ev.is::<FailureWarning>() {
            self.proactive_pending = true;
            return;
        }
        if ev.is::<Fail>() {
            self.on_fail(ctx);
        }
    }

    fn name(&self) -> &str {
        &self.cfg.name
    }
}
