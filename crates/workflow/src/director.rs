//! Workflow-level orchestration for the coordinated baseline and run-wide
//! bookkeeping.
//!
//! The director plays three roles:
//!
//! 1. **Coordinated checkpoint rendezvous (Co).** Components arriving at a
//!    global checkpoint boundary report [`ComponentReady`] and wait. When the
//!    last one arrives, the director charges the coordination cost — an MPI
//!    barrier over *all* workflow ranks, the contended PFS write (every
//!    component streams its state simultaneously), and the closing barrier —
//!    and releases everyone. The waiting time of early arrivals is exactly
//!    the "interference between components" the paper attributes to
//!    coordinated schemes.
//! 2. **Global rollback (Co).** On [`CoFailure`], the director waits out
//!    failure detection, resets staging to the last coordinated checkpoint
//!    (`GlobalReset`), charges ULFM repair for the failed component and a
//!    *contended* restore for every component, then broadcasts
//!    [`RollbackComplete`].
//! 3. **Completion tracking.** Components report [`Finished`]; when all have,
//!    the director stops the engine — the stop time is the workflow's total
//!    execution time.

use crate::component::{CkptRelease, RollbackComplete};
use ckpt::target::CkptTarget;
use mpi_sim::collective::CollectiveCosts;
use mpi_sim::comm::Communicator;
use mpi_sim::ulfm::{self, UlfmCosts};
use net::des::{EndpointId, NetworkHandle};
use obs::{arg, TraceCtx};
use sim_core::engine::{Actor, ActorId, Ctx, Event};
use sim_core::time::SimTime;
use staging::proto::CtlRequest;
use staging::server::HEADER_BYTES;
use std::collections::{HashMap, HashSet};

/// Component → director: ready at coordinated checkpoint boundary `step`.
pub struct ComponentReady {
    /// Reporting component.
    pub app: u32,
    /// Boundary step.
    pub step: u32,
}

/// Component → director: failure under the Co protocol.
pub struct CoFailure {
    /// Failed component.
    pub app: u32,
}

/// Component → director: all steps complete.
pub struct Finished {
    /// Finishing component.
    pub app: u32,
}

/// Timer: coordinated checkpoint write (incl. barriers) done.
struct CoCkptDone {
    step: u32,
}

/// Timer: global rollback delay elapsed.
struct CoRollbackDone {
    resume_step: u32,
}

/// Per-component info the director needs.
#[derive(Debug, Clone)]
pub struct DirectorComponent {
    /// Component/app id.
    pub app: u32,
    /// Engine actor of the component.
    pub actor: ActorId,
    /// Rank count (barrier sizing).
    pub ranks: usize,
    /// Spare pool size (Co ULFM cost).
    pub spares: usize,
    /// Checkpoint state bytes (contended restore sizing).
    pub state_bytes: u64,
}

/// The director actor.
pub struct Director {
    components: Vec<DirectorComponent>,
    net: NetworkHandle,
    ep: EndpointId,
    server_eps: Vec<EndpointId>,
    collectives: CollectiveCosts,
    ulfm: UlfmCosts,
    pfs: ckpt::PfsModel,
    ckpt_target: crate::config::CkptTarget,
    node_local: ckpt::NodeLocalModel,
    reconnect_per_rank: SimTime,
    detect: SimTime,

    /// Rendezvous state: step → set of ready apps.
    ready: HashMap<u32, HashSet<u32>>,
    /// Last completed coordinated checkpoint step.
    last_co_ckpt: u32,
    /// A global rollback is in flight (coalesce concurrent failures).
    rolling_back: bool,
    finished: HashSet<u32>,
    finish_times: HashMap<u32, SimTime>,
    /// Coordinated checkpoints completed.
    co_ckpts: u32,
    /// Global rollbacks performed.
    co_rollbacks: u32,

    /// Observability (inert when the tracer is off).
    tracer: obs::Tracer,
    track: obs::TrackId,
    /// Open coordinated-checkpoint span.
    ckpt_span: TraceCtx,
    /// Open global-rollback span.
    rollback_span: TraceCtx,
}

impl Director {
    /// Build a director for the given components and cost models.
    #[allow(clippy::too_many_arguments)] // one-time wiring from the runner
    pub fn new(
        components: Vec<DirectorComponent>,
        collectives: CollectiveCosts,
        ulfm: UlfmCosts,
        pfs: ckpt::PfsModel,
        ckpt_target: crate::config::CkptTarget,
        node_local: ckpt::NodeLocalModel,
        reconnect_per_rank: SimTime,
    ) -> Self {
        let detect = SimTime::from_nanos(ulfm.detect_ns);
        Director {
            components,
            net: NetworkHandle { actor: 0 },
            ep: 0,
            server_eps: Vec::new(),
            collectives,
            ulfm,
            pfs,
            ckpt_target,
            node_local,
            reconnect_per_rank,
            detect,
            ready: HashMap::new(),
            last_co_ckpt: 0,
            rolling_back: false,
            finished: HashSet::new(),
            finish_times: HashMap::new(),
            co_ckpts: 0,
            co_rollbacks: 0,
            tracer: obs::Tracer::off(),
            track: obs::TrackId(0),
            ckpt_span: TraceCtx::NONE,
            rollback_span: TraceCtx::NONE,
        }
    }

    /// Runner wiring: attach a tracer (the director records coordinated
    /// rendezvous and global rollbacks on its own track).
    pub fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.track = tracer.track("director");
        self.tracer = tracer;
    }

    /// Runner wiring: network handle + endpoints (used for `GlobalReset`).
    pub fn wire(&mut self, net: NetworkHandle, ep: EndpointId, server_eps: Vec<EndpointId>) {
        self.net = net;
        self.ep = ep;
        self.server_eps = server_eps;
    }

    /// Finish time per component (after the run).
    pub fn finish_times(&self) -> &HashMap<u32, SimTime> {
        &self.finish_times
    }

    /// Coordinated checkpoints completed.
    pub fn co_ckpts(&self) -> u32 {
        self.co_ckpts
    }

    /// Global rollbacks performed.
    pub fn co_rollbacks(&self) -> u32 {
        self.co_rollbacks
    }

    fn total_ranks(&self) -> usize {
        self.components.iter().map(|c| c.ranks).sum()
    }

    fn on_ready(&mut self, ctx: &mut Ctx<'_>, app: u32, step: u32) {
        if self.rolling_back {
            // The rollback broadcast will reset everyone; drop the rendezvous.
            return;
        }
        let set = self.ready.entry(step).or_default();
        set.insert(app);
        if set.len() < self.components.len() {
            return;
        }
        self.ready.remove(&step);
        // All components reached the boundary: barrier + contended write +
        // barrier ("a couple of synchronizing MPI barriers ... before and
        // after taking the process checkpoints").
        let n = self.total_ranks();
        let barrier = self.collectives.barrier(n);
        let writers = self.components.len();
        let write = self
            .components
            .iter()
            .map(|c| match self.ckpt_target {
                crate::config::CkptTarget::Pfs => self.pfs.write_time(c.state_bytes, writers),
                crate::config::CkptTarget::TwoLevel => {
                    self.node_local.write_time(c.state_bytes, writers)
                }
            })
            .max()
            .unwrap_or(SimTime::ZERO);
        let total = barrier + write + barrier;
        ctx.metrics().observe("wf.co_ckpt_s", total.as_secs_f64());
        if self.tracer.enabled() {
            self.ckpt_span = self.tracer.begin(
                TraceCtx::NONE,
                self.track,
                "co.ckpt",
                ctx.now().as_nanos(),
                ctx.seq(),
                vec![arg("step", step)],
            );
        }
        ctx.timer(total, CoCkptDone { step });
    }

    fn on_co_ckpt_done(&mut self, ctx: &mut Ctx<'_>, step: u32) {
        if self.rolling_back {
            return;
        }
        let s = std::mem::take(&mut self.ckpt_span);
        self.tracer.end(s, self.track, ctx.now().as_nanos(), ctx.seq(), Vec::new());
        self.last_co_ckpt = step;
        self.co_ckpts += 1;
        for c in &self.components {
            ctx.send_now(c.actor, CkptRelease { step });
        }
    }

    fn on_co_failure(&mut self, ctx: &mut Ctx<'_>, app: u32) {
        if self.rolling_back {
            ctx.metrics().inc("wf.failures_coalesced", 1);
            return;
        }
        self.rolling_back = true;
        self.co_rollbacks += 1;
        self.ready.clear();
        ctx.metrics().inc("wf.recoveries", 1);
        if self.tracer.enabled() {
            // A rollback abandons any rendezvous in flight.
            let s = std::mem::take(&mut self.ckpt_span);
            self.tracer.end(
                s,
                self.track,
                ctx.now().as_nanos(),
                ctx.seq(),
                vec![arg("status", "aborted")],
            );
            self.rollback_span = self.tracer.begin(
                TraceCtx::NONE,
                self.track,
                "co.rollback",
                ctx.now().as_nanos(),
                ctx.seq(),
                vec![arg("failed_app", app), arg("resume_step", self.last_co_ckpt + 1)],
            );
        }

        // Reset staging to the coordinated cut so re-execution repopulates
        // it exactly as the first execution did.
        let reset = CtlRequest::GlobalReset { to_version: self.last_co_ckpt };
        for &to in &self.server_eps {
            self.net.send(ctx, self.ep, to, HEADER_BYTES, reset);
        }

        // Timing: detection, then ULFM repair of the failed component, then
        // every component restores its checkpoint simultaneously from the
        // shared PFS.
        let failed = self
            .components
            .iter()
            .find(|c| c.app == app)
            .cloned()
            .unwrap_or_else(|| self.components[0].clone());
        let mut comm = Communicator::new(failed.ranks, failed.spares);
        let breakdown = ulfm::recover(&mut comm, &[0], &self.ulfm, true);
        // `recover` already includes detection; avoid double counting.
        let ulfm_time = breakdown.total().saturating_sub(breakdown.detection);
        // The failed component's node-local copies died with it; healthy
        // components restore from node-local storage when two-level
        // checkpointing is in use.
        let readers = self.components.len();
        let restore = self
            .components
            .iter()
            .map(|c| {
                if c.app == app {
                    self.pfs.read_time(c.state_bytes, readers)
                } else {
                    match self.ckpt_target {
                        crate::config::CkptTarget::Pfs => {
                            self.pfs.read_time(c.state_bytes, readers)
                        }
                        crate::config::CkptTarget::TwoLevel => {
                            self.node_local.read_time(c.state_bytes, readers)
                        }
                    }
                }
            })
            .max()
            .unwrap_or(SimTime::ZERO);
        // Under global restart every rank of every component re-registers
        // its staging client (registration serializes at the staging master).
        let reconnect = self.reconnect_per_rank.scale(self.total_ranks() as u64);
        let total = self.detect + ulfm_time + restore + reconnect;
        ctx.metrics().observe("wf.co_rollback_s", total.as_secs_f64());
        let resume_step = self.last_co_ckpt + 1;
        ctx.timer(total, CoRollbackDone { resume_step });
    }

    fn on_co_rollback_done(&mut self, ctx: &mut Ctx<'_>, resume_step: u32) {
        self.rolling_back = false;
        let s = std::mem::take(&mut self.rollback_span);
        self.tracer.end(s, self.track, ctx.now().as_nanos(), ctx.seq(), Vec::new());
        for c in &self.components {
            ctx.send_now(c.actor, RollbackComplete { resume_step });
        }
    }

    fn on_finished(&mut self, ctx: &mut Ctx<'_>, app: u32) {
        self.finished.insert(app);
        self.finish_times.insert(app, ctx.now());
        if self.finished.len() == self.components.len() {
            ctx.stop();
        }
    }
}

impl Actor for Director {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        let ev = match ev.downcast::<ComponentReady>() {
            Ok((_, m)) => {
                self.on_ready(ctx, m.app, m.step);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<CoCkptDone>() {
            Ok((_, m)) => {
                self.on_co_ckpt_done(ctx, m.step);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<CoFailure>() {
            Ok((_, m)) => {
                self.on_co_failure(ctx, m.app);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<CoRollbackDone>() {
            Ok((_, m)) => {
                self.on_co_rollback_done(ctx, m.resume_step);
                return;
            }
            Err(ev) => ev,
        };
        if let Ok((_, m)) = ev.downcast::<Finished>() {
            self.on_finished(ctx, m.app);
        }
    }

    fn name(&self) -> &str {
        "director"
    }
}
