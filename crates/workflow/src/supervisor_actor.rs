//! The supervisor actor: the DES embedding of [`supervise::Supervisor`].
//!
//! One actor per supervised run. Components report deaths and progress
//! beacons; staging servers report fail-stop / rebuild-complete. The actor
//! feeds the pure policy machine in the `supervise` crate with virtual-time
//! timestamps and enacts its verdicts as delayed [`RestartGrant`] messages
//! — so backoff, breaker holds, and quarantine decisions all land on the
//! simulated clock and replay identically for a given seed.
//!
//! Wedge detection is a periodic self-timer ([`WedgeScan`], armed by the
//! runner when [`crate::config::SupervisionCfg::wedge_timeout`] is set):
//! any healthy, unfinished component domain silent past the timeout is shot
//! with a [`WedgeKill`], which re-enters the ordinary death path with
//! [`DeathCause::Wedge`] and a restart-in-place grant (a wedged process has
//! nothing wrong with its state — it lost an event, not its memory).

use std::collections::BTreeMap;

use obs::{arg, TraceCtx};
use sim_core::engine::{Actor, ActorId, Ctx, Event};
use sim_core::time::SimTime;
use staging::server::{ServerDownNotice, ServerUpNotice};
use supervise::{DeadLetterQueue, DeathCause, DomainKey, RecoveryPolicy, Supervisor};

/// Component → supervisor: the component died.
pub struct ComponentDown {
    /// The dead component's app id.
    pub app: u32,
    /// The step it was executing when it died.
    pub step: u32,
    /// Why it died.
    pub cause: DeathCause,
}

/// Component → supervisor: the component resumed executing (closes the
/// outage opened by its first [`ComponentDown`] of the streak).
pub struct ComponentRecovered {
    /// The recovered component's app id.
    pub app: u32,
}

/// Component → supervisor: a replicated component absorbed a fail-stop by
/// failing over to its replica. No restart is needed (the replica already
/// took over), but the supervisor still opens an outage for the failover
/// pause — so MTTR accounting covers replicated domains too — and closes it
/// on the component's next [`ComponentRecovered`].
pub struct FailoverNotice {
    /// The failed-over component's app id.
    pub app: u32,
}

/// Component → supervisor: progress beacon (step advanced, or `done`).
pub struct Progress {
    /// The reporting component's app id.
    pub app: u32,
    /// The step just completed.
    pub step: u32,
    /// All steps complete; exempt this component from wedge scans.
    pub done: bool,
}

/// Supervisor → component: restart now, under `policy`. Fires after the
/// backoff (and any breaker hold) chosen by the policy machine.
pub struct RestartGrant {
    /// How the component must recover its state.
    pub policy: RecoveryPolicy,
    /// A step to quarantine before restarting (poison past the threshold).
    pub quarantine: Option<u32>,
}

/// Supervisor → component: you look wedged; die and restart.
pub struct WedgeKill;

/// Periodic self-timer driving wedge scans. The runner schedules the first
/// tick when wedge detection is configured.
pub struct WedgeScan;

/// The supervision actor. Build with [`SupervisorActor::new`], then wire
/// domains with [`watch_component`](SupervisorActor::watch_component) /
/// [`watch_server`](SupervisorActor::watch_server) during runner assembly.
pub struct SupervisorActor {
    sup: Supervisor,
    /// App id → component actor, for grant delivery and wedge kills.
    comp_actor: BTreeMap<u32, ActorId>,
    /// App id → that component's recovery policy.
    comp_policy: BTreeMap<u32, RecoveryPolicy>,
    /// Wedge scan period (the configured wedge timeout).
    wedge_period: Option<SimTime>,
    // Observability (inert when the tracer is off).
    tracer: obs::Tracer,
    track: obs::TrackId,
    /// Open outage span per domain.
    outage_spans: BTreeMap<DomainKey, TraceCtx>,
    /// Outage start (virtual ns) per down domain — always on, unlike the
    /// tracer spans, so the `sup.outage_s` tail histogram (MTTR for the
    /// windowed telemetry series and SLO targets) exists in untraced runs.
    /// Consecutive deaths extend the one open outage.
    outage_since: BTreeMap<DomainKey, u64>,
}

impl SupervisorActor {
    /// A supervisor actor around a fresh policy machine quarantining into
    /// `dlq`.
    pub fn new(cfg: supervise::SupervisorCfg, dlq: DeadLetterQueue) -> SupervisorActor {
        let wedge_period = cfg.wedge_timeout_ns.map(SimTime::from_nanos);
        SupervisorActor {
            sup: Supervisor::with_dlq(cfg, dlq),
            comp_actor: BTreeMap::new(),
            comp_policy: BTreeMap::new(),
            wedge_period,
            tracer: obs::Tracer::off(),
            track: obs::TrackId(0),
            outage_spans: BTreeMap::new(),
            outage_since: BTreeMap::new(),
        }
    }

    /// Watch the component `app`, delivering grants to `actor` under
    /// `policy`.
    pub fn watch_component(&mut self, app: u32, actor: ActorId, policy: RecoveryPolicy) {
        self.sup.watch(DomainKey::Component(app));
        self.comp_actor.insert(app, actor);
        self.comp_policy.insert(app, policy);
    }

    /// Watch staging server `server`. Its restarts are driven by the
    /// resilience layer's rebuild, not by grants; the supervisor only
    /// accounts the outage.
    pub fn watch_server(&mut self, server: u32) {
        self.sup.watch(DomainKey::Server(server));
    }

    /// Runner wiring: attach a tracer (own `supervisor` track).
    pub fn set_tracer(&mut self, tracer: obs::Tracer) {
        self.track = tracer.track("supervisor");
        self.tracer = tracer;
    }

    /// The wrapped policy machine, for post-run harvest.
    pub fn supervisor(&self) -> &Supervisor {
        &self.sup
    }

    fn open_outage(&mut self, ctx: &mut Ctx<'_>, key: DomainKey, cause: DeathCause) {
        self.outage_since.entry(key).or_insert_with(|| ctx.now().as_nanos());
        if !self.tracer.enabled() {
            return;
        }
        let span = self.outage_spans.entry(key).or_insert(TraceCtx::NONE);
        if span.is_none() {
            *span = self.tracer.begin(
                TraceCtx::NONE,
                self.track,
                "outage",
                ctx.now().as_nanos(),
                ctx.seq(),
                vec![arg("domain", key.label()), arg("cause", cause.label())],
            );
        } else {
            let parent = *span;
            self.tracer.instant(
                parent,
                self.track,
                "redeath",
                ctx.now().as_nanos(),
                ctx.seq(),
                vec![arg("cause", cause.label())],
            );
        }
    }

    fn close_outage(&mut self, ctx: &mut Ctx<'_>, key: DomainKey) {
        if let Some(since) = self.outage_since.remove(&key) {
            let dur_s = (ctx.now().as_nanos().saturating_sub(since)) as f64 / 1e9;
            ctx.metrics().observe_tail("sup.outage_s", dur_s);
        }
        if let Some(span) = self.outage_spans.remove(&key) {
            if !span.is_none() {
                self.tracer.end(span, self.track, ctx.now().as_nanos(), ctx.seq(), Vec::new());
            }
        }
    }

    fn on_component_down(&mut self, ctx: &mut Ctx<'_>, msg: &ComponentDown) {
        let key = DomainKey::Component(msg.app);
        let now = ctx.now().as_nanos();
        self.open_outage(ctx, key, msg.cause);
        let verdict = self.sup.on_death(key, now, msg.cause);
        ctx.metrics().inc("sup.deaths", 1);
        ctx.metrics().inc("sup.restarts", 1);
        // A wedged component's state is intact — it lost an event, not its
        // memory — so the kill restarts it in place regardless of policy.
        let policy = if msg.cause == DeathCause::Wedge {
            RecoveryPolicy::RestartInPlace
        } else {
            *self.comp_policy.get(&msg.app).expect("death from unwatched component")
        };
        let quarantine = match verdict {
            supervise::Verdict::Quarantine { step, .. } => {
                ctx.metrics().inc("sup.quarantined", 1);
                if self.tracer.enabled() {
                    let parent = self.outage_spans.get(&key).copied().unwrap_or(TraceCtx::NONE);
                    self.tracer.instant(
                        parent,
                        self.track,
                        "quarantine",
                        ctx.now().as_nanos(),
                        ctx.seq(),
                        vec![arg("domain", key.label()), arg("step", step)],
                    );
                }
                Some(step)
            }
            supervise::Verdict::Restart { .. } => None,
        };
        let target = *self.comp_actor.get(&msg.app).expect("death from unwatched component");
        let delay = SimTime::from_nanos(verdict.delay_ns());
        ctx.send_after(delay, target, RestartGrant { policy, quarantine });
    }

    fn on_wedge_scan(&mut self, ctx: &mut Ctx<'_>) {
        let Some(period) = self.wedge_period else { return };
        let now = ctx.now().as_nanos();
        for key in self.sup.wedged(now) {
            if let DomainKey::Component(app) = key {
                if let Some(&target) = self.comp_actor.get(&app) {
                    ctx.metrics().inc("sup.wedge_kills", 1);
                    if self.tracer.enabled() {
                        self.tracer.instant(
                            TraceCtx::NONE,
                            self.track,
                            "wedge_kill",
                            ctx.now().as_nanos(),
                            ctx.seq(),
                            vec![arg("domain", key.label())],
                        );
                    }
                    ctx.send_now(target, WedgeKill);
                }
            }
        }
        if self.sup.any_unfinished() {
            ctx.timer(period, WedgeScan);
        }
    }
}

impl Actor for SupervisorActor {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, ev: Event) {
        let ev = match ev.downcast::<ComponentDown>() {
            Ok((_, d)) => {
                self.on_component_down(ctx, &d);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<ComponentRecovered>() {
            Ok((_, r)) => {
                let key = DomainKey::Component(r.app);
                self.sup.on_recovered(key, ctx.now().as_nanos());
                self.close_outage(ctx, key);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<FailoverNotice>() {
            Ok((_, f)) => {
                // Like a server down-notice: account the outage, grant
                // nothing — the replica is already serving. Failover
                // semantics are unchanged; only observability is added.
                let key = DomainKey::Component(f.app);
                let now = ctx.now().as_nanos();
                self.open_outage(ctx, key, DeathCause::FailStop);
                let _ = self.sup.on_death(key, now, DeathCause::FailStop);
                ctx.metrics().inc("sup.deaths", 1);
                ctx.metrics().inc("sup.failovers", 1);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<Progress>() {
            Ok((_, p)) => {
                let key = DomainKey::Component(p.app);
                let now = ctx.now().as_nanos();
                if p.done {
                    self.sup.on_finished(key, now);
                } else {
                    self.sup.on_progress(key, now);
                }
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<ServerDownNotice>() {
            Ok((_, d)) => {
                // Server restarts ride the resilience rebuild, not a grant:
                // the policy machine only accounts the outage (and its
                // breaker state answers "is this server crash-looping?").
                let key = DomainKey::Server(d.server as u32);
                let now = ctx.now().as_nanos();
                self.open_outage(ctx, key, DeathCause::FailStop);
                let _ = self.sup.on_death(key, now, DeathCause::FailStop);
                ctx.metrics().inc("sup.deaths", 1);
                ctx.metrics().inc("sup.restarts", 1);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<ServerUpNotice>() {
            Ok((_, u)) => {
                let key = DomainKey::Server(u.server as u32);
                self.sup.on_recovered(key, ctx.now().as_nanos());
                self.close_outage(ctx, key);
                return;
            }
            Err(ev) => ev,
        };
        if ev.is::<WedgeScan>() {
            self.on_wedge_scan(ctx);
        }
    }

    fn name(&self) -> &str {
        "supervisor"
    }
}
