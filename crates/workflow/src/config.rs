//! Experiment configuration, including the paper's Table II and Table III
//! setups.

use faultplane::FaultPlan;
use net::cost::CostModel;
use serde::{Deserialize, Serialize};
use sim_core::time::SimTime;
use staging::geometry::BBox;
use staging::service::ServerCosts;
use supervise::RecoveryPolicy;
use wfcr::protocol::{FtScheme, WorkflowProtocol};

/// What a component does each coupling cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    /// Writes the coupled data (the simulation).
    Producer,
    /// Reads the coupled data (the analytics/visualization).
    Consumer,
    /// Both writes its own fields and reads its peers' — a coupled-solver
    /// component like the DNS/LES pair of paper §II-A, whose exchange
    /// pattern Figure 5's queue algorithm is illustrated on.
    Peer,
}

impl Role {
    /// Does this component write coupled data each step?
    pub fn writes(&self) -> bool {
        matches!(self, Role::Producer | Role::Peer)
    }

    /// Does this component read coupled data each step?
    pub fn reads(&self) -> bool {
        matches!(self, Role::Consumer | Role::Peer)
    }
}

/// How the coupled subset moves across time steps (evaluation Case 1 writes
/// "different subsets of the entire data domain in each time step").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SubsetPattern {
    /// The same prefix region every step.
    #[default]
    Fixed,
    /// The region slides along the last axis by its own extent each step,
    /// wrapping around the domain (so successive steps touch different
    /// blocks).
    Rotating,
}

/// The region(s) of `domain` coupled at `step` for a given subset fraction
/// and pattern. Rotating subsets that wrap the domain boundary come back as
/// two boxes.
pub fn coupled_regions(
    domain: &BBox,
    subset_millis: u64,
    pattern: SubsetPattern,
    step: u32,
) -> Vec<BBox> {
    assert!((1..=1000).contains(&subset_millis));
    let axis = domain.ndim as usize - 1;
    let extent = domain.extent(axis);
    let take = ((extent as u128 * subset_millis as u128).div_ceil(1000) as u64).clamp(1, extent);
    let slice = |lo: u64, hi: u64| {
        let mut b = *domain;
        b.lb[axis] = domain.lb[axis] + lo;
        b.ub[axis] = domain.lb[axis] + hi;
        b
    };
    match pattern {
        SubsetPattern::Fixed => vec![slice(0, take - 1)],
        SubsetPattern::Rotating => {
            let start = (step as u64 * take) % extent;
            if start + take <= extent {
                vec![slice(start, start + take - 1)]
            } else {
                let tail = start + take - extent;
                vec![slice(start, extent - 1), slice(0, tail - 1)]
            }
        }
    }
}

/// One application component of the workflow.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComponentConfig {
    /// Display name ("simulation", "analytics").
    pub name: String,
    /// Component id (also the staging `AppId`).
    pub app: u32,
    /// Producer or consumer.
    pub role: Role,
    /// Core/rank count (drives collective costs and state size).
    pub ranks: usize,
    /// Spare processes for ULFM recovery.
    pub spares: usize,
    /// Mean compute time per time step.
    pub compute_per_step: SimTime,
    /// Fractional uniform jitter on compute time (0.05 = ±5%).
    pub jitter: f64,
    /// Checkpointed state size, bytes (whole component).
    pub state_bytes: u64,
    /// Fault-tolerance scheme under Un/Hy/In protocols. (Co overrides the
    /// period with the global coordinated period; Ds ignores it.)
    pub scheme: FtScheme,
    /// Fraction of the domain coupled each step, in thousandths
    /// (1000 = 100%; Case 1 sweeps 200..=1000).
    pub subset_millis: u64,
    /// How the coupled subset moves across steps.
    pub subset_pattern: SubsetPattern,
    /// How the supervisor brings this component back after a fail-stop
    /// (per-component heterogeneous recovery). Only consulted when
    /// [`WorkflowConfig::supervision`] is enabled; unsupervised runs keep
    /// the director-orchestrated protocol recovery.
    #[serde(default)]
    pub recovery: RecoveryPolicy,
}

/// When and whom failures strike.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FailureSpec {
    /// Deterministic failure of `app` at `at`.
    At {
        /// Failure time.
        at: SimTime,
        /// Victim component.
        app: u32,
    },
    /// `count` failures with exponential inter-arrival times of mean
    /// `mtbf_secs`, victims chosen randomly weighted by rank count.
    Mtbf {
        /// Mean time between failures, seconds.
        mtbf_secs: f64,
        /// Number of failures to inject.
        count: usize,
    },
    /// Fail-stop failure of staging server `server` at `at`; the staging
    /// resilience layer (CoREC-style replication/erasure coding) rebuilds
    /// its contents from survivors while requests queue.
    StagingAt {
        /// Failure time.
        at: SimTime,
        /// Staging server index.
        server: usize,
    },
    /// Seed-deterministic network fault injection (drop / duplication /
    /// reordering / bounded extra delay) on the staging data path for the
    /// whole run. The director's coordination channel is exempt — the
    /// faulted surface is put/get/ctl traffic between components and
    /// staging servers.
    NetFaults {
        /// The fault plan (rates, windows, seed).
        plan: FaultPlan,
    },
    /// Transient stall of staging server `server` for `dur` starting at
    /// `at` — a GC pause, OS jitter, or a slow RDMA completion queue.
    /// Unlike [`FailureSpec::StagingAt`] this is *not* fail-stop: no state
    /// is lost and no rebuild runs; requests queue and are served when the
    /// stall ends.
    StagingStall {
        /// Stall start time.
        at: SimTime,
        /// Stall duration.
        dur: SimTime,
        /// Staging server index.
        server: usize,
    },
    /// Cascading failure: `first` fails at `at`, and every *other* component
    /// (ascending app order) fails `spread` after the previous one — the
    /// domino pattern a rack-level power or fabric event produces. Each
    /// victim recovers independently under supervision; the scenario checks
    /// that recoveries overlap without interfering.
    Cascading {
        /// When the first victim fails.
        at: SimTime,
        /// The first victim.
        first: u32,
        /// Gap between successive victims.
        spread: SimTime,
        /// Staging shards pulled into the cascade: after the components,
        /// each listed server fails `spread` after the previous victim
        /// (the scenario-matrix `srv:N` dimension).
        #[serde(default)]
        servers: Vec<usize>,
    },
    /// Correlated failure: all of `apps` fail at the same instant `at` (a
    /// shared-switch or shared-blade loss).
    Correlated {
        /// The common failure time.
        at: SimTime,
        /// Victims (must be non-empty).
        apps: Vec<u32>,
        /// Staging shards sharing the failure domain: each listed server
        /// fails at the same instant `at`.
        #[serde(default)]
        servers: Vec<usize>,
    },
    /// `app` fails at `at` and then fails *again* `again_after` into its own
    /// recovery — the fail-during-recovery shape that breaks naive
    /// restart logic (the second death must extend the same outage, not
    /// deadlock or double-restart).
    FailDuringRecovery {
        /// First failure time.
        at: SimTime,
        /// Victim component.
        app: u32,
        /// Delay from the first failure to the failure-during-recovery.
        again_after: SimTime,
    },
    /// Poison input: the data `victim` consumes at `step` is malformed and
    /// kills it on every attempt. Without supervision this wedges the run in
    /// a crash loop; with supervision the breaker trips after N deaths and
    /// the step is quarantined to the dead-letter queue.
    PoisonPut {
        /// The consumer that crashes on the poisoned input.
        victim: u32,
        /// The step whose input is poisoned.
        step: u32,
    },
}

/// Where component checkpoints are written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CkptTarget {
    /// Directly to the shared parallel file system (the paper's primary
    /// option: "checkpoints can be stored through a centralized parallel
    /// file system").
    Pfs,
    /// SCR/FTI-style two-level: blocking write to node-local NVRAM/SSD with
    /// asynchronous PFS flush. Restores hit node-local when the copy
    /// survived; a component's *own* failure destroys its local copies, so
    /// its restore falls back to the PFS ("multi-level checkpointing" — the
    /// future-work integration the paper names).
    TwoLevel,
}

/// Proactive checkpointing (Bouguerra et al., the paper's reference 15): a failure
/// predictor warns `lead` before an impending failure with probability
/// `recall`; warned components take an immediate out-of-band checkpoint,
/// shrinking the lost work to under one step.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ProactiveCfg {
    /// Warning lead time before the failure.
    pub lead: SimTime,
    /// Probability the predictor catches a failure (0..=1).
    pub recall: f64,
}

/// Durable journaling of the staging stores (the persistence layer): every
/// staging server writes its put/get/control history through a segmented
/// `logstore::LogStore`, making a cold restart from disk possible after full
/// process death. `None` (the default) keeps the seed's in-memory-only
/// behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DurabilityCfg {
    /// Directory for segment files (one subdirectory per staging server).
    /// `None` journals through in-memory media — durable across a *simulated*
    /// crash (`MemMedia::crash`), hermetic for tests.
    #[serde(default)]
    pub dir: Option<String>,
    /// Segment rotation size, bytes.
    pub segment_bytes: u64,
    /// Flush/fsync policy.
    pub flush: logstore::FlushPolicy,
    /// Journal-handle coalescing window: entries accumulate client-side and
    /// reach the log as one batched group commit every this-many records
    /// (commit points always hand off immediately). 0 behaves as 1
    /// (no coalescing).
    #[serde(default = "default_coalesce")]
    pub coalesce: usize,
}

fn default_coalesce() -> usize {
    staging::store_journal::DEFAULT_COALESCE
}

impl Default for DurabilityCfg {
    fn default() -> Self {
        let base = logstore::LogConfig::default();
        DurabilityCfg {
            dir: None,
            segment_bytes: base.segment_bytes,
            flush: base.flush,
            coalesce: default_coalesce(),
        }
    }
}

impl DurabilityCfg {
    /// The equivalent `logstore` configuration.
    pub fn log_config(&self) -> logstore::LogConfig {
        logstore::LogConfig { segment_bytes: self.segment_bytes, flush: self.flush }
    }
}

/// Self-healing supervision (the `supervise` crate wired into the runner):
/// a supervisor actor watches every component and staging server as its own
/// failure domain, restarts dead ones from preserved state with
/// capped-exponential backoff, and quarantines poison inputs to a
/// dead-letter queue after the crash-loop breaker trips.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SupervisionCfg {
    /// Delay before the first restart of an outage.
    pub base_backoff: SimTime,
    /// Ceiling on the per-restart backoff.
    pub max_backoff: SimTime,
    /// Deaths within [`SupervisionCfg::breaker_window`] that trip the
    /// crash-loop breaker.
    pub breaker_threshold: u32,
    /// Rolling window the breaker counts deaths within.
    pub breaker_window: SimTime,
    /// How long a tripped breaker holds restarts back.
    pub breaker_cooldown: SimTime,
    /// Deaths the same input may cause before it is quarantined to the DLQ.
    pub poison_threshold: u32,
    /// Silence after which an unfinished healthy component counts as wedged
    /// and is restarted in place. `None` disables wedge detection.
    #[serde(default)]
    pub wedge_timeout: Option<SimTime>,
    /// Directory for the persisted dead-letter queue (a `logstore` log).
    /// `None` keeps the DLQ in memory only.
    #[serde(default)]
    pub dlq_dir: Option<String>,
}

impl Default for SupervisionCfg {
    fn default() -> Self {
        SupervisionCfg {
            base_backoff: SimTime::from_millis(50),
            max_backoff: SimTime::from_millis(800),
            breaker_threshold: 4,
            breaker_window: SimTime::from_millis(60_000),
            breaker_cooldown: SimTime::from_millis(2_000),
            poison_threshold: 3,
            wedge_timeout: None,
            dlq_dir: None,
        }
    }
}

impl SupervisionCfg {
    /// The equivalent `supervise` policy configuration.
    pub fn supervisor_cfg(&self) -> supervise::SupervisorCfg {
        supervise::SupervisorCfg {
            backoff: supervise::BackoffCfg {
                base_ns: self.base_backoff.0,
                cap_ns: self.max_backoff.0,
                threshold: self.breaker_threshold,
                window_ns: self.breaker_window.0,
                cooldown_ns: self.breaker_cooldown.0,
            },
            poison_threshold: self.poison_threshold,
            wedge_timeout_ns: self.wedge_timeout.map(|t| t.0),
        }
    }
}

/// How the sharded fleet assigns block keys to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardAssign {
    /// Contiguous SFC ranges — reproduces the classic `Distribution` range
    /// partition exactly, so an unrebalanced Range run routes identically
    /// to an unsharded one.
    Range,
    /// Rendezvous (highest-random-weight) hashing with the given seed —
    /// spreads hot SFC ranges and moves only ~1/N of keys when the fleet
    /// grows.
    Hashed {
        /// Hash seed (part of the map identity; same seed → same map).
        seed: u64,
    },
}

/// A scripted live rebalance: at data version `at_version` the partition
/// map migrates `blocks` to shard `to` (a new map epoch — writes of
/// `at_version` and later go to `to`, earlier versions stay with, and are
/// replayed by, the old owner).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebalanceCfg {
    /// First data version routed by the migrated map.
    pub at_version: u32,
    /// Block grid coordinates to migrate.
    pub blocks: Vec<[u64; 3]>,
    /// Destination shard.
    pub to: usize,
}

/// Sharded staging fleet: route every put/get through an explicit versioned
/// partition map instead of the distribution's implicit range partition.
/// `None` (the default) keeps the seed's unsharded routing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardingCfg {
    /// Key → shard assignment policy.
    pub assign: ShardAssign,
    /// Optional scripted mid-run map migration.
    #[serde(default)]
    pub rebalance: Option<RebalanceCfg>,
}

/// Parameters of the staging area's own resilience (the CoREC substrate the
/// paper builds on: "the data staging can contain data resilience mechanisms
/// such as data replication or erasure coding").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StagingResilienceCfg {
    /// Protection policy for staged objects.
    pub protect: resilience::ProtectConfig,
    /// Fixed failover/detection cost before the rebuild starts.
    pub fixed: SimTime,
}

impl Default for StagingResilienceCfg {
    fn default() -> Self {
        StagingResilienceCfg {
            protect: resilience::ProtectConfig::default(),
            fixed: SimTime::from_millis(200),
        }
    }
}

/// Full experiment description.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkflowConfig {
    /// Human-readable label for reports.
    pub label: String,
    /// The coupled components (exactly one producer expected by the
    /// synthetic workloads, but the engine supports several).
    pub components: Vec<ComponentConfig>,
    /// Global domain extents.
    pub domain: [u64; 3],
    /// Staging block extents.
    pub block: [u64; 3],
    /// Space-filling curve for the staging distribution.
    pub sfc: staging::dist::Curve,
    /// Staging server count.
    pub nservers: usize,
    /// Bytes per grid point per variable (8 = one double).
    pub bytes_per_point: u64,
    /// Coupled variables per step.
    pub nvars: u32,
    /// Coupling cycles to run.
    pub total_steps: u32,
    /// Workflow-level protocol.
    pub protocol: WorkflowProtocol,
    /// Global checkpoint period under the Co protocol (time steps).
    pub coordinated_period: u32,
    /// Version retention of the *plain* staging backend (baseline keeps the
    /// latest couple of versions).
    pub plain_max_versions: usize,
    /// Interconnect cost model.
    pub net: CostModel,
    /// Staging server CPU cost model.
    pub server_costs: ServerCosts,
    /// ULFM/recovery cost model.
    pub ulfm: mpi_sim::UlfmCosts,
    /// PFS model for checkpoint I/O.
    pub pfs: ckpt::PfsModel,
    /// Failure injection plan.
    pub failures: Vec<FailureSpec>,
    /// Staging-area resilience parameters (drives rebuild times after
    /// staging-server failures).
    pub staging_resilience: StagingResilienceCfg,
    /// Checkpoint storage target for every component.
    pub ckpt_target: CkptTarget,
    /// Node-local storage model (used when `ckpt_target` is two-level).
    pub node_local: ckpt::NodeLocalModel,
    /// Optional proactive-checkpointing predictor.
    pub proactive: Option<ProactiveCfg>,
    /// Log garbage collection (disable only for the GC ablation).
    pub log_gc: bool,
    /// Replication failover pause (Hy components with replication).
    pub failover: SimTime,
    /// Staging-client re-initialization cost per rank after a restart (the
    /// paper's "tries to build RDMA connection to data staging servers" in
    /// `workflow_restart()`; client registration serializes at the staging
    /// master). A restarted component pays `ranks × reconnect_per_rank`;
    /// under Co *every* component restarts, so the whole workflow's ranks
    /// reconnect — one of the costs that grows with scale in Figure 10.
    pub reconnect_per_rank: SimTime,
    /// Engine RNG seed.
    pub seed: u64,
    /// Optional durable journaling of the staging stores (absent in the
    /// seed's configs — `#[serde(default)]` keeps old documents readable).
    #[serde(default)]
    pub durability: Option<DurabilityCfg>,
    /// Optional causal tracing (absent in the seed's configs —
    /// `#[serde(default)]` keeps old documents readable). Tracing is
    /// observational only: a traced run is event-for-event identical to the
    /// same run untraced.
    #[serde(default)]
    pub trace: Option<TraceCfg>,
    /// Optional self-healing supervision (absent in the seed's configs —
    /// `#[serde(default)]` keeps old documents readable). When enabled, a
    /// supervisor actor owns failure handling: automatic restarts with
    /// backoff, a crash-loop breaker, and dead-letter quarantine.
    #[serde(default)]
    pub supervision: Option<SupervisionCfg>,
    /// Optional sharded staging fleet (absent in the seed's configs —
    /// `#[serde(default)]` keeps old documents readable). When enabled,
    /// every put/get routes through an explicit versioned partition map;
    /// consistency windows, rollback, and GC floors are tracked per shard.
    #[serde(default)]
    pub sharding: Option<ShardingCfg>,
    /// Optional deterministic time-series telemetry (absent in the seed's
    /// configs — `#[serde(default)]` keeps old documents readable). When
    /// enabled, a virtual-time scraper actor samples the metrics registry
    /// every window and the run report carries a byte-deterministic windowed
    /// series (plus online SLO breach detection when objectives are set).
    #[serde(default)]
    pub telemetry: Option<TelemetryCfg>,
}

/// Deterministic time-series telemetry configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetryCfg {
    /// Scrape window width (virtual time). Every window boundary the
    /// scraper turns the cumulative registry into per-window activity:
    /// counter deltas, gauge closes, and exact per-window latency
    /// histograms.
    pub window: SimTime,
    /// Optional SLO objectives evaluated online, window by window. Breach
    /// instants are emitted into the obs trace as they fire.
    #[serde(default)]
    pub slo: Option<telemetry::SloCfg>,
}

impl Default for TelemetryCfg {
    fn default() -> Self {
        TelemetryCfg { window: SimTime::from_millis(1_000), slo: None }
    }
}

impl TelemetryCfg {
    /// Telemetry with `window`-wide scrape windows and no SLOs.
    pub fn windowed(window: SimTime) -> TelemetryCfg {
        TelemetryCfg { window, slo: None }
    }

    /// Attach SLO objectives on a copy.
    pub fn with_slo(mut self, slo: telemetry::SloCfg) -> TelemetryCfg {
        self.slo = Some(slo);
        self
    }
}

/// Causal-trace capture configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceCfg {
    /// Keep only the most recent `flight_cap` records (a flight recorder
    /// dumped on failure) instead of the full stream. `None` records
    /// everything — use for short runs and export; the bounded mode is for
    /// long runs where only the tail around a crash matters.
    #[serde(default)]
    pub flight_cap: Option<usize>,
}

impl TraceCfg {
    /// Record the full span stream (export-quality traces).
    pub fn full() -> TraceCfg {
        TraceCfg { flight_cap: None }
    }

    /// Keep only the most recent `cap` records (flight-recorder mode).
    pub fn flight(cap: usize) -> TraceCfg {
        TraceCfg { flight_cap: Some(cap) }
    }
}

impl WorkflowConfig {
    /// The whole-domain bounding box.
    pub fn domain_bbox(&self) -> BBox {
        BBox::whole(self.domain)
    }

    /// Total cores: components + staging (as in Tables II/III).
    pub fn total_cores(&self) -> usize {
        self.components.iter().map(|c| c.ranks).sum::<usize>() + self.nservers
    }

    /// Coupled bytes moved per time step (all vars, full subset).
    pub fn bytes_per_step(&self, subset_millis: u64) -> u64 {
        let vol = self.domain_bbox().volume();
        vol * subset_millis / 1000 * self.bytes_per_point * self.nvars as u64
    }

    /// Switch the protocol (and therefore the staging backend) on a copy.
    pub fn with_protocol(&self, protocol: WorkflowProtocol) -> WorkflowConfig {
        let mut c = self.clone();
        c.protocol = protocol;
        c.label = format!("{}/{}", self.label, protocol.label());
        c
    }

    /// Replace the failure plan on a copy.
    pub fn with_failures(&self, failures: Vec<FailureSpec>) -> WorkflowConfig {
        let mut c = self.clone();
        c.failures = failures;
        c
    }

    /// Replace the RNG seed on a copy (varies jitter and sampled failures).
    pub fn with_seed(&self, seed: u64) -> WorkflowConfig {
        let mut c = self.clone();
        c.seed = seed;
        c
    }

    /// Append a network fault-injection plan on a copy.
    pub fn with_net_faults(&self, plan: FaultPlan) -> WorkflowConfig {
        let mut c = self.clone();
        c.failures.push(FailureSpec::NetFaults { plan });
        c
    }

    /// Enable durable staging journals on a copy.
    pub fn with_durability(&self, durability: DurabilityCfg) -> WorkflowConfig {
        let mut c = self.clone();
        c.durability = Some(durability);
        c
    }

    /// Enable causal tracing on a copy.
    pub fn with_tracing(&self, trace: TraceCfg) -> WorkflowConfig {
        let mut c = self.clone();
        c.trace = Some(trace);
        c
    }

    /// Enable self-healing supervision on a copy.
    pub fn with_supervision(&self, supervision: SupervisionCfg) -> WorkflowConfig {
        let mut c = self.clone();
        c.supervision = Some(supervision);
        c
    }

    /// Set every component's recovery policy on a copy.
    pub fn with_recovery(&self, recovery: RecoveryPolicy) -> WorkflowConfig {
        let mut c = self.clone();
        for comp in &mut c.components {
            comp.recovery = recovery;
        }
        c
    }

    /// Enable the sharded staging fleet on a copy.
    pub fn with_sharding(&self, sharding: ShardingCfg) -> WorkflowConfig {
        let mut c = self.clone();
        c.sharding = Some(sharding);
        c
    }

    /// Enable deterministic time-series telemetry on a copy.
    pub fn with_telemetry(&self, telemetry: TelemetryCfg) -> WorkflowConfig {
        let mut c = self.clone();
        c.telemetry = Some(telemetry);
        c
    }

    /// The staging domain decomposition this configuration describes.
    pub fn dist(&self) -> staging::Distribution {
        staging::Distribution::with_curve(self.domain_bbox(), self.block, self.nservers, self.sfc)
    }

    /// The request router: unsharded (classic range partition) unless
    /// [`WorkflowConfig::sharding`] is set, in which case an explicit
    /// versioned partition map — including any scripted rebalance epoch —
    /// routes every block. Deterministic: the same config always builds the
    /// same router.
    pub fn build_router(&self) -> staging::Router {
        let dist = self.dist();
        let Some(sharding) = &self.sharding else {
            return staging::Router::unsharded(dist);
        };
        let base = match sharding.assign {
            ShardAssign::Range => shardmap::ShardMap::range_over(dist.codes(), dist.nservers),
            ShardAssign::Hashed { seed } => shardmap::ShardMap::hashed(dist.nservers, seed),
        };
        let mut history = shardmap::MapHistory::single(base.clone());
        if let Some(reb) = &sharding.rebalance {
            let keys: Vec<u64> =
                reb.blocks.iter().map(|&[x, y, z]| dist.block_code([x, y, z])).collect();
            history = history.with_epoch(u64::from(reb.at_version), base.migrate(&keys, reb.to));
        }
        staging::Router::sharded(dist, history)
    }

    /// Validate the failure plan against this configuration: component and
    /// server indices must exist, rates must be probabilities, windows and
    /// stalls must be non-empty.
    pub fn validate(&self) -> Result<(), String> {
        for (i, spec) in self.failures.iter().enumerate() {
            let at_spec = |msg: String| format!("failures[{i}]: {msg}");
            match spec {
                FailureSpec::At { app, .. } => {
                    if !self.components.iter().any(|c| c.app == *app) {
                        return Err(at_spec(format!("unknown victim app {app}")));
                    }
                }
                FailureSpec::Mtbf { mtbf_secs, count } => {
                    if !(mtbf_secs.is_finite() && *mtbf_secs > 0.0) {
                        return Err(at_spec(format!("MTBF must be positive, got {mtbf_secs}")));
                    }
                    if *count == 0 {
                        return Err(at_spec("MTBF failure count must be nonzero".into()));
                    }
                }
                FailureSpec::StagingAt { server, .. } => {
                    if *server >= self.nservers {
                        return Err(at_spec(format!(
                            "staging server {server} out of range ({} servers)",
                            self.nservers
                        )));
                    }
                }
                FailureSpec::NetFaults { plan } => {
                    plan.validate().map_err(|e| at_spec(format!("bad fault plan: {e}")))?;
                }
                FailureSpec::StagingStall { dur, server, .. } => {
                    if *server >= self.nservers {
                        return Err(at_spec(format!(
                            "staging server {server} out of range ({} servers)",
                            self.nservers
                        )));
                    }
                    if dur.0 == 0 {
                        return Err(at_spec("stall duration must be nonzero".into()));
                    }
                }
                FailureSpec::Cascading { first, spread, servers, .. } => {
                    if !self.components.iter().any(|c| c.app == *first) {
                        return Err(at_spec(format!("unknown first victim app {first}")));
                    }
                    if spread.0 == 0 {
                        return Err(at_spec("cascade spread must be nonzero".into()));
                    }
                    for s in servers {
                        if *s >= self.nservers {
                            return Err(at_spec(format!(
                                "staging server {s} out of range ({} servers)",
                                self.nservers
                            )));
                        }
                    }
                }
                FailureSpec::Correlated { apps, servers, .. } => {
                    if apps.is_empty() && servers.is_empty() {
                        return Err(at_spec("correlated victim list is empty".into()));
                    }
                    for app in apps {
                        if !self.components.iter().any(|c| c.app == *app) {
                            return Err(at_spec(format!("unknown victim app {app}")));
                        }
                    }
                    for s in servers {
                        if *s >= self.nservers {
                            return Err(at_spec(format!(
                                "staging server {s} out of range ({} servers)",
                                self.nservers
                            )));
                        }
                    }
                }
                FailureSpec::FailDuringRecovery { app, again_after, .. } => {
                    if !self.components.iter().any(|c| c.app == *app) {
                        return Err(at_spec(format!("unknown victim app {app}")));
                    }
                    if again_after.0 == 0 {
                        return Err(at_spec("fail-during-recovery delay must be nonzero".into()));
                    }
                    if self.supervision.is_none() {
                        return Err(at_spec(
                            "fail-during-recovery requires supervision (the \
                             unsupervised director coalesces failures during \
                             recovery)"
                                .into(),
                        ));
                    }
                }
                FailureSpec::PoisonPut { victim, step } => {
                    let Some(comp) = self.components.iter().find(|c| c.app == *victim) else {
                        return Err(at_spec(format!("unknown victim app {victim}")));
                    };
                    if !comp.role.reads() {
                        return Err(at_spec(format!("poison victim {victim} never consumes data")));
                    }
                    if *step >= self.total_steps {
                        return Err(at_spec(format!(
                            "poison step {step} out of range ({} steps)",
                            self.total_steps
                        )));
                    }
                    if self.supervision.is_none() {
                        return Err(at_spec(
                            "a poison put without supervision wedges the run; \
                             enable supervision"
                                .into(),
                        ));
                    }
                }
            }
        }
        if let Some(sharding) = &self.sharding {
            if let Some(reb) = &sharding.rebalance {
                if reb.to >= self.nservers {
                    return Err(format!(
                        "rebalance destination shard {} out of range ({} servers)",
                        reb.to, self.nservers
                    ));
                }
                if reb.at_version == 0 || reb.at_version >= self.total_steps {
                    return Err(format!(
                        "rebalance at_version {} outside 1..{} (must cut over mid-run)",
                        reb.at_version, self.total_steps
                    ));
                }
                if reb.blocks.is_empty() {
                    return Err("rebalance block list is empty".into());
                }
                let counts = self.dist().counts();
                for b in &reb.blocks {
                    if b[0] >= counts[0] || b[1] >= counts[1] || b[2] >= counts[2] {
                        return Err(format!(
                            "rebalance block {b:?} outside the {counts:?} block grid"
                        ));
                    }
                }
            }
        }
        if self.supervision.is_some() {
            if self.protocol.coordinated_checkpoints() {
                // Coordinated rollback is global by construction; a per-domain
                // supervisor restarting one component would race the
                // director's whole-workflow rollback.
                return Err("supervision composes with per-component recovery, not with the \
                     coordinated protocol's global rollback"
                    .into());
            }
            for comp in &self.components {
                if comp.recovery.needs_log() && !self.protocol.uses_logging() {
                    return Err(format!(
                        "component {} ({}): journal-replay recovery requires a \
                         logging protocol, got {}",
                        comp.app,
                        comp.name,
                        self.protocol.label()
                    ));
                }
            }
        }
        if let Some(t) = &self.telemetry {
            if t.window.0 == 0 {
                return Err("telemetry scrape window must be nonzero".into());
            }
            if let Some(slo) = &t.slo {
                slo.validate().map_err(|e| format!("telemetry SLO: {e}"))?;
            }
        }
        Ok(())
    }
}

/// The Table II setup: 256 simulation + 64 analytics + 32 staging cores,
/// 512×512×256 domain, 20 GB over 40 time steps, checkpoint periods 4 (sim)
/// and 5 (analytics), coordinated period 4.
pub fn table2(protocol: WorkflowProtocol) -> WorkflowConfig {
    let domain = [512u64, 512, 256];
    let volume: u64 = domain.iter().product();
    // 20 GB over 40 steps → 0.5 GB/step → 8 B per point (one double):
    // 512·512·256 = 67,108,864 points × 8 B = 512 MiB per step.
    let bytes_per_point = 8;
    assert_eq!(volume * bytes_per_point, 536_870_912);
    let sim_ranks = 256;
    let ana_ranks = 64;
    WorkflowConfig {
        label: format!("table2/{}", protocol.label()),
        components: vec![
            ComponentConfig {
                name: "simulation".into(),
                app: 0,
                role: Role::Producer,
                ranks: sim_ranks,
                spares: 4,
                compute_per_step: SimTime::from_millis(12_000),
                jitter: 0.03,
                // ~40 MiB of solver state per rank: checkpoint volume grows
                // with the job while the PFS does not — the classic C/R
                // scaling pressure the paper leans on.
                state_bytes: (sim_ranks as u64 * 40) << 20,
                scheme: FtScheme::CheckpointRestart { period: 4 },
                subset_millis: 1000,
                subset_pattern: SubsetPattern::Fixed,
                recovery: RecoveryPolicy::Checkpoint,
            },
            ComponentConfig {
                name: "analytics".into(),
                app: 1,
                role: Role::Consumer,
                ranks: ana_ranks,
                spares: 2,
                compute_per_step: SimTime::from_millis(2_000),
                jitter: 0.03,
                state_bytes: (ana_ranks as u64 * 40) << 20,
                scheme: FtScheme::CheckpointRestart { period: 5 },
                subset_millis: 1000,
                subset_pattern: SubsetPattern::Fixed,
                recovery: RecoveryPolicy::Checkpoint,
            },
        ],
        domain,
        block: [128, 128, 128],
        sfc: staging::dist::Curve::Morton,
        nservers: 32,
        bytes_per_point,
        nvars: 1,
        total_steps: 40,
        protocol,
        coordinated_period: 4,
        plain_max_versions: 2,
        net: CostModel::cori_like(),
        server_costs: ServerCosts::default(),
        ulfm: mpi_sim::UlfmCosts::default(),
        pfs: ckpt::PfsModel::default(),
        // MTBF = 10 min with one failure inside the 40-step window.
        failures: vec![FailureSpec::Mtbf { mtbf_secs: 600.0, count: 1 }],
        staging_resilience: StagingResilienceCfg::default(),
        ckpt_target: CkptTarget::Pfs,
        node_local: ckpt::NodeLocalModel::default(),
        proactive: None,
        log_gc: true,
        failover: SimTime::from_millis(500),
        reconnect_per_rank: SimTime::from_millis(5),
        seed: 42,
        durability: None,
        trace: None,
        supervision: None,
        sharding: None,
        telemetry: None,
    }
}

/// Table III scaling configurations. `scale` indexes the five columns:
/// 0 → 704 cores … 4 → 11,264 cores. `mtbf_secs`/`nfailures` follow the
/// paper's scalability scenarios (600/1, 300/2, 200/3).
pub fn table3(scale: usize, protocol: WorkflowProtocol, nfailures: usize) -> WorkflowConfig {
    assert!(scale < 5, "five scales: 704..11264 cores");
    let sim_ranks = 512usize << scale; // 512,1024,2048,4096,8192
    let ana_ranks = sim_ranks / 4; // 128..2048
    let nservers = sim_ranks / 8; // 64..1024
                                  // Data scales with cores: 40 GB → 640 GB per 40 steps, i.e. 1..16 GB per
                                  // step. Domain doubles one axis per scale step from 512×512×512.
    let domain = match scale {
        0 => [512, 512, 512],
        1 => [1024, 512, 512],
        2 => [1024, 1024, 512],
        3 => [1024, 1024, 1024],
        _ => [2048, 1024, 1024],
    };
    let mtbf = match nfailures {
        0 | 1 => 600.0,
        2 => 300.0,
        _ => 200.0,
    };
    WorkflowConfig {
        label: format!(
            "table3/{}cores/{}f/{}",
            sim_ranks + ana_ranks + nservers,
            nfailures,
            protocol.label()
        ),
        components: vec![
            ComponentConfig {
                name: "simulation".into(),
                app: 0,
                role: Role::Producer,
                ranks: sim_ranks,
                spares: 8,
                compute_per_step: SimTime::from_millis(15_000),
                jitter: 0.03,
                state_bytes: (sim_ranks as u64 * 40) << 20,
                scheme: FtScheme::CheckpointRestart { period: 8 },
                subset_millis: 1000,
                subset_pattern: SubsetPattern::Fixed,
                recovery: RecoveryPolicy::Checkpoint,
            },
            ComponentConfig {
                name: "analytics".into(),
                app: 1,
                role: Role::Consumer,
                ranks: ana_ranks,
                spares: 4,
                compute_per_step: SimTime::from_millis(2_500),
                jitter: 0.03,
                state_bytes: (ana_ranks as u64 * 40) << 20,
                scheme: FtScheme::CheckpointRestart { period: 10 },
                subset_millis: 1000,
                subset_pattern: SubsetPattern::Fixed,
                recovery: RecoveryPolicy::Checkpoint,
            },
        ],
        domain,
        block: [256, 256, 256],
        sfc: staging::dist::Curve::Morton,
        nservers,
        bytes_per_point: 8,
        nvars: 1,
        total_steps: 40,
        protocol,
        coordinated_period: 8,
        plain_max_versions: 2,
        net: CostModel::cori_like(),
        server_costs: ServerCosts::default(),
        ulfm: mpi_sim::UlfmCosts::default(),
        pfs: ckpt::PfsModel::default(),
        failures: vec![FailureSpec::Mtbf { mtbf_secs: mtbf, count: nfailures }],
        staging_resilience: StagingResilienceCfg::default(),
        ckpt_target: CkptTarget::Pfs,
        node_local: ckpt::NodeLocalModel::default(),
        proactive: None,
        log_gc: true,
        failover: SimTime::from_millis(500),
        reconnect_per_rank: SimTime::from_millis(5),
        seed: 42 + scale as u64,
        durability: None,
        trace: None,
        supervision: None,
        sharding: None,
        telemetry: None,
    }
}

/// A DNS/LES-style pair of coupled solvers (paper §II-A, Figure 5): two
/// simulations at different resolutions exchanging fields through staging
/// every time step, each checkpointing on its own period.
pub fn dns_les(protocol: WorkflowProtocol) -> WorkflowConfig {
    WorkflowConfig {
        label: format!("dns-les/{}", protocol.label()),
        components: vec![
            ComponentConfig {
                name: "dns".into(),
                app: 0,
                role: Role::Peer,
                ranks: 128,
                spares: 4,
                compute_per_step: SimTime::from_millis(10_000),
                jitter: 0.03,
                state_bytes: 128 * (40 << 20),
                scheme: FtScheme::CheckpointRestart { period: 4 },
                subset_millis: 1000,
                subset_pattern: SubsetPattern::Fixed,
                recovery: RecoveryPolicy::Checkpoint,
            },
            ComponentConfig {
                name: "les".into(),
                app: 1,
                role: Role::Peer,
                ranks: 32,
                spares: 2,
                compute_per_step: SimTime::from_millis(9_000),
                jitter: 0.03,
                state_bytes: 32 * (40 << 20),
                scheme: FtScheme::CheckpointRestart { period: 5 },
                subset_millis: 300, // boundary/coarse exchange, not the full domain
                subset_pattern: SubsetPattern::Fixed,
                recovery: RecoveryPolicy::Checkpoint,
            },
        ],
        domain: [256, 256, 256],
        block: [128, 128, 128],
        sfc: staging::dist::Curve::Morton,
        nservers: 16,
        bytes_per_point: 8,
        nvars: 2,
        total_steps: 12,
        protocol,
        coordinated_period: 4,
        plain_max_versions: 2,
        net: CostModel::cori_like(),
        server_costs: ServerCosts::default(),
        ulfm: mpi_sim::UlfmCosts::default(),
        pfs: ckpt::PfsModel::default(),
        failures: Vec::new(),
        staging_resilience: StagingResilienceCfg::default(),
        ckpt_target: CkptTarget::Pfs,
        node_local: ckpt::NodeLocalModel::default(),
        proactive: None,
        log_gc: true,
        failover: SimTime::from_millis(500),
        reconnect_per_rank: SimTime::from_millis(5),
        seed: 77,
        durability: None,
        trace: None,
        supervision: None,
        sharding: None,
        telemetry: None,
    }
}

/// The Figure 1 topology: one simulation fanned out to several coupled
/// consumers (secondary analysis, analytics, visualization), each with its
/// own checkpoint period.
pub fn fanout(protocol: WorkflowProtocol, nconsumers: usize) -> WorkflowConfig {
    assert!(nconsumers >= 1);
    let mut components = vec![ComponentConfig {
        name: "simulation".into(),
        app: 0,
        role: Role::Producer,
        ranks: 128,
        spares: 4,
        compute_per_step: SimTime::from_millis(8_000),
        jitter: 0.03,
        state_bytes: 128 * (40 << 20),
        scheme: FtScheme::CheckpointRestart { period: 4 },
        subset_millis: 1000,
        subset_pattern: SubsetPattern::Fixed,
        recovery: RecoveryPolicy::Checkpoint,
    }];
    for i in 0..nconsumers {
        components.push(ComponentConfig {
            name: format!("consumer-{i}"),
            app: 1 + i as u32,
            role: Role::Consumer,
            ranks: 32,
            spares: 2,
            compute_per_step: SimTime::from_millis(1_000 + 500 * i as u64),
            jitter: 0.03,
            state_bytes: 32 * (40 << 20),
            scheme: FtScheme::CheckpointRestart { period: 4 + i as u32 },
            subset_millis: 1000,
            subset_pattern: SubsetPattern::Fixed,
            recovery: RecoveryPolicy::Checkpoint,
        });
    }
    WorkflowConfig {
        label: format!("fanout{nconsumers}/{}", protocol.label()),
        components,
        domain: [256, 256, 256],
        block: [128, 128, 128],
        sfc: staging::dist::Curve::Morton,
        nservers: 16,
        bytes_per_point: 8,
        nvars: 1,
        total_steps: 12,
        protocol,
        coordinated_period: 4,
        plain_max_versions: 2,
        net: CostModel::cori_like(),
        server_costs: ServerCosts::default(),
        ulfm: mpi_sim::UlfmCosts::default(),
        pfs: ckpt::PfsModel::default(),
        failures: Vec::new(),
        staging_resilience: StagingResilienceCfg::default(),
        ckpt_target: CkptTarget::Pfs,
        node_local: ckpt::NodeLocalModel::default(),
        proactive: None,
        log_gc: true,
        failover: SimTime::from_millis(500),
        reconnect_per_rank: SimTime::from_millis(5),
        seed: 99,
        durability: None,
        trace: None,
        supervision: None,
        sharding: None,
        telemetry: None,
    }
}

/// A laptop-sized configuration for tests and the quickstart example: small
/// domain, short steps, fast to simulate.
pub fn tiny(protocol: WorkflowProtocol) -> WorkflowConfig {
    WorkflowConfig {
        label: format!("tiny/{}", protocol.label()),
        components: vec![
            ComponentConfig {
                name: "simulation".into(),
                app: 0,
                role: Role::Producer,
                ranks: 8,
                spares: 2,
                compute_per_step: SimTime::from_millis(100),
                jitter: 0.02,
                state_bytes: 8 << 20,
                scheme: FtScheme::CheckpointRestart { period: 4 },
                subset_millis: 1000,
                subset_pattern: SubsetPattern::Fixed,
                recovery: RecoveryPolicy::Checkpoint,
            },
            ComponentConfig {
                name: "analytics".into(),
                app: 1,
                role: Role::Consumer,
                ranks: 4,
                spares: 1,
                compute_per_step: SimTime::from_millis(60),
                jitter: 0.02,
                state_bytes: 4 << 20,
                scheme: FtScheme::CheckpointRestart { period: 5 },
                subset_millis: 1000,
                subset_pattern: SubsetPattern::Fixed,
                recovery: RecoveryPolicy::Checkpoint,
            },
        ],
        domain: [64, 64, 64],
        block: [32, 32, 32],
        sfc: staging::dist::Curve::Morton,
        nservers: 4,
        bytes_per_point: 8,
        nvars: 1,
        total_steps: 12,
        protocol,
        coordinated_period: 4,
        plain_max_versions: 2,
        net: CostModel::cori_like(),
        server_costs: ServerCosts::default(),
        ulfm: mpi_sim::UlfmCosts {
            detect_ns: 10_000_000, // 10 ms: keep tiny runs snappy
            ..mpi_sim::UlfmCosts::default()
        },
        pfs: ckpt::PfsModel::default(),
        failures: Vec::new(),
        staging_resilience: StagingResilienceCfg::default(),
        ckpt_target: CkptTarget::Pfs,
        node_local: ckpt::NodeLocalModel::default(),
        proactive: None,
        log_gc: true,
        failover: SimTime::from_millis(50),
        reconnect_per_rank: SimTime::from_micros(200),
        seed: 7,
        durability: None,
        trace: None,
        supervision: None,
        sharding: None,
        telemetry: None,
    }
}

/// The model checker's exploration target: the smallest workflow whose
/// schedule tree is still interesting — one producer and one consumer
/// exchanging a single staged block per step through a single staging
/// server, for three coupling steps. Every put, get, ack, and checkpoint
/// marker is a potential choice point, so bounded-depth exhaustive
/// exploration ([`crate::mcheck_mode`]) stays tractable while still
/// covering the full write-then-read consistency protocol.
pub fn micro(protocol: WorkflowProtocol) -> WorkflowConfig {
    WorkflowConfig {
        label: format!("micro/{}", protocol.label()),
        components: vec![
            ComponentConfig {
                name: "producer".into(),
                app: 0,
                role: Role::Producer,
                ranks: 2,
                spares: 1,
                compute_per_step: SimTime::from_millis(2),
                jitter: 0.0, // no compute jitter: schedule choices are the only nondeterminism
                state_bytes: 1 << 20,
                scheme: FtScheme::CheckpointRestart { period: 2 },
                subset_millis: 1000,
                subset_pattern: SubsetPattern::Fixed,
                recovery: RecoveryPolicy::Checkpoint,
            },
            ComponentConfig {
                name: "consumer".into(),
                app: 1,
                role: Role::Consumer,
                ranks: 1,
                spares: 1,
                compute_per_step: SimTime::from_millis(1),
                jitter: 0.0,
                state_bytes: 1 << 19,
                scheme: FtScheme::CheckpointRestart { period: 2 },
                subset_millis: 1000,
                subset_pattern: SubsetPattern::Fixed,
                recovery: RecoveryPolicy::Checkpoint,
            },
        ],
        domain: [32, 32, 32],
        block: [32, 32, 32], // one block per step: minimal message fan-out
        sfc: staging::dist::Curve::Morton,
        nservers: 1,
        bytes_per_point: 8,
        nvars: 1,
        total_steps: 3,
        protocol,
        coordinated_period: 2,
        plain_max_versions: 2,
        net: CostModel::cori_like(),
        server_costs: ServerCosts::default(),
        ulfm: mpi_sim::UlfmCosts {
            detect_ns: 1_000_000, // 1 ms: recoveries stay inside the short run
            ..mpi_sim::UlfmCosts::default()
        },
        pfs: ckpt::PfsModel::default(),
        failures: Vec::new(),
        staging_resilience: StagingResilienceCfg::default(),
        ckpt_target: CkptTarget::Pfs,
        node_local: ckpt::NodeLocalModel::default(),
        proactive: None,
        log_gc: true,
        failover: SimTime::from_millis(5),
        reconnect_per_rank: SimTime::from_micros(100),
        seed: 3,
        durability: None,
        trace: None,
        supervision: None,
        sharding: None,
        telemetry: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_numbers() {
        let c = table2(WorkflowProtocol::Uncoordinated);
        assert_eq!(c.total_cores(), 352);
        assert_eq!(c.components[0].ranks, 256);
        assert_eq!(c.components[1].ranks, 64);
        assert_eq!(c.nservers, 32);
        assert_eq!(c.domain, [512, 512, 256]);
        assert_eq!(c.total_steps, 40);
        // 20 GB over 40 steps.
        assert_eq!(c.bytes_per_step(1000) * 40, 20 * (1 << 30));
        assert_eq!(c.components[0].scheme.period(), Some(4));
        assert_eq!(c.components[1].scheme.period(), Some(5));
        assert_eq!(c.coordinated_period, 4);
    }

    #[test]
    fn table3_core_counts_match_paper() {
        let expect = [704, 1408, 2816, 5632, 11264];
        for (scale, &cores) in expect.iter().enumerate() {
            let c = table3(scale, WorkflowProtocol::Uncoordinated, 1);
            assert_eq!(c.total_cores(), cores, "scale {scale}");
        }
    }

    #[test]
    fn table3_data_scales() {
        // 40 GB at scale 0 doubling to 640 GB at scale 4 (per 40 steps).
        for scale in 0..5 {
            let c = table3(scale, WorkflowProtocol::Coordinated, 1);
            let total = c.bytes_per_step(1000) * c.total_steps as u64;
            assert_eq!(total, (40u64 << scale) * (1 << 30), "scale {scale}");
        }
    }

    #[test]
    fn table3_failure_plan() {
        for (n, mtbf) in [(1usize, 600.0), (2, 300.0), (3, 200.0)] {
            let c = table3(0, WorkflowProtocol::Uncoordinated, n);
            match &c.failures[0] {
                FailureSpec::Mtbf { mtbf_secs, count } => {
                    assert_eq!(*count, n);
                    assert!((mtbf_secs - mtbf).abs() < 1e-9);
                }
                _ => panic!("expected MTBF spec"),
            }
        }
    }

    #[test]
    fn with_protocol_relabels() {
        let c = tiny(WorkflowProtocol::FailureFree);
        let u = c.with_protocol(WorkflowProtocol::Uncoordinated);
        assert_eq!(u.protocol, WorkflowProtocol::Uncoordinated);
        assert!(u.label.ends_with("/Un"));
    }

    #[test]
    fn bytes_per_step_subsets() {
        let c = table2(WorkflowProtocol::FailureFree);
        let full = c.bytes_per_step(1000) as f64;
        let fifth = c.bytes_per_step(200) as f64;
        let ratio = fifth * 5.0 / full;
        assert!((ratio - 1.0).abs() < 0.02, "ratio {ratio}");
    }

    fn plan(drop: f64) -> FaultPlan {
        FaultPlan {
            seed: 9,
            rates: faultplane::FaultRates { drop, ..Default::default() },
            windows: vec![faultplane::FaultWindow { from_msg: 0, to_msg: 100 }],
        }
    }

    #[test]
    fn failure_spec_serde_round_trips() {
        let cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![
            FailureSpec::At { at: SimTime::from_millis(10), app: 0 },
            FailureSpec::Mtbf { mtbf_secs: 300.0, count: 2 },
            FailureSpec::StagingAt { at: SimTime::from_millis(20), server: 1 },
            FailureSpec::NetFaults { plan: plan(0.25) },
            FailureSpec::StagingStall {
                at: SimTime::from_millis(30),
                dur: SimTime::from_millis(5),
                server: 2,
            },
        ]);
        assert!(cfg.validate().is_ok());
        let json = serde_json::to_string(&cfg).unwrap();
        let back: WorkflowConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.failures.len(), cfg.failures.len());
        match (&back.failures[3], &cfg.failures[3]) {
            (FailureSpec::NetFaults { plan: a }, FailureSpec::NetFaults { plan: b }) => {
                assert_eq!(a, b, "fault plan survives the round trip");
            }
            _ => panic!("variant order changed"),
        }
        // Full-config byte equality: serializing the deserialized config
        // reproduces the original document.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn validate_rejects_bad_fault_plans() {
        let base = tiny(WorkflowProtocol::Uncoordinated);
        // Negative rate.
        let bad = base.with_net_faults(plan(-0.1));
        let err = bad.validate().unwrap_err();
        assert!(err.contains("bad fault plan"), "{err}");
        // Rate above one.
        assert!(base.with_net_faults(plan(1.5)).validate().is_err());
        // Empty (inverted) window.
        let mut p = plan(0.1);
        p.windows = vec![faultplane::FaultWindow { from_msg: 50, to_msg: 10 }];
        assert!(base.with_net_faults(p).validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_indices_and_stalls() {
        let base = tiny(WorkflowProtocol::Uncoordinated); // 4 servers, apps 0/1
        let bad_app =
            base.with_failures(vec![FailureSpec::At { at: SimTime::from_millis(1), app: 99 }]);
        assert!(bad_app.validate().unwrap_err().contains("unknown victim"));
        let bad_server =
            base.with_failures(vec![FailureSpec::StagingAt { at: SimTime::ZERO, server: 4 }]);
        assert!(bad_server.validate().unwrap_err().contains("out of range"));
        let zero_stall = base.with_failures(vec![FailureSpec::StagingStall {
            at: SimTime::ZERO,
            dur: SimTime::ZERO,
            server: 0,
        }]);
        assert!(zero_stall.validate().unwrap_err().contains("nonzero"));
        let bad_mtbf = base.with_failures(vec![FailureSpec::Mtbf { mtbf_secs: -1.0, count: 1 }]);
        assert!(bad_mtbf.validate().unwrap_err().contains("positive"));
    }

    #[test]
    fn supervised_failure_specs_round_trip_and_validate() {
        let cfg = tiny(WorkflowProtocol::Uncoordinated)
            .with_supervision(SupervisionCfg::default())
            .with_failures(vec![
                FailureSpec::Cascading {
                    at: SimTime::from_millis(10),
                    first: 0,
                    spread: SimTime::from_millis(50),
                    servers: vec![],
                },
                FailureSpec::Correlated {
                    at: SimTime::from_millis(20),
                    apps: vec![0, 1],
                    servers: vec![1],
                },
                FailureSpec::FailDuringRecovery {
                    at: SimTime::from_millis(30),
                    app: 1,
                    again_after: SimTime::from_millis(5),
                },
                FailureSpec::PoisonPut { victim: 1, step: 3 },
            ]);
        assert!(cfg.validate().is_ok());
        let json = serde_json::to_string(&cfg).unwrap();
        let back: WorkflowConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        assert!(back.supervision.is_some());
    }

    #[test]
    fn supervised_spec_validation_rejections() {
        let base = tiny(WorkflowProtocol::Uncoordinated);
        let sup = base.with_supervision(SupervisionCfg::default());
        // Cascading: unknown first victim / zero spread.
        assert!(sup
            .with_failures(vec![FailureSpec::Cascading {
                at: SimTime::ZERO,
                first: 99,
                spread: SimTime::from_millis(1),
                servers: vec![],
            }])
            .validate()
            .unwrap_err()
            .contains("unknown first victim"));
        assert!(sup
            .with_failures(vec![FailureSpec::Cascading {
                at: SimTime::ZERO,
                first: 0,
                spread: SimTime::ZERO,
                servers: vec![],
            }])
            .validate()
            .unwrap_err()
            .contains("nonzero"));
        // Correlated: empty list.
        assert!(sup
            .with_failures(vec![FailureSpec::Correlated {
                at: SimTime::ZERO,
                apps: vec![],
                servers: vec![],
            }])
            .validate()
            .unwrap_err()
            .contains("empty"));
        // Shard targets must exist (tiny has 4 servers).
        assert!(sup
            .with_failures(vec![FailureSpec::Correlated {
                at: SimTime::ZERO,
                apps: vec![0],
                servers: vec![4],
            }])
            .validate()
            .unwrap_err()
            .contains("out of range"));
        // Fail-during-recovery and poison need supervision.
        assert!(base
            .with_failures(vec![FailureSpec::FailDuringRecovery {
                at: SimTime::ZERO,
                app: 0,
                again_after: SimTime::from_millis(1),
            }])
            .validate()
            .unwrap_err()
            .contains("supervision"));
        assert!(base
            .with_failures(vec![FailureSpec::PoisonPut { victim: 1, step: 1 }])
            .validate()
            .unwrap_err()
            .contains("supervision"));
        // Poison victim must consume data; step must exist.
        assert!(sup
            .with_failures(vec![FailureSpec::PoisonPut { victim: 0, step: 1 }])
            .validate()
            .unwrap_err()
            .contains("never consumes"));
        assert!(sup
            .with_failures(vec![FailureSpec::PoisonPut { victim: 1, step: 999 }])
            .validate()
            .unwrap_err()
            .contains("out of range"));
        // Supervision cannot ride the coordinated protocol's global rollback.
        let co = tiny(WorkflowProtocol::Coordinated).with_supervision(SupervisionCfg::default());
        assert!(co.validate().unwrap_err().contains("coordinated"));
        // Journal-replay recovery requires a logging protocol.
        let bad = tiny(WorkflowProtocol::Individual)
            .with_supervision(SupervisionCfg::default())
            .with_recovery(RecoveryPolicy::JournalReplay);
        assert!(bad.validate().unwrap_err().contains("logging"));
        let ok = tiny(WorkflowProtocol::Uncoordinated)
            .with_supervision(SupervisionCfg::default())
            .with_recovery(RecoveryPolicy::JournalReplay);
        assert!(ok.validate().is_ok());
    }
}
