//! Model-checker runner mode: the workflow engine as an [`mcheck::Model`].
//!
//! [`runner::build`] produces a fully wired engine that has not dispatched a
//! single event yet — exactly what stateless exploration needs. This module
//! wraps it as a [`Model`]: every [`Model::build`] call reconstructs the
//! identical engine, optionally installs the enumerable fault space
//! ([`faultplane::FaultSpace`]) on the network, routes crash timing through a
//! `Timing` choice point, and (for oracle self-tests) arms the seeded
//! replay-version-skew violation. The oracles encode the paper's invariants:
//!
//! * **replay-version-fidelity** — a replayed get must serve data whose
//!   digest matches the logged original (paper §III-A.1's digest check);
//! * **redundant-put-absorption** — a put is absorbed only while its issuer
//!   is replaying; absorbing a normal write would silently lose data;
//! * **gc-safety** — the GC floor never passes any component's checkpoint
//!   mark (collecting above a laggard's mark would break its rollback), and
//!   reclaimed bytes never regress;
//! * **checkpoint-marker-monotonicity** — per-app event-queue checkpoint
//!   markers (`w_chk_id`, covered version) never move backwards, even under
//!   duplicated or reordered control messages;
//! * **cross-shard-conservation** — in a sharded fleet, every logged piece
//!   is owned by exactly one shard: no block double-routed, no rebalance
//!   that leaves a stale owner still accepting writes.

use crate::backend::AnyBackend;
use crate::config::WorkflowConfig;
use crate::report::RunReport;
use crate::runner;
use faultplane::FaultSpace;
use mcheck::{ExploreConfig, ExploreOutcome, Explorer, FnOracle, Model, Oracle, Schedule};
use net::des::Network;
use sim_core::choice::ChoiceKind;
use sim_core::engine::{Actor, Ctx, Engine, Event};
use sim_core::time::SimTime;
use staging::server::StagingServerActor;
use std::collections::BTreeMap;
use wfcr::backend::LoggingBackend;

/// One candidate component crash the controlled scheduler may inject.
#[derive(Debug, Clone, Copy)]
pub struct CrashChoice {
    /// Crash time (relative to the start of the run).
    pub at: SimTime,
    /// Victim component.
    pub app: u32,
}

/// Knobs of a model-checking run, beyond the workflow configuration.
#[derive(Debug, Clone)]
pub struct McheckOptions {
    /// Budgeted message faults surfaced as enumerable `Fault` choice points
    /// on the DES network (`None`: no fault choices).
    pub fault_space: Option<FaultSpace>,
    /// Candidate crashes; each run the scheduler picks at most one via a
    /// `Timing` choice point (pick 0 — the canonical default — is "none").
    pub crash_choices: Vec<CrashChoice>,
    /// Seeded violation: skew the version served for replayed gets by this
    /// much (see [`LoggingBackend::set_replay_version_skew`]). Used to prove
    /// the fidelity oracle actually fires; 0 in real checking runs.
    pub replay_version_skew: u32,
    /// Per-schedule event budget (wedge guard).
    pub max_events: u64,
}

impl Default for McheckOptions {
    fn default() -> Self {
        McheckOptions {
            fault_space: None,
            crash_choices: Vec::new(),
            replay_version_skew: 0,
            max_events: 400_000,
        }
    }
}

/// Kickoff message for the crash injector.
struct InjectorKick;

/// Routes crash/restart timing through the choice plane: on kickoff it asks
/// the scheduler to pick one of the candidate crashes (or none) and schedules
/// the chosen `Fail`. Outside a controlled run the default pick is "none", so
/// the injector is inert in ordinary executions.
struct CrashInjector {
    choices: Vec<CrashChoice>,
    /// `(app, component actor id)` victim lookup.
    targets: Vec<(u32, usize)>,
}

impl Actor for CrashInjector {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, _ev: Event) {
        let pick = ctx.choose(ChoiceKind::Timing, self.choices.len() + 1);
        if pick == 0 {
            return;
        }
        let c = self.choices[pick - 1];
        let target =
            self.targets.iter().find(|&&(app, _)| app == c.app).expect("crash victim exists").1;
        // Kickoff runs at t=0, so the crash time is also the delay.
        ctx.send_after(c.at, target, crate::component::Fail);
    }

    fn fingerprint(&self) -> Option<u64> {
        Some(0) // stateless after kickoff
    }
}

/// A workflow configuration plus model-checking knobs, explorable by
/// [`mcheck::Explorer`].
pub struct WorkflowModel {
    cfg: WorkflowConfig,
    opts: McheckOptions,
}

impl WorkflowModel {
    /// Wrap `cfg` for exploration.
    pub fn new(cfg: WorkflowConfig, opts: McheckOptions) -> WorkflowModel {
        WorkflowModel { cfg, opts }
    }

    /// Staging-server actor ids, derivable without building: `build`
    /// registers components first, then servers (see [`runner::build`]).
    fn server_actor_ids(&self) -> Vec<usize> {
        let ncomp = self.cfg.components.len();
        (ncomp..ncomp + self.cfg.nservers).collect()
    }
}

/// Visit every logging staging server of `engine`.
fn for_each_logging(
    engine: &Engine,
    server_ids: &[usize],
    mut f: impl FnMut(usize, &LoggingBackend) -> Result<(), String>,
) -> Result<(), String> {
    for &sid in server_ids {
        let s =
            engine.actor_as::<StagingServerActor<AnyBackend>>(sid).expect("staging server actor");
        if let Some(lb) = s.logic().backend().as_logging() {
            f(sid, lb)?;
        }
    }
    Ok(())
}

/// The paper invariants (plus fleet conservation) as oracles over a set of
/// staging servers.
pub fn consistency_oracles(server_ids: Vec<usize>) -> Vec<Box<dyn Oracle>> {
    let ids = server_ids.clone();
    let fidelity = FnOracle::new("replay-version-fidelity", move |e: &Engine| {
        for_each_logging(e, &ids, |sid, lb| {
            let m = lb.digest_mismatches();
            if m > 0 {
                return Err(format!(
                    "server {sid}: {m} replay digest mismatch(es) — a replayed get served \
                     data that does not match the logged original"
                ));
            }
            Ok(())
        })
    });

    let ids = server_ids.clone();
    let mut absorb_state: BTreeMap<usize, (u64, bool)> = BTreeMap::new();
    let absorption = FnOracle::new("redundant-put-absorption", move |e: &Engine| {
        for_each_logging(e, &ids, |sid, lb| {
            let replaying = !lb.replaying_apps().is_empty();
            let absorbed = lb.absorbed_puts();
            let (last, was) = absorb_state.get(&sid).copied().unwrap_or((0, false));
            absorb_state.insert(sid, (absorbed, replaying));
            if absorbed > last && !was && !replaying {
                return Err(format!(
                    "server {sid}: absorbed-put counter grew {last} -> {absorbed} outside \
                     any replay window — a normal write was swallowed"
                ));
            }
            Ok(())
        })
    });

    let ids = server_ids.clone();
    let mut reclaimed_state: BTreeMap<usize, u64> = BTreeMap::new();
    let gc = FnOracle::new("gc-safety", move |e: &Engine| {
        for_each_logging(e, &ids, |sid, lb| {
            let floor = lb.gc_floor();
            for (app, mark) in lb.gc_marks() {
                if floor > mark {
                    return Err(format!(
                        "server {sid}: GC floor {floor} passed app {app}'s checkpoint \
                         mark {mark} — a rollback of {app} could need collected versions"
                    ));
                }
            }
            let r = lb.gc_reclaimed();
            let last = reclaimed_state.get(&sid).copied().unwrap_or(0);
            if r < last {
                return Err(format!("server {sid}: reclaimed bytes regressed {last} -> {r}"));
            }
            reclaimed_state.insert(sid, r);
            Ok(())
        })
    });

    let ids = server_ids.clone();
    let mut marker_state: BTreeMap<(usize, u32), (u64, u32)> = BTreeMap::new();
    let markers = FnOracle::new("checkpoint-marker-monotonicity", move |e: &Engine| {
        for_each_logging(e, &ids, |sid, lb| {
            for app in lb.queue_apps() {
                let Some(q) = lb.queue(app) else { continue };
                let id = q.last_w_chk_id().unwrap_or(0);
                let v = q.checkpoint_version().unwrap_or(0);
                if let Some(&(pid, pv)) = marker_state.get(&(sid, app)) {
                    if id < pid || v < pv {
                        return Err(format!(
                            "server {sid}, app {app}: checkpoint marker regressed \
                             (w_chk_id {pid} -> {id}, version {pv} -> {v})"
                        ));
                    }
                }
                marker_state.insert((sid, app), (id, v));
            }
            Ok(())
        })
    });

    let ids = server_ids.clone();
    let conservation = FnOracle::new("cross-shard-conservation", move |e: &Engine| {
        // Sharded-fleet conservation: every logged piece (app, var, version,
        // block origin) is owned by exactly one shard. A key may legitimately
        // repeat *within* one shard's log — redundant replay writes are
        // logged again for replay verification — but the same key appearing
        // on two different shards means a put was double-routed (or a
        // rebalance migrated a block without retiring the old owner).
        let mut owned: Vec<(usize, wfcr::PieceKey)> = Vec::new();
        for_each_logging(e, &ids, |sid, lb| {
            owned.extend(wfcr::logged_put_keys(lb).into_iter().map(|k| (sid, k)));
            Ok(())
        })?;
        mcheck::disjoint_owners(owned)
    });

    let ids = server_ids;
    let no_lost = FnOracle::new("no-lost-event", move |e: &Engine| {
        for_each_logging(e, &ids, |sid, lb| {
            // Transport-event conservation (the peek-before-commit
            // invariant): every event ever appended to an app's queue is
            // either still live for replay or was committed away by a
            // checkpoint truncation — restarts and quarantines must not
            // leak any third fate.
            for app in lb.queue_apps() {
                let Some(q) = lb.queue(app) else { continue };
                let appended = q.appended_transport();
                let committed = q.committed();
                let live = q.transport_len() as u64;
                if appended != committed + live {
                    return Err(format!(
                        "server {sid}, app {app}: transport-event conservation broken — \
                         appended {appended} != committed {committed} + live {live} \
                         (an event was lost or double-truncated)"
                    ));
                }
            }
            Ok(())
        })
    });

    vec![
        Box::new(fidelity),
        Box::new(absorption),
        Box::new(gc),
        Box::new(markers),
        Box::new(conservation),
        Box::new(no_lost),
    ]
}

impl Model for WorkflowModel {
    fn build(&self) -> Engine {
        let mut b = runner::build(&self.cfg);
        if let Some(space) = self.opts.fault_space {
            b.engine
                .actor_as_mut::<Network>(b.net_id)
                .expect("network actor")
                .set_fault_space(space);
        }
        if self.opts.replay_version_skew > 0 {
            for &sid in &b.server_ids {
                let s = b
                    .engine
                    .actor_as_mut::<StagingServerActor<AnyBackend>>(sid)
                    .expect("staging server actor");
                if let Some(lb) = s.logic_mut().backend_mut().as_logging_mut() {
                    lb.set_replay_version_skew(self.opts.replay_version_skew);
                }
            }
        }
        if !self.opts.crash_choices.is_empty() {
            let targets =
                b.cfg.components.iter().zip(&b.comp_ids).map(|(c, &id)| (c.app, id)).collect();
            let inj = b.engine.add_actor(Box::new(CrashInjector {
                choices: self.opts.crash_choices.clone(),
                targets,
            }));
            b.engine.schedule_at(SimTime::ZERO, inj, InjectorKick);
        }
        b.engine
    }

    fn oracles(&self) -> Vec<Box<dyn Oracle>> {
        consistency_oracles(self.server_actor_ids())
    }

    fn max_events(&self) -> u64 {
        self.opts.max_events
    }

    fn label(&self) -> String {
        self.cfg.label.clone()
    }
}

/// The mcheck runner mode: explore the schedule tree of `cfg` under `opts`,
/// then stamp the exploration counters into a canonical-schedule
/// [`RunReport`] (the all-defaults schedule is the ordinary seeded run).
pub fn explore(
    cfg: &WorkflowConfig,
    opts: McheckOptions,
    ecfg: ExploreConfig,
) -> (ExploreOutcome, RunReport) {
    let model = WorkflowModel::new(cfg.clone(), opts);
    let outcome = Explorer::new(ecfg).explore(&model);
    let mut report = runner::run(cfg);
    report.schedules_explored = outcome.schedules_explored;
    report.states_pruned = outcome.states_pruned;
    (outcome, report)
}

/// Re-execute a stored `.schedule` against `cfg`+`opts`. Returns the violated
/// oracle `(name, message)`, or `None` when the schedule runs clean — the
/// entry point regression tests use to replay minimized counterexamples.
pub fn replay_schedule(
    cfg: &WorkflowConfig,
    opts: McheckOptions,
    schedule: &Schedule,
) -> Option<(String, String)> {
    let model = WorkflowModel::new(cfg.clone(), opts);
    let ex = Explorer::new(ExploreConfig { minimize: false, ..ExploreConfig::default() });
    ex.check_picks(&model, &schedule.picks())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::micro;
    use wfcr::protocol::WorkflowProtocol;

    #[test]
    fn micro_config_completes_under_plain_run() {
        let r = runner::run(&micro(WorkflowProtocol::Uncoordinated));
        assert_eq!(r.finish_times_s.len(), 2);
        // 3 steps × 1 block per component.
        assert_eq!(r.puts, 3);
        assert_eq!(r.gets, 3);
        assert_eq!(r.digest_mismatches, 0);
        assert_eq!(r.schedules_explored, 0, "plain runs do not explore");
    }

    #[test]
    fn model_rebuilds_identically() {
        let model = WorkflowModel::new(micro(WorkflowProtocol::Uncoordinated), Default::default());
        let mut a = model.build();
        let mut b = model.build();
        a.run_limited(u64::MAX);
        b.run_limited(u64::MAX);
        assert_eq!(a.dispatched(), b.dispatched());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn crash_injector_is_inert_without_a_controlled_scheduler() {
        let cfg = micro(WorkflowProtocol::Uncoordinated);
        let opts = McheckOptions {
            crash_choices: vec![CrashChoice { at: SimTime::from_millis(5), app: 1 }],
            ..Default::default()
        };
        let model = WorkflowModel::new(cfg.clone(), opts);
        let mut eng = model.build();
        eng.run_limited(u64::MAX);
        // Default pick 0 = no crash: same event count as the plain run plus
        // the injector kickoff itself.
        let mut plain = runner::build(&cfg);
        plain.engine.run_limited(u64::MAX);
        assert_eq!(eng.dispatched(), plain.engine.dispatched() + 1);
    }
}
