//! Build an engine from a [`WorkflowConfig`], run it, distill a
//! [`RunReport`].

use crate::backend::AnyBackend;
use crate::component::{ComponentActor, Fail, StartStep};
use crate::config::{FailureSpec, WorkflowConfig};
use crate::director::{Director, DirectorComponent};
use crate::report::RunReport;
use net::des::{Network, NetworkHandle};
use sim_core::engine::Engine;
use sim_core::time::SimTime;
use staging::server::StagingServerActor;
use staging::service::ServerLogic;
use wfcr::protocol::{FtScheme, WorkflowProtocol};

/// Safety valve: a run dispatching more events than this is assumed wedged.
const MAX_EVENTS: u64 = 200_000_000;

/// Resolve every [`FailureSpec::Mtbf`] into concrete [`FailureSpec::At`]
/// entries. Deterministic given `cfg.seed`, and independent of the protocol,
/// so the *same* failures can be injected into Co/Un/Hy/In variants of one
/// experiment — the apples-to-apples comparison the paper's figures assume.
pub fn materialize_failures(cfg: &WorkflowConfig) -> Vec<FailureSpec> {
    let mut frng = sim_core::rng::Xoshiro256StarStar::seed_from_u64(cfg.seed ^ 0xFA11);
    // Rough run-length estimate for keeping sampled failures inside the run
    // window (the paper injects failures "within 40 time steps").
    let est =
        cfg.components.iter().map(|c| c.compute_per_step.as_secs_f64()).fold(0.0_f64, f64::max)
            * cfg.total_steps as f64
            * 1.15;
    let total_ranks: u64 = cfg.components.iter().map(|c| c.ranks as u64).sum();
    let mut out = Vec::new();
    for spec in &cfg.failures {
        match spec {
            FailureSpec::At { .. }
            | FailureSpec::StagingAt { .. }
            | FailureSpec::StagingStall { .. }
            | FailureSpec::NetFaults { .. }
            | FailureSpec::Cascading { .. }
            | FailureSpec::Correlated { .. }
            | FailureSpec::FailDuringRecovery { .. }
            | FailureSpec::PoisonPut { .. } => out.push(spec.clone()),
            FailureSpec::Mtbf { mtbf_secs, count } => {
                let mut t = 0.0;
                for _ in 0..*count {
                    // Exponential inter-arrival, rejected back into the run
                    // window.
                    let mut dt = frng.next_exponential(*mtbf_secs);
                    let mut tries = 0;
                    while t + dt > est * 0.9 && tries < 100 {
                        dt = frng.next_exponential(*mtbf_secs);
                        tries += 1;
                    }
                    if t + dt > est * 0.9 {
                        dt = est * 0.5 * frng.next_f64();
                        t = 0.0;
                    }
                    t += dt;
                    // Victim weighted by rank count.
                    let pick = frng.next_bounded(total_ranks);
                    let mut acc = 0u64;
                    let mut victim = 0usize;
                    for (i, c) in cfg.components.iter().enumerate() {
                        acc += c.ranks as u64;
                        if pick < acc {
                            victim = i;
                            break;
                        }
                    }
                    out.push(FailureSpec::At {
                        at: SimTime::from_secs_f64(t),
                        app: cfg.components[victim].app,
                    });
                }
            }
        }
    }
    out
}

/// A fully wired engine, paused before its first event, plus the actor ids
/// needed to drive and harvest it. Produced by [`build`]; the normal runner
/// immediately executes it, while the model-checking mode
/// ([`crate::mcheck_mode`]) first installs a controlled scheduler, fault
/// spaces, or seeded violations.
pub struct BuiltWorkflow {
    /// The engine with kickoff events scheduled but not yet dispatched.
    pub engine: Engine,
    /// The resolved configuration (hybrid replication substitution applied).
    pub cfg: WorkflowConfig,
    /// Component actor ids, in `cfg.components` order.
    pub comp_ids: Vec<usize>,
    /// Staging server actor ids, in server-index order.
    pub server_ids: Vec<usize>,
    /// Director actor id.
    pub dir_id: usize,
    /// Network actor id.
    pub net_id: usize,
    /// The shared recorder every actor writes spans into. Disabled (all
    /// operations no-ops) unless `cfg.trace` asks for recording.
    pub tracer: obs::Tracer,
    /// Supervisor actor id, when `cfg.supervision` enables supervision.
    pub sup_id: Option<usize>,
    /// Telemetry scraper actor id, when `cfg.telemetry` enables the
    /// windowed time series.
    pub tel_id: Option<usize>,
}

/// Execute one workflow run and report.
pub fn run(cfg: &WorkflowConfig) -> RunReport {
    let mut built = build(cfg);
    built.engine.run_limited(MAX_EVENTS);
    harvest(&mut built)
}

/// Execute one workflow run and return both the report and the recorded
/// trace. The trace is empty unless `cfg.trace` enables recording (see
/// [`crate::config::TraceCfg`]); with a flight-recorder cap only the last
/// `cap` records survive.
pub fn run_traced(cfg: &WorkflowConfig) -> (RunReport, obs::Trace) {
    let mut built = build(cfg);
    built.engine.run_limited(MAX_EVENTS);
    let report = harvest(&mut built);
    (report, built.tracer.finish())
}

/// Construct the fully wired engine for `cfg`: actors, endpoints, failure
/// plan, and kickoff events — everything up to (but excluding) the first
/// dispatched event.
pub fn build(cfg: &WorkflowConfig) -> BuiltWorkflow {
    let mut cfg = cfg.clone();
    // Under the hybrid protocol the analytics components use process
    // replication (paper §III-B: "a simulation employs checkpoint/restart
    // approach meanwhile the analytic uses process replication").
    if cfg.protocol == WorkflowProtocol::Hybrid {
        for c in cfg.components.iter_mut() {
            if c.role == crate::config::Role::Consumer {
                c.scheme = FtScheme::Replication { replicas: 2 };
            }
        }
    }

    let mut engine = Engine::new(cfg.seed);
    let mut network = Network::new(cfg.net);
    let apps: Vec<u32> = cfg.components.iter().map(|c| c.app).collect();
    // Observability: one shared recorder, cloned into every actor. Span ids
    // and timestamps come from the engine's virtual clock and dispatch
    // counter, so recording is deterministic and cannot perturb the run.
    let tracer = match &cfg.trace {
        None => obs::Tracer::off(),
        Some(t) => match t.flight_cap {
            None => obs::Tracer::full(),
            Some(cap) => obs::Tracer::flight(cap),
        },
    };

    // 1. Component actors.
    let mut comp_ids = Vec::new();
    for c in &cfg.components {
        let rng = engine.rng_mut().split();
        let actor = ComponentActor::new(&cfg, c.clone(), rng);
        comp_ids.push(engine.add_actor(Box::new(actor)));
    }

    // 2. Staging server actors. With durability on, each server's backend
    // journals its history through a segmented log store: real files under
    // `dir/server{i}` or per-server in-memory media when no dir is given.
    let mut server_ids = Vec::new();
    for s in 0..cfg.nservers {
        let mut backend = AnyBackend::for_protocol_with_gc(
            cfg.protocol,
            cfg.plain_max_versions,
            &apps,
            cfg.log_gc,
        );
        if let Some(d) = &cfg.durability {
            let media: Box<dyn logstore::Media> = match &d.dir {
                Some(dir) => Box::new(
                    logstore::FsMedia::new(std::path::Path::new(dir).join(format!("server{s}")))
                        .expect("create durable journal directory"),
                ),
                None => Box::new(logstore::MemMedia::new()),
            };
            let log = logstore::LogStore::open(media, d.log_config())
                .expect("open durable staging journal");
            backend.attach_journal_coalesced(Box::new(log), d.coalesce);
        }
        let logic = ServerLogic::new(backend, cfg.server_costs);
        let actor = StagingServerActor::new(s, logic, NetworkHandle { actor: 0 }, 0);
        server_ids.push(engine.add_actor(Box::new(actor)));
    }

    // 3. Director.
    let dir_components: Vec<DirectorComponent> = cfg
        .components
        .iter()
        .zip(&comp_ids)
        .map(|(c, &actor)| DirectorComponent {
            app: c.app,
            actor,
            ranks: c.ranks,
            spares: c.spares,
            state_bytes: c.state_bytes,
        })
        .collect();
    let director = Director::new(
        dir_components,
        cfg.ulfm.collectives,
        cfg.ulfm,
        cfg.pfs,
        cfg.ckpt_target,
        cfg.node_local,
        cfg.reconnect_per_rank,
    );
    let dir_id = engine.add_actor(Box::new(director));

    // 4. Endpoints, then the network actor itself.
    let comp_eps: Vec<usize> = comp_ids.iter().map(|&id| network.register(id)).collect();
    let server_eps: Vec<usize> = server_ids.iter().map(|&id| network.register(id)).collect();
    let dir_ep = network.register(dir_id);
    // Network fault injection (independent of the protocol): install the
    // plan before the network actor is registered, and exempt the director's
    // coordination channel — the faulted surface is the staging data path.
    let fault_plan = cfg.failures.iter().find_map(|s| match s {
        FailureSpec::NetFaults { plan } => Some(plan.clone()),
        _ => None,
    });
    if let Some(plan) = &fault_plan {
        plan.validate().expect("invalid network fault plan");
        network.set_fault_plan(plan.clone());
        network.exempt_from_faults(dir_ep);
    }
    let net_id = engine.add_actor(Box::new(network));
    let handle = NetworkHandle { actor: net_id };

    // 4b. Supervisor (supervised runs only). Registered after the network
    // actor so the component/server actor-id layout mcheck depends on is
    // untouched.
    let sup_id = cfg.supervision.as_ref().map(|s| {
        let dlq = match &s.dlq_dir {
            Some(dir) => {
                let media = Box::new(
                    logstore::FsMedia::new(std::path::Path::new(dir))
                        .expect("create dead-letter directory"),
                );
                supervise::DeadLetterQueue::with_sink(media, logstore::LogConfig::default())
                    .expect("open dead-letter queue")
            }
            None => supervise::DeadLetterQueue::new(),
        };
        let mut sup = crate::supervisor_actor::SupervisorActor::new(s.supervisor_cfg(), dlq);
        for (i, c) in cfg.components.iter().enumerate() {
            sup.watch_component(c.app, comp_ids[i], c.recovery);
        }
        for srv in 0..cfg.nservers {
            sup.watch_server(srv as u32);
        }
        sup.set_tracer(tracer.clone());
        engine.add_actor(Box::new(sup))
    });
    if let (Some(sid), Some(s)) = (sup_id, &cfg.supervision) {
        if let Some(timeout) = s.wedge_timeout {
            engine.schedule_at(timeout, sid, crate::supervisor_actor::WedgeScan);
        }
    }

    // 5. Wire everyone.
    for (i, &cid) in comp_ids.iter().enumerate() {
        let c = engine.actor_as_mut::<ComponentActor>(cid).expect("component actor");
        c.wire(handle, comp_eps[i], server_eps.clone(), dir_id);
        c.set_tracer(tracer.clone());
        if let Some(sid) = sup_id {
            c.set_supervisor(sid);
        }
        if fault_plan.is_some() {
            // Unlimited attempts: virtual time is free, and a wedge from an
            // exhausted budget would mask the fault being studied. Bases are
            // sized to the DES transport's ms-scale RTTs.
            c.enable_retry(faultplane::RetryPolicy {
                max_attempts: 0,
                base_ns: 20_000_000, // 20 ms
                cap_ns: 160_000_000, // 160 ms
                deadline_ns: 0,
                seed: cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            });
        }
    }
    for (i, &srv_id) in server_ids.iter().enumerate() {
        let s =
            engine.actor_as_mut::<StagingServerActor<AnyBackend>>(srv_id).expect("server actor");
        s.wire(handle, server_eps[i]);
        s.set_tracer(tracer.clone());
        if let Some(sid) = sup_id {
            s.set_supervisor(sid);
        }
    }
    let dir = engine.actor_as_mut::<Director>(dir_id).expect("director");
    dir.wire(handle, dir_ep, server_eps.clone());
    dir.set_tracer(tracer.clone());

    // 5a. Poison inputs: not scheduled events but standing state — the
    // victim dies every time it processes the poisoned step's input, until
    // the supervisor quarantines it (validate() requires supervision).
    for spec in &cfg.failures {
        if let FailureSpec::PoisonPut { victim, step } = spec {
            let idx =
                cfg.components.iter().position(|c| c.app == *victim).expect("poison victim exists");
            let c = engine.actor_as_mut::<ComponentActor>(comp_ids[idx]).expect("component actor");
            c.set_poison(*step);
        }
    }

    // 5b. Transient staging stalls: perturbations, not failures, so they are
    // scheduled regardless of the protocol (even FailureFree serves through
    // a stall — nothing is lost).
    for spec in &cfg.failures {
        if let FailureSpec::StagingStall { at, dur, server } = spec {
            assert!(*server < server_ids.len(), "staging stall server index");
            engine.schedule_at(*at, server_ids[*server], staging::server::Stall { dur: *dur });
        }
    }

    // 6. Failure plan.
    if cfg.protocol != WorkflowProtocol::FailureFree {
        // Rebuild rate: reconstructing one byte of an RS(k, m)-coded object
        // ingests k bytes from surviving servers through the rebuilding
        // server's NIC.
        let nic_bytes_per_s = 1e9 / cfg.net.ns_per_byte;
        let rebuild_per_byte_s = cfg.staging_resilience.protect.rs_k as f64 / nic_bytes_per_s;
        let mut warn_rng = sim_core::rng::Xoshiro256StarStar::seed_from_u64(cfg.seed ^ 0x9A9A);
        for spec in materialize_failures(&cfg) {
            match spec {
                FailureSpec::At { at, app } => {
                    let idx = cfg
                        .components
                        .iter()
                        .position(|c| c.app == app)
                        .expect("failure victim exists");
                    engine.schedule_at(at, comp_ids[idx], Fail);
                    // Proactive predictor: warn the victim ahead of time.
                    if let Some(p) = cfg.proactive {
                        if warn_rng.next_bool(p.recall) {
                            let warn_at = at.saturating_sub(p.lead);
                            engine.schedule_at(
                                warn_at,
                                comp_ids[idx],
                                crate::component::FailureWarning,
                            );
                        }
                    }
                }
                FailureSpec::StagingAt { at, server } => {
                    assert!(server < server_ids.len(), "staging server index");
                    engine.schedule_at(
                        at,
                        server_ids[server],
                        staging::server::ServerFail {
                            fixed: cfg.staging_resilience.fixed,
                            per_byte_s: rebuild_per_byte_s,
                        },
                    );
                }
                FailureSpec::Cascading { at, first, spread, servers } => {
                    // The first victim dies at `at`; the failure then spreads
                    // to every other component in ascending app order, one
                    // `spread` apart — the correlated-cascade scenario. Named
                    // staging shards join the domino chain after the
                    // components, each one `spread` later still.
                    let idx_of = |app: u32| {
                        cfg.components
                            .iter()
                            .position(|c| c.app == app)
                            .expect("cascade victim exists")
                    };
                    engine.schedule_at(at, comp_ids[idx_of(first)], Fail);
                    let mut rest: Vec<u32> =
                        cfg.components.iter().map(|c| c.app).filter(|&a| a != first).collect();
                    rest.sort_unstable();
                    let mut t = at;
                    for app in rest {
                        t += spread;
                        engine.schedule_at(t, comp_ids[idx_of(app)], Fail);
                    }
                    for server in servers {
                        assert!(server < server_ids.len(), "cascade server index");
                        t += spread;
                        engine.schedule_at(
                            t,
                            server_ids[server],
                            staging::server::ServerFail {
                                fixed: cfg.staging_resilience.fixed,
                                per_byte_s: rebuild_per_byte_s,
                            },
                        );
                    }
                }
                FailureSpec::Correlated { at, apps, servers } => {
                    // One root cause (rack power, switch) takes several
                    // components — and any staging shards sharing the failure
                    // domain — down at the same instant.
                    for app in apps {
                        let idx = cfg
                            .components
                            .iter()
                            .position(|c| c.app == app)
                            .expect("correlated victim exists");
                        engine.schedule_at(at, comp_ids[idx], Fail);
                    }
                    for server in servers {
                        assert!(server < server_ids.len(), "correlated server index");
                        engine.schedule_at(
                            at,
                            server_ids[server],
                            staging::server::ServerFail {
                                fixed: cfg.staging_resilience.fixed,
                                per_byte_s: rebuild_per_byte_s,
                            },
                        );
                    }
                }
                FailureSpec::FailDuringRecovery { at, app, again_after } => {
                    // The second blow lands while the first recovery is in
                    // flight (size `again_after` below the recovery time).
                    let idx = cfg
                        .components
                        .iter()
                        .position(|c| c.app == app)
                        .expect("fail-during-recovery victim exists");
                    engine.schedule_at(at, comp_ids[idx], Fail);
                    engine.schedule_at(at + again_after, comp_ids[idx], Fail);
                }
                // Installed on the network / scheduled or wired in step 5.
                FailureSpec::NetFaults { .. }
                | FailureSpec::StagingStall { .. }
                | FailureSpec::PoisonPut { .. } => {}
                FailureSpec::Mtbf { .. } => unreachable!("materialized"),
            }
        }
    }

    // 6b. Telemetry scraper (telemetry-on runs only). Registered last for
    // the same reason as the supervisor: the component/server actor-id
    // layout is load-bearing. The scraper is observational — it reads the
    // registry, never the RNG — so enabling it cannot change the simulated
    // outcome, only the dispatch count (its ticks are events).
    let tel_id = cfg.telemetry.as_ref().map(|t| {
        let mut tel = crate::telemetry_actor::TelemetryActor::new(t);
        tel.set_tracer(tracer.clone());
        let id = engine.add_actor(Box::new(tel));
        engine.schedule_at(t.window, id, crate::telemetry_actor::Tick);
        id
    });

    // 7. Kick off.
    for &cid in &comp_ids {
        engine.schedule_now(cid, StartStep);
    }
    BuiltWorkflow { engine, cfg, comp_ids, server_ids, dir_id, net_id, tracer, sup_id, tel_id }
}

/// Distill a completed run into a [`RunReport`]. Asserts every component
/// finished (a wedged run is a bug, not a result).
pub fn harvest(built: &mut BuiltWorkflow) -> RunReport {
    let BuiltWorkflow { engine, cfg, comp_ids, server_ids, dir_id, tracer, sup_id, tel_id, .. } =
        built;
    // Journal counters need a flush pre-pass (mutable access) before the
    // read-only sweep: the graceful end of a run drains each server's
    // buffered journal tail so `bytes_flushed` reflects the whole history.
    let mut log_bytes_flushed = 0u64;
    let mut segments_compacted = 0u64;
    let mut journal_group_commits = 0u64;
    let mut journal_records_batched = 0u64;
    if cfg.durability.is_some() {
        for &sid in server_ids.iter() {
            let s =
                engine.actor_as_mut::<StagingServerActor<AnyBackend>>(sid).expect("server actor");
            let b = s.logic_mut().backend_mut();
            b.flush_journal();
            log_bytes_flushed += b.journal_bytes_flushed();
            segments_compacted += b.journal_segments_compacted();
            journal_group_commits += b.journal_group_commits();
            journal_records_batched += b.journal_records_batched();
        }
    }
    let m = engine.metrics().clone();
    let dir = engine.actor_as::<Director>(*dir_id).expect("director");
    let mut finish_times_s: Vec<(u32, f64)> =
        dir.finish_times().iter().map(|(&app, &t)| (app, t.as_secs_f64())).collect();
    finish_times_s.sort_unstable_by_key(|&(app, _)| app);
    if finish_times_s.len() != cfg.components.len() {
        dump_wedge_diagnostics(engine, tracer, &cfg.label);
    }
    assert_eq!(
        finish_times_s.len(),
        cfg.components.len(),
        "workflow did not complete: {} of {} components finished (label {})",
        finish_times_s.len(),
        cfg.components.len(),
        cfg.label
    );
    let total_time_s = finish_times_s.iter().map(|&(_, t)| t).fold(0.0, f64::max);

    // Telemetry: flush the final (partial) window against the end-of-run
    // registry and detach the series + SLO outcome.
    let telemetry_harvest = tel_id.map(|tid| {
        let end_ns = engine.now().0;
        let seq = engine.dispatched();
        let tel = engine
            .actor_as_mut::<crate::telemetry_actor::TelemetryActor>(tid)
            .expect("telemetry actor");
        tel.harvest(end_ns, seq, &m)
    });
    let (series, slo) = match telemetry_harvest {
        Some((s, r)) => (Some(s), r),
        None => (None, None),
    };

    let mut staging_peak_bytes = 0u64;
    let mut staging_peak_upper_bytes = 0u64;
    let mut staging_final_bytes = 0u64;
    let mut absorbed = 0u64;
    let mut replayed = 0u64;
    let mut mismatches = 0u64;
    let mut gc_reclaimed = 0u64;
    let mut staging_rebuilds = 0u64;
    let mut stale_gets = 0u64;
    let mut server_stalls = 0u64;
    let sharded = cfg.sharding.is_some();
    let mut shard_puts = Vec::new();
    let mut shard_replays = Vec::new();
    for (i, &sid) in server_ids.iter().enumerate() {
        let g = m.gauge(&format!("staging.server{i}.bytes"));
        staging_peak_bytes += g.peak.max(0) as u64;
        staging_peak_upper_bytes += g.peak_upper.max(0) as u64;
        let s = engine.actor_as::<StagingServerActor<AnyBackend>>(sid).expect("server actor");
        staging_final_bytes += s.logic().bytes_resident();
        staging_rebuilds += u64::from(s.rebuilds());
        server_stalls += u64::from(s.stalls());
        stale_gets += s.logic().backend().stale_gets();
        if sharded {
            shard_puts.push(s.puts_served());
        }
        if let Some(lb) = s.logic().backend().as_logging() {
            absorbed += lb.absorbed_puts();
            replayed += lb.replayed_gets();
            mismatches += lb.digest_mismatches();
            gc_reclaimed += lb.gc_reclaimed();
            if sharded {
                shard_replays.push(lb.replayed_gets());
            }
        } else if sharded {
            shard_replays.push(0);
        }
    }

    let mut steps_executed = 0u64;
    let mut failovers = 0u64;
    let mut recoveries = 0u64;
    let mut proactive_ckpts = 0u64;
    for &cid in comp_ids.iter() {
        let c = engine.actor_as::<ComponentActor>(cid).expect("component");
        steps_executed += c.steps_executed();
        failovers += u64::from(c.failovers());
        recoveries += u64::from(c.recoveries());
        proactive_ckpts += u64::from(c.proactive_ckpts());
    }

    let mut restarts = 0u64;
    let mut quarantined = 0u64;
    let mut mttr_mean_s = 0.0;
    let mut mttr_max_s = 0.0;
    if let Some(sid) = sup_id {
        let sa = engine
            .actor_as::<crate::supervisor_actor::SupervisorActor>(*sid)
            .expect("supervisor actor");
        let sup = sa.supervisor();
        restarts = sup.restarts();
        quarantined = sup.quarantined();
        mttr_mean_s = sup.mttr_mean_ns() as f64 / 1e9;
        mttr_max_s = sup.mttr_max_ns() as f64 / 1e9;
    }

    let put_stream = m.stream("wf.put_response_s");
    RunReport {
        label: cfg.label.clone(),
        protocol: cfg.protocol,
        total_time_s,
        finish_times_s,
        puts: m.counter("wf.puts"),
        gets: m.counter("wf.gets"),
        cumulative_put_response_s: put_stream.sum(),
        mean_put_response_s: put_stream.mean(),
        p99_put_response_s: m.p99("wf.put_response_s").unwrap_or(0.0),
        staging_peak_bytes,
        staging_peak_upper_bytes,
        staging_final_bytes,
        ckpts: m.counter("wf.ckpts"),
        recoveries,
        failovers,
        rollback_steps: m.counter("wf.rollback_steps"),
        absorbed_puts: absorbed,
        replayed_gets: replayed,
        digest_mismatches: mismatches,
        stale_gets,
        gc_reclaimed_bytes: gc_reclaimed,
        staging_rebuilds,
        proactive_ckpts,
        steps_executed,
        recovery_ulfm_s: m.stream("wf.ulfm_s").sum(),
        recovery_restore_s: m.stream("wf.restore_s").sum(),
        co_rollback_s: m.stream("wf.co_rollback_s").sum(),
        net_msgs: m.counter("net.msgs"),
        net_bytes: m.counter("net.bytes"),
        net_retries: m.counter("wf.net_retries"),
        server_stalls,
        events_dispatched: engine.dispatched(),
        log_bytes_flushed,
        segments_compacted,
        journal_group_commits,
        journal_records_batched,
        restarts,
        quarantined,
        mttr_mean_s,
        mttr_max_s,
        cold_restart_ms: 0.0,
        shards: if sharded { cfg.nservers as u64 } else { 0 },
        rebalances: if sharded {
            cfg.sharding.as_ref().and_then(|s| s.rebalance.as_ref()).map_or(0, |_| 1)
        } else {
            0
        },
        shard_puts,
        shard_replays,
        schedules_explored: 0,
        states_pruned: 0,
        metrics: Some(m.snapshot()),
        series,
        slo,
    }
}

/// Failure-time flight recorder: when a run wedges, print whatever the
/// recorder retained (the *last* records under a flight cap — exactly the
/// window around the wedge) plus the tail of the engine's event trace ring,
/// so the panic that follows carries the evidence and not just a count.
fn dump_wedge_diagnostics(engine: &Engine, tracer: &obs::Tracer, label: &str) {
    eprintln!("=== wedge diagnostics (label {label}) ===");
    if tracer.enabled() {
        let t = tracer.dump();
        eprintln!("--- recorder: {} trace records ({} dropped) ---", t.records.len(), t.dropped);
        eprint!("{}", t.to_jsonl());
    }
    if let Some(ring) = engine.trace() {
        eprintln!("--- engine trace ring: last {} of {} events ---", ring.len(), ring.total());
        for e in ring.iter() {
            eprintln!("{e:?}");
        }
    }
    eprintln!("=== end wedge diagnostics ===");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::tiny;

    #[test]
    fn failure_free_tiny_run_completes() {
        let r = run(&tiny(WorkflowProtocol::FailureFree));
        assert_eq!(r.protocol, WorkflowProtocol::FailureFree);
        assert!(r.total_time_s > 0.0);
        assert_eq!(r.finish_times_s.len(), 2);
        // 12 steps × 8 blocks of 32³ in a 64³ domain per component.
        assert_eq!(r.puts, 12 * 8);
        assert_eq!(r.gets, 12 * 8);
        assert_eq!(r.ckpts, 0);
        assert_eq!(r.recoveries, 0);
        assert_eq!(r.digest_mismatches, 0);
        assert_eq!(r.steps_executed, 24);
    }

    #[test]
    fn uncoordinated_failure_free_checkpoints() {
        let r = run(&tiny(WorkflowProtocol::Uncoordinated));
        // sim: periods 4 → steps 4,8,12 = 3 ckpts; ana: period 5 → 5,10 = 2.
        assert_eq!(r.ckpts, 5);
        assert_eq!(r.recoveries, 0);
        assert!(r.staging_peak_bytes > 0);
    }

    #[test]
    fn coordinated_rendezvous_checkpoints() {
        let r = run(&tiny(WorkflowProtocol::Coordinated));
        // Global period 4 over 12 steps → 3 coordinated checkpoints; both
        // components count each → 6 component-level ckpts.
        assert_eq!(r.ckpts, 6);
    }

    #[test]
    fn deterministic_runs() {
        let a = run(&tiny(WorkflowProtocol::Uncoordinated));
        let b = run(&tiny(WorkflowProtocol::Uncoordinated));
        assert_eq!(a.total_time_s, b.total_time_s);
        assert_eq!(a.events_dispatched, b.events_dispatched);
        assert_eq!(a.staging_peak_bytes, b.staging_peak_bytes);
    }

    #[test]
    fn logging_memory_exceeds_plain() {
        let ds = run(&tiny(WorkflowProtocol::FailureFree));
        let un = run(&tiny(WorkflowProtocol::Uncoordinated));
        assert!(
            un.staging_peak_bytes > ds.staging_peak_bytes,
            "log retention must cost memory: {} vs {}",
            un.staging_peak_bytes,
            ds.staging_peak_bytes
        );
    }

    #[test]
    fn producer_failure_recovers_with_absorption() {
        use crate::config::FailureSpec;
        let cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![FailureSpec::At {
            at: sim_core::time::SimTime::from_millis(700), // mid-run
            app: 0,
        }]);
        let r = run(&cfg);
        assert_eq!(r.recoveries, 1);
        assert!(r.absorbed_puts > 0, "re-puts must be absorbed");
        assert_eq!(r.digest_mismatches, 0);
        assert!(r.steps_executed > 24, "re-execution happened");
    }

    #[test]
    fn consumer_failure_recovers_with_replay() {
        use crate::config::FailureSpec;
        let cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![FailureSpec::At {
            at: sim_core::time::SimTime::from_millis(700),
            app: 1,
        }]);
        let r = run(&cfg);
        assert_eq!(r.recoveries, 1);
        assert!(r.replayed_gets > 0, "re-reads must come from the log");
        assert_eq!(r.digest_mismatches, 0);
    }

    #[test]
    fn coordinated_failure_rolls_back_everyone() {
        use crate::config::FailureSpec;
        let cfg = tiny(WorkflowProtocol::Coordinated).with_failures(vec![FailureSpec::At {
            at: sim_core::time::SimTime::from_millis(700),
            app: 0,
        }]);
        let r = run(&cfg);
        // Global rollback counts one recovery per component.
        assert_eq!(r.recoveries, 2);
    }

    #[test]
    fn hybrid_analytics_failure_is_failover() {
        use crate::config::FailureSpec;
        let cfg = tiny(WorkflowProtocol::Hybrid).with_failures(vec![FailureSpec::At {
            at: sim_core::time::SimTime::from_millis(700),
            app: 1,
        }]);
        let r = run(&cfg);
        assert_eq!(r.recoveries, 0, "replicated analytics never rolls back");
        assert_eq!(r.failovers, 1);
    }

    #[test]
    fn uncoordinated_beats_coordinated_under_failure() {
        use crate::config::FailureSpec;
        let fail = vec![FailureSpec::At { at: sim_core::time::SimTime::from_millis(700), app: 1 }];
        let co = run(&tiny(WorkflowProtocol::Coordinated).with_failures(fail.clone()));
        let un = run(&tiny(WorkflowProtocol::Uncoordinated).with_failures(fail));
        assert!(
            un.total_time_s < co.total_time_s,
            "Un ({}) must beat Co ({}) when the small analytics fails",
            un.total_time_s,
            co.total_time_s
        );
    }

    fn lossy_plan(seed: u64) -> faultplane::FaultPlan {
        faultplane::FaultPlan {
            seed,
            rates: faultplane::FaultRates {
                drop: 0.05,
                duplicate: 0.10,
                reorder: 0.05,
                delay: 0.10,
                max_extra_delay_ns: 500_000,
                ..Default::default()
            },
            windows: Vec::new(),
        }
    }

    #[test]
    fn net_faults_are_ridden_out_by_retries() {
        let cfg = tiny(WorkflowProtocol::Uncoordinated).with_net_faults(lossy_plan(7));
        let r = run(&cfg);
        assert_eq!(r.puts, 12 * 8, "every put must eventually land");
        assert_eq!(r.gets, 12 * 8);
        assert_eq!(r.digest_mismatches, 0);
        assert!(r.net_retries > 0, "a 5% drop rate over ~200 requests must retry");
    }

    #[test]
    fn net_faults_compose_with_component_failure() {
        use crate::config::FailureSpec;
        let cfg = tiny(WorkflowProtocol::Uncoordinated)
            .with_failures(vec![FailureSpec::At {
                at: sim_core::time::SimTime::from_millis(700),
                app: 0,
            }])
            .with_net_faults(lossy_plan(11));
        let r = run(&cfg);
        assert_eq!(r.recoveries, 1);
        assert_eq!(r.digest_mismatches, 0, "replay must stay exact under dup/drop/reorder");
        assert!(r.absorbed_puts > 0);
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        let cfg = tiny(WorkflowProtocol::Uncoordinated).with_net_faults(lossy_plan(3));
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.total_time_s, b.total_time_s);
        assert_eq!(a.events_dispatched, b.events_dispatched);
        assert_eq!(a.net_retries, b.net_retries);
    }

    #[test]
    fn durable_runner_emits_journal_counters() {
        let cfg = tiny(WorkflowProtocol::Uncoordinated)
            .with_durability(crate::config::DurabilityCfg::default());
        let r = run(&cfg);
        assert!(r.log_bytes_flushed > 0, "durable run must flush journal bytes");
        assert_eq!(r.cold_restart_ms, 0.0, "no cold restart inside a DES run");
        // Journaling must not perturb the simulated execution.
        let plain = run(&tiny(WorkflowProtocol::Uncoordinated));
        assert_eq!(r.total_time_s, plain.total_time_s);
        assert_eq!(r.events_dispatched, plain.events_dispatched);
        assert_eq!(plain.log_bytes_flushed, 0);
        // And the durable counters themselves are deterministic.
        let again = run(&cfg);
        assert_eq!(again.log_bytes_flushed, r.log_bytes_flushed);
        assert_eq!(again.segments_compacted, r.segments_compacted);
    }

    #[test]
    fn staging_stall_is_served_through() {
        use crate::config::FailureSpec;
        let clean = run(&tiny(WorkflowProtocol::Uncoordinated));
        let cfg =
            tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![FailureSpec::StagingStall {
                at: sim_core::time::SimTime::from_millis(600),
                dur: sim_core::time::SimTime::from_millis(200),
                server: 0,
            }]);
        let r = run(&cfg);
        assert_eq!(r.server_stalls, 1);
        assert_eq!(r.recoveries, 0, "a stall is not a failure");
        assert_eq!(r.puts, clean.puts);
        assert_eq!(r.digest_mismatches, 0);
        assert!(
            r.total_time_s >= clean.total_time_s,
            "a stalled server cannot make the run faster"
        );
    }
}
