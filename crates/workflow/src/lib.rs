#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # workflow — the synthetic in-situ workflow engine
//!
//! Reproduces the paper's evaluation vehicle: a coupled workflow where a
//! simulation component writes versioned regions of a 3-D domain into data
//! staging each time step and an analytics component reads them right after
//! ("write immediately followed by read" — Table II's data access pattern),
//! under one of five fault-tolerance protocols (Ds/Co/Un/Hy/In), with
//! MTBF-driven fail-stop failures.
//!
//! Everything runs on the `sim-core` discrete-event engine:
//!
//! * [`component::ComponentActor`] — one per application component; drives
//!   the compute → write/read → (maybe) checkpoint cycle and the full
//!   recovery path (ULFM repair → restore → `workflow_restart` notification
//!   → re-execution with replay).
//! * [`director::Director`] — workflow-level orchestration: coordinated-
//!   checkpoint rendezvous (with its barrier and PFS-contention costs),
//!   global rollback broadcast for the Co baseline, completion tracking.
//! * [`backend::AnyBackend`] — runtime choice between the plain staging
//!   backend (Ds/Co/In) and the crash-consistency logging backend (Un/Hy).
//! * [`runner`] — builds the engine from a [`config::WorkflowConfig`], runs
//!   it, and distills a [`report::RunReport`] with exactly the quantities
//!   the paper's figures plot.
//! * [`config`] — experiment configurations, including Table II
//!   ([`config::table2`]) and Table III ([`config::table3`]).

pub mod backend;
pub mod coldstart;
pub mod component;
pub mod config;
pub mod director;
pub mod mcheck_mode;
pub mod report;
pub mod runner;
pub mod supervisor_actor;
pub mod telemetry_actor;

pub use config::{ComponentConfig, DurabilityCfg, FailureSpec, Role, TelemetryCfg, WorkflowConfig};
pub use mcheck_mode::{CrashChoice, McheckOptions, WorkflowModel};
pub use report::RunReport;
pub use runner::{build, harvest, run, BuiltWorkflow};
