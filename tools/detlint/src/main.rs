#![forbid(unsafe_code)]

//! detlint — CLI over the `lint` crate (wflint).
//!
//! With no path arguments the deterministic envelope is *inferred*: workspace
//! members whose `Cargo.toml` carries `[package.metadata.detlint]
//! envelope = true` are walked from their crate root through `mod`
//! declarations (see `lint::envelope`). Explicit paths (files or directories,
//! recursed) override inference.
//!
//! ```text
//! detlint [paths…] [--format=text|json|github] [--baseline FILE]
//!         [--write-baseline FILE] [--out FILE] [--root DIR] [--list]
//! ```
//!
//! * `--format=github` emits `::error` workflow annotations (CI).
//! * `--baseline FILE` suppresses findings recorded in the committed
//!   baseline; entries that no longer match are reported (the ratchet).
//! * `--write-baseline FILE` writes the current findings as the new baseline
//!   and exits 0 (use after deliberately accepting a finding).
//! * `--out FILE` additionally writes the JSON findings document (uploaded
//!   as a CI artifact on failure).
//! * `--list` prints the inferred envelope and exits (debugging).
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/I-O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Args {
    paths: Vec<PathBuf>,
    format: String,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    out: Option<PathBuf>,
    root: Option<PathBuf>,
    list: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        paths: Vec::new(),
        format: "text".to_string(),
        baseline: None,
        write_baseline: None,
        out: None,
        root: None,
        list: false,
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<PathBuf, String> {
            it.next().map(PathBuf::from).ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--list" => args.list = true,
            "--baseline" => args.baseline = Some(take("--baseline")?),
            "--write-baseline" => args.write_baseline = Some(take("--write-baseline")?),
            "--out" => args.out = Some(take("--out")?),
            "--root" => args.root = Some(take("--root")?),
            a if a.starts_with("--format=") => {
                args.format = a["--format=".len()..].to_string();
                if !matches!(args.format.as_str(), "text" | "json" | "github") {
                    return Err(format!("unknown format `{}`", args.format));
                }
            }
            a if a.starts_with("--") => return Err(format!("unknown flag `{a}`")),
            path => args.paths.push(PathBuf::from(path)),
        }
    }
    Ok(args)
}

/// Collect `.rs` files under `path` (file or directory, recursed), sorted.
fn collect_rs(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(path)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for entry in entries {
        collect_rs(&entry, out)?;
    }
    Ok(())
}

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match &args.root {
        Some(r) => r.clone(),
        None => lint::envelope::find_workspace_root(&cwd)
            .ok_or("no workspace root found (run inside the workspace or pass --root)")?,
    };

    // Target set: explicit paths, or the inferred envelope.
    let files: Vec<PathBuf> = if args.paths.is_empty() {
        lint::envelope::infer(&root).map_err(|e| format!("envelope inference: {e}"))?
    } else {
        let mut abs = Vec::new();
        for p in &args.paths {
            let full = if p.is_absolute() { p.clone() } else { cwd.join(p) };
            collect_rs(&full, &mut abs).map_err(|e| format!("{}: {e}", p.display()))?;
        }
        abs.iter()
            .map(|f| f.strip_prefix(&root).map(Path::to_path_buf).unwrap_or_else(|_| f.clone()))
            .collect()
    };

    if args.list {
        for f in &files {
            println!("{}", f.display());
        }
        eprintln!("detlint: {} files in the envelope", files.len());
        return Ok(ExitCode::SUCCESS);
    }

    let report = lint::lint_files(&root, &files).map_err(|e| format!("lint: {e}"))?;

    if let Some(path) = &args.write_baseline {
        std::fs::write(path, lint::output::write_baseline(&report.findings))
            .map_err(|e| format!("{}: {e}", path.display()))?;
        eprintln!(
            "detlint: wrote baseline with {} finding(s) to {}",
            report.findings.len(),
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let (findings, stale_baseline) = match &args.baseline {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            lint::output::apply_baseline(report.findings, &text)
                .map_err(|e| format!("baseline {}: {e}", path.display()))?
        }
        None => (report.findings, Vec::new()),
    };

    let rendered = match args.format.as_str() {
        "json" => lint::output::findings_json(&findings, &stale_baseline, report.files_linted),
        "github" => lint::output::findings_github(&findings, &stale_baseline),
        _ => lint::output::findings_text(&findings, &stale_baseline),
    };
    print!("{rendered}");

    if let Some(path) = &args.out {
        std::fs::write(
            path,
            lint::output::findings_json(&findings, &stale_baseline, report.files_linted),
        )
        .map_err(|e| format!("{}: {e}", path.display()))?;
    }

    let dirty = !findings.is_empty() || !stale_baseline.is_empty();
    if dirty {
        eprintln!(
            "detlint: {} finding(s), {} stale baseline entr{} in {} files",
            findings.len(),
            stale_baseline.len(),
            if stale_baseline.len() == 1 { "y" } else { "ies" },
            report.files_linted
        );
        Ok(ExitCode::FAILURE)
    } else {
        eprintln!("detlint: {} files clean", report.files_linted);
        Ok(ExitCode::SUCCESS)
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("detlint: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_paths() {
        let a = parse_args(&argv(&[
            "crates/staging/src",
            "--format=json",
            "--baseline",
            "lint-baseline.json",
            "--out",
            "f.json",
        ]))
        .unwrap();
        assert_eq!(a.paths, vec![PathBuf::from("crates/staging/src")]);
        assert_eq!(a.format, "json");
        assert_eq!(a.baseline, Some(PathBuf::from("lint-baseline.json")));
        assert_eq!(a.out, Some(PathBuf::from("f.json")));
    }

    #[test]
    fn rejects_unknown_flag_and_format() {
        assert!(parse_args(&argv(&["--what"])).is_err());
        assert!(parse_args(&argv(&["--format=yaml"])).is_err());
    }
}
