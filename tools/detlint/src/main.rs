#![forbid(unsafe_code)]

//! detlint — determinism lint for the DES-deterministic crates.
//!
//! The model checker's guarantees (replayable schedules, byte-identical
//! `.schedule` counterexamples, FNV state-hash pruning) rest on one premise:
//! a run is a pure function of the configuration and the pick vector. Any
//! wall-clock read, ambient RNG, or hash-order iteration inside the
//! deterministic crates silently breaks that premise — the bug shows up later
//! as a schedule that no longer replays. This lint rejects those constructs
//! at CI time instead.
//!
//! Rules (matched against comment-stripped source lines):
//!
//! * `wallclock` — `SystemTime::now`, `Instant::now`
//! * `rng`       — `thread_rng`, `from_entropy`, `rand::random`
//! * `hashmap`   — `HashMap` / `HashSet` (std hash containers: iteration
//!   order varies run to run; use `BTreeMap` / `BTreeSet`, or waive with a
//!   justification when a fixed-key hasher makes iteration deterministic)
//!
//! Waivers are per-site comments carrying the justification:
//!
//! * `// detlint: allow(<rule>) — <reason>` on the offending line or the
//!   line directly above it;
//! * `// detlint: skip-file — <reason>` anywhere in the file (for files
//!   that are deliberately outside the deterministic envelope, e.g. a
//!   real-thread transport).
//!
//! Usage: `detlint [path ...]` — paths are `.rs` files or directories
//! (recursed). With no arguments, lints the default deterministic envelope:
//! `crates/sim-core/src`, `crates/net/src/des.rs`, `crates/wfcr/src`,
//! `crates/staging/src`, `crates/shardmap/src`, `crates/obs/src`,
//! `crates/supervise/src`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The deterministic envelope linted when no paths are given.
const DEFAULT_TARGETS: &[&str] = &[
    "crates/sim-core/src",
    "crates/net/src/des.rs",
    "crates/wfcr/src",
    "crates/staging/src",
    "crates/shardmap/src",
    "crates/obs/src",
    "crates/supervise/src",
];

/// One lint rule: a name (used in `allow(<name>)` waivers) and the
/// substrings that trigger it.
struct Rule {
    name: &'static str,
    needles: &'static [&'static str],
}

const RULES: &[Rule] = &[
    Rule { name: "wallclock", needles: &["SystemTime::now", "Instant::now"] },
    Rule { name: "rng", needles: &["thread_rng", "from_entropy", "rand::random"] },
    Rule { name: "hashmap", needles: &["HashMap", "HashSet"] },
];

/// A single violation.
#[derive(Debug, PartialEq, Eq)]
struct Finding {
    file: String,
    line: usize,
    rule: &'static str,
    source: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.source.trim())
    }
}

/// Split a line into (code, comment) at the first `//` outside a string
/// literal. Good enough for this codebase: raw strings and `//` inside
/// normal strings are handled; block comments are not (none of the banned
/// constructs hide in them).
fn split_comment(line: &str) -> (&str, &str) {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip the escaped byte
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return (&line[..i], &line[i..]);
            }
            _ => {}
        }
        i += 1;
    }
    (line, "")
}

/// Does this comment waive `rule` (or carry a skip-file directive)?
fn waives(comment: &str, rule: &str) -> bool {
    comment.contains(&format!("detlint: allow({rule})"))
}

fn is_skip_file(src: &str) -> bool {
    src.lines().any(|l| split_comment(l).1.contains("detlint: skip-file"))
}

/// Lint one source text. `file` is used only for reporting.
fn lint_source(file: &str, src: &str) -> Vec<Finding> {
    if is_skip_file(src) {
        return Vec::new();
    }
    let lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();
    for (idx, raw) in lines.iter().enumerate() {
        let (code, comment) = split_comment(raw);
        let above = if idx > 0 { split_comment(lines[idx - 1]).1 } else { "" };
        for rule in RULES {
            if !rule.needles.iter().any(|n| code.contains(n)) {
                continue;
            }
            if waives(comment, rule.name) || waives(above, rule.name) {
                continue;
            }
            findings.push(Finding {
                file: file.to_string(),
                line: idx + 1,
                rule: rule.name,
                source: raw.to_string(),
            });
        }
    }
    findings
}

/// Collect `.rs` files under `path` (a file or a directory), sorted for
/// stable output.
fn collect_rs(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(path)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    for entry in entries {
        collect_rs(&entry, out)?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let targets: Vec<PathBuf> = if args.is_empty() {
        DEFAULT_TARGETS.iter().map(PathBuf::from).collect()
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut files = Vec::new();
    for t in &targets {
        if let Err(e) = collect_rs(t, &mut files) {
            eprintln!("detlint: {}: {e}", t.display());
            return ExitCode::from(2);
        }
    }

    let mut findings = Vec::new();
    for f in &files {
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("detlint: {}: {e}", f.display());
                return ExitCode::from(2);
            }
        };
        findings.extend(lint_source(&f.display().to_string(), &src));
    }

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("detlint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("detlint: {} violation(s) in {} files", findings.len(), files.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_wallclock_and_rng() {
        let src = "let t = Instant::now();\nlet r = thread_rng().gen();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 2);
        assert_eq!(f[0].rule, "wallclock");
        assert_eq!(f[0].line, 1);
        assert_eq!(f[1].rule, "rng");
    }

    #[test]
    fn flags_hash_containers() {
        let src = "use std::collections::HashMap;\nlet s: HashSet<u32> = HashSet::new();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == "hashmap").count(), 2);
    }

    #[test]
    fn comment_mentions_are_ignored() {
        let src = "// BTreeMap, not HashMap: iteration order matters\nlet x = 1;\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn same_line_waiver() {
        let src = "use std::collections::HashMap; // detlint: allow(hashmap) — fixed-key hasher\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn preceding_line_waiver() {
        let src = "// detlint: allow(wallclock) — progress meter only\nlet t = Instant::now();\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn waiver_is_rule_specific() {
        let src = "// detlint: allow(rng)\nlet t = Instant::now();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wallclock");
    }

    #[test]
    fn skip_file_waives_everything() {
        let src = "// detlint: skip-file — real-thread transport\nlet t = Instant::now();\nuse std::collections::HashMap;\n";
        assert!(lint_source("x.rs", src).is_empty());
    }

    #[test]
    fn string_literals_do_not_hide_code() {
        // A `//` inside a string literal must not truncate the code part.
        let src = "let u = \"http://x\"; let t = Instant::now();\n";
        let f = lint_source("x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "wallclock");
    }

    #[test]
    fn display_is_grep_friendly() {
        let f = Finding { file: "a.rs".into(), line: 7, rule: "rng", source: "  x  ".into() };
        assert_eq!(f.to_string(), "a.rs:7: rng: x");
    }
}
