#![forbid(unsafe_code)]

//! wf-trace — analyzer for the JSONL traces recorded by workflow runs.
//!
//! Reads a trace exported with `Trace::to_jsonl` (see the `obs` crate) and
//! answers the questions the paper's evaluation keeps asking of a run:
//! where did the time go per component, what did a recovery's critical path
//! look like phase by phase, and which put trees were slowest end to end.
//!
//! Subcommands (the file argument is always last):
//!
//! * `wf-trace summary <trace.jsonl>` — per-track timelines: span/instant
//!   counts, busy time (self time: same-track nested children excluded),
//!   and the active window.
//! * `wf-trace critical-path <trace.jsonl>` — every recovery in the trace,
//!   broken into its phases (ulfm / restore / replay / co_rollback) with
//!   per-phase share of the total.
//! * `wf-trace top-puts [-k N] <trace.jsonl>` — the N slowest put causal
//!   trees (default 5): client duration plus how many server-side spans and
//!   instants the tree reached.
//! * `wf-trace perfetto <trace.jsonl>` — convert to Chrome/Perfetto
//!   `trace_event` JSON on stdout (load at ui.perfetto.dev).
//! * `wf-trace --validate <trace.jsonl>` — structural validation: every
//!   span closes exactly once, ends do not precede begins, timestamps are
//!   monotone, every track is declared. Exit 1 on any violation. Also
//!   accepted as `wf-trace validate <file>`.
//!
//! All output is derived from virtual time and is byte-deterministic for a
//! given trace file.

use std::process::ExitCode;

/// Nanoseconds → `S.mmmuuu ms` with microsecond precision, integer math
/// only, so output bytes are a pure function of the trace.
fn fmt_ms(ns: u64) -> String {
    format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

fn load(path: &str) -> Result<obs::Trace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    obs::Trace::from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

fn cmd_summary(trace: &obs::Trace) {
    let lines = obs::analyze::timelines(trace);
    println!(
        "{} records on {} tracks ({} dropped by flight cap)",
        trace.records.len(),
        trace.tracks.len(),
        trace.dropped
    );
    println!(
        "{:<24} {:>7} {:>9} {:>14} {:>14} {:>14}",
        "track", "spans", "instants", "busy", "first", "last"
    );
    for l in lines {
        println!(
            "{:<24} {:>7} {:>9} {:>14} {:>14} {:>14}",
            l.name,
            l.spans,
            l.instants,
            fmt_ms(l.busy_ns),
            fmt_ms(l.first_ns),
            fmt_ms(l.last_ns)
        );
    }
}

fn cmd_critical_path(trace: &obs::Trace) {
    let paths = obs::analyze::recovery_paths(trace);
    if paths.is_empty() {
        println!("no recoveries in trace");
        return;
    }
    for (i, p) in paths.iter().enumerate() {
        println!(
            "recovery #{i} on {} at {}: total {}",
            p.track,
            fmt_ms(p.start_ns),
            fmt_ms(p.total_ns)
        );
        for ph in &p.phases {
            let pct = (ph.dur_ns * 100).checked_div(p.total_ns).unwrap_or(0);
            println!(
                "  {:<14} {:>14}  {:>3}%  (at {})",
                ph.name,
                fmt_ms(ph.dur_ns),
                pct,
                fmt_ms(ph.start_ns)
            );
        }
        let accounted: u64 = p.phases.iter().map(|ph| ph.dur_ns).sum();
        let other = p.total_ns.saturating_sub(accounted);
        if other > 0 {
            println!("  {:<14} {:>14}", "(unphased)", fmt_ms(other));
        }
    }
}

fn cmd_top_puts(trace: &obs::Trace, k: usize) {
    let trees = obs::analyze::top_put_trees(trace, k);
    if trees.is_empty() {
        println!("no put spans in trace");
        return;
    }
    println!(
        "{:<10} {:<24} {:>14} {:>14} {:>6} {:>9}",
        "trace", "client track", "start", "dur", "spans", "instants"
    );
    for t in trees {
        println!(
            "{:<10} {:<24} {:>14} {:>14} {:>6} {:>9}",
            t.tr,
            t.track,
            fmt_ms(t.start_ns),
            fmt_ms(t.dur_ns),
            t.tree_spans,
            t.tree_instants
        );
    }
}

fn cmd_validate(trace: &obs::Trace) -> ExitCode {
    match obs::analyze::validate(trace) {
        Ok(r) => {
            println!(
                "ok: {} spans, {} instants, {} tracks, {} causal trees",
                r.spans, r.instants, r.tracks, r.traces
            );
            ExitCode::SUCCESS
        }
        Err(errors) => {
            for e in &errors {
                eprintln!("invalid: {e}");
            }
            eprintln!("{} violation(s)", errors.len());
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str =
    "usage: wf-trace <summary|critical-path|top-puts [-k N]|perfetto|--validate> <trace.jsonl>";

/// Parsed invocation: which report to produce over which file.
enum Cmd {
    Summary,
    CriticalPath,
    TopPuts(usize),
    Perfetto,
    Validate,
}

fn parse_args(args: &[String]) -> Result<(Cmd, String), String> {
    let (cmd_args, file) = match args.split_last() {
        Some((file, rest)) if !file.starts_with('-') && !rest.is_empty() => (rest, file.clone()),
        // Bare `wf-trace <file>` defaults to the summary report.
        Some((file, [])) if !file.starts_with('-') => return Ok((Cmd::Summary, file.clone())),
        _ => return Err(USAGE.to_string()),
    };
    let cmd = match cmd_args[0].as_str() {
        "summary" => Cmd::Summary,
        "critical-path" => Cmd::CriticalPath,
        "perfetto" => Cmd::Perfetto,
        "validate" | "--validate" => Cmd::Validate,
        "top-puts" => {
            let k = match cmd_args.get(1).map(String::as_str) {
                None => 5,
                Some("-k") => {
                    cmd_args.get(2).and_then(|v| v.parse().ok()).ok_or_else(|| USAGE.to_string())?
                }
                Some(_) => return Err(USAGE.to_string()),
            };
            Cmd::TopPuts(k)
        }
        _ => return Err(USAGE.to_string()),
    };
    Ok((cmd, file))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, file) = match parse_args(&args) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let trace = match load(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("wf-trace: {e}");
            return ExitCode::from(2);
        }
    };
    match cmd {
        Cmd::Summary => cmd_summary(&trace),
        Cmd::CriticalPath => cmd_critical_path(&trace),
        Cmd::TopPuts(k) => cmd_top_puts(&trace, k),
        Cmd::Perfetto => print!("{}", trace.to_perfetto()),
        Cmd::Validate => return cmd_validate(&trace),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn fmt_ms_is_integer_math() {
        assert_eq!(fmt_ms(0), "0.000ms");
        assert_eq!(fmt_ms(1_234_567), "1.234ms");
        assert_eq!(fmt_ms(999), "0.000ms");
        assert_eq!(fmt_ms(2_000_001_000), "2000.001ms");
    }

    #[test]
    fn parses_subcommands() {
        assert!(matches!(parse_args(&s(&["t.jsonl"])), Ok((Cmd::Summary, f)) if f == "t.jsonl"));
        assert!(matches!(parse_args(&s(&["summary", "t.jsonl"])), Ok((Cmd::Summary, _))));
        assert!(matches!(
            parse_args(&s(&["critical-path", "t.jsonl"])),
            Ok((Cmd::CriticalPath, _))
        ));
        assert!(matches!(parse_args(&s(&["--validate", "t.jsonl"])), Ok((Cmd::Validate, _))));
        assert!(matches!(parse_args(&s(&["validate", "t.jsonl"])), Ok((Cmd::Validate, _))));
        assert!(matches!(parse_args(&s(&["perfetto", "t.jsonl"])), Ok((Cmd::Perfetto, _))));
        assert!(matches!(parse_args(&s(&["top-puts", "t.jsonl"])), Ok((Cmd::TopPuts(5), _))));
        assert!(matches!(
            parse_args(&s(&["top-puts", "-k", "9", "t.jsonl"])),
            Ok((Cmd::TopPuts(9), _))
        ));
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["bogus", "t.jsonl"])).is_err());
        assert!(parse_args(&s(&["top-puts", "-k", "x", "t.jsonl"])).is_err());
        assert!(parse_args(&s(&["--validate"])).is_err());
    }
}
