#![forbid(unsafe_code)]

//! wf-metrics — analyzer for the windowed telemetry series exported by
//! workflow runs (see the `telemetry` crate).
//!
//! Reads a series exported with `telemetry::export::to_jsonl` (attached to
//! a `RunReport` when the workflow runs with `TelemetryCfg`) and answers
//! the questions dashboards would: what moved per window, did the run hold
//! its SLOs, and what changed between two runs.
//!
//! Subcommands (file arguments are always last):
//!
//! * `wf-metrics summary <series.jsonl>` — per-metric overview: counter
//!   totals, gauge close/peak values, histogram counts and p50/p99/p999.
//! * `wf-metrics slo-check <slo.json> <series.jsonl>` — replay the SLO
//!   evaluator offline over the series; prints per-objective violations,
//!   peak burn rate, and every breach instant. Exit 1 on any breach.
//! * `wf-metrics diff <runA.jsonl> <runB.jsonl>` — run-to-run comparison:
//!   counter totals and histogram quantiles side by side with drift.
//! * `wf-metrics export <series.jsonl>` — OpenMetrics text exposition on
//!   stdout (what CI uploads as an artifact).
//! * `wf-metrics gate <baseline.json> <fresh.json>` — bench regression
//!   gate over two `BENCH_*.json` reports; lists every metric that
//!   worsened beyond its committed tolerance. Exit 1 on regression.
//!
//! All output is derived from virtual time and is byte-deterministic for
//! the given input files.

use std::process::ExitCode;

use telemetry::{bench, export, Series, SloCfg, SloEval};

/// Nanoseconds → `S.mmmuuu ms`, integer math only, so output bytes are a
/// pure function of the input.
fn fmt_ms(ns: u64) -> String {
    format!("{}.{:03}ms", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn load_series(path: &str) -> Result<Series, String> {
    export::from_jsonl(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

/// Quantile cell for the summary/diff tables: value or `-` when empty.
fn q_cell(h: &telemetry::Histogram, q: f64) -> String {
    h.quantile(q).map_or_else(|| "-".into(), fmt_ms)
}

fn cmd_summary(series: &Series) {
    let span = series.windows.last().map_or(0, |w| w.end_ns);
    println!(
        "{} windows of {} (span {})",
        series.windows.len(),
        fmt_ms(series.window_ns),
        fmt_ms(span)
    );

    let counters = series.counter_names();
    if !counters.is_empty() {
        println!("{:<34} {:>12}", "counter", "total");
        for name in &counters {
            let total: u64 = series.counter_points(name).map(|(_, v)| v).sum();
            println!("{name:<34} {total:>12}");
        }
    }

    // Gauge names, ordered, from every window (a gauge can appear late).
    let mut gauges: Vec<String> = Vec::new();
    for w in &series.windows {
        for (n, _) in &w.gauges {
            if !gauges.contains(n) {
                gauges.push(n.clone());
            }
        }
    }
    gauges.sort();
    if !gauges.is_empty() {
        println!("{:<34} {:>12} {:>12}", "gauge", "last", "peak");
        for name in &gauges {
            let pts: Vec<i64> = series.gauge_points(name).map(|(_, v)| v).collect();
            let last = pts.last().copied().unwrap_or(0);
            let peak = pts.iter().copied().max().unwrap_or(0);
            println!("{name:<34} {last:>12} {peak:>12}");
        }
    }

    let mut hists: Vec<String> = Vec::new();
    for w in &series.windows {
        for (n, _) in &w.hists {
            if !hists.contains(n) {
                hists.push(n.clone());
            }
        }
    }
    hists.sort();
    if !hists.is_empty() {
        println!(
            "{:<34} {:>9} {:>12} {:>12} {:>12} {:>12}",
            "histogram", "count", "p50", "p99", "p999", "max"
        );
        for name in &hists {
            let Some(h) = series.cumulative_hist(name) else { continue };
            println!(
                "{:<34} {:>9} {:>12} {:>12} {:>12} {:>12}",
                name,
                h.count(),
                q_cell(&h, 0.50),
                q_cell(&h, 0.99),
                q_cell(&h, 0.999),
                h.max().map_or_else(|| "-".into(), fmt_ms)
            );
        }
    }
}

fn cmd_slo_check(cfg_path: &str, series: &Series) -> Result<ExitCode, String> {
    let text = read(cfg_path)?;
    let cfg: SloCfg = serde_json::from_str(text.trim()).map_err(|e| format!("{cfg_path}: {e}"))?;
    cfg.validate().map_err(|e| format!("{cfg_path}: {e}"))?;
    let report = SloEval::evaluate(&cfg, series);
    for o in &report.objectives {
        println!(
            "{:<24} {:>8} windows {:>6} violations  peak burn {:.3}  {}",
            o.objective,
            o.windows,
            o.violations,
            o.peak_burn,
            if o.ok() { "ok" } else { "BREACH" }
        );
        for b in &o.breaches {
            println!("  breach at {} (burn {:.3})", fmt_ms(b.at_ns), b.burn_rate);
        }
    }
    if report.ok() {
        println!("slo: ok ({} objectives)", report.objectives.len());
        Ok(ExitCode::SUCCESS)
    } else {
        println!("slo: {} breach(es)", report.breaches().len());
        Ok(ExitCode::FAILURE)
    }
}

/// Signed drift cell `a -> b` for the diff table.
fn drift(a: u64, b: u64) -> String {
    if b >= a {
        format!("+{}", b - a)
    } else {
        format!("-{}", a - b)
    }
}

fn cmd_diff(a: &Series, b: &Series) {
    println!(
        "A: {} windows of {}   B: {} windows of {}",
        a.windows.len(),
        fmt_ms(a.window_ns),
        b.windows.len(),
        fmt_ms(b.window_ns)
    );

    let mut counters = a.counter_names();
    for n in b.counter_names() {
        if !counters.contains(&n) {
            counters.push(n);
        }
    }
    counters.sort();
    if !counters.is_empty() {
        println!("{:<34} {:>12} {:>12} {:>12}", "counter", "A", "B", "drift");
        for name in &counters {
            let ta: u64 = a.counter_points(name).map(|(_, v)| v).sum();
            let tb: u64 = b.counter_points(name).map(|(_, v)| v).sum();
            if ta == tb {
                continue; // only show what moved
            }
            println!("{:<34} {:>12} {:>12} {:>12}", name, ta, tb, drift(ta, tb));
        }
    }

    let mut hists: Vec<String> = Vec::new();
    for s in [a, b] {
        for w in &s.windows {
            for (n, _) in &w.hists {
                if !hists.contains(n) {
                    hists.push(n.clone());
                }
            }
        }
    }
    hists.sort();
    if !hists.is_empty() {
        println!(
            "{:<34} {:>12} {:>12} {:>12} {:>12}",
            "histogram p99", "A", "B", "A count", "B count"
        );
        for name in &hists {
            let ha = a.cumulative_hist(name);
            let hb = b.cumulative_hist(name);
            let cell = |h: &Option<telemetry::Histogram>, q: f64| {
                h.as_ref().map_or_else(|| "-".into(), |h| q_cell(h, q))
            };
            let count = |h: &Option<telemetry::Histogram>| {
                h.as_ref().map_or(0, telemetry::Histogram::count)
            };
            println!(
                "{:<34} {:>12} {:>12} {:>12} {:>12}",
                name,
                cell(&ha, 0.99),
                cell(&hb, 0.99),
                count(&ha),
                count(&hb)
            );
        }
    }
}

fn cmd_gate(baseline_path: &str, fresh_path: &str) -> Result<ExitCode, String> {
    let baseline = bench::BenchReport::from_json(&read(baseline_path)?)
        .map_err(|e| format!("{baseline_path}: {e}"))?;
    let fresh = bench::BenchReport::from_json(&read(fresh_path)?)
        .map_err(|e| format!("{fresh_path}: {e}"))?;
    let regressions = bench::compare(&baseline, &fresh);
    if regressions.is_empty() {
        let metrics: usize = baseline.rows.iter().map(|r| r.metrics.len()).sum();
        println!("gate: ok ({} rows, {} metrics within tolerance)", baseline.rows.len(), metrics);
        Ok(ExitCode::SUCCESS)
    } else {
        for r in &regressions {
            println!("regression: {}", r.describe());
        }
        println!("gate: {} regression(s)", regressions.len());
        Ok(ExitCode::FAILURE)
    }
}

const USAGE: &str = "usage: wf-metrics <summary <series>|slo-check <slo.json> <series>|diff <a> <b>|export <series>|gate <baseline> <fresh>>";

/// Parsed invocation: which report to produce over which files.
enum Cmd {
    Summary(String),
    SloCheck(String, String),
    Diff(String, String),
    Export(String),
    Gate(String, String),
}

fn parse_args(args: &[String]) -> Result<Cmd, String> {
    let one = |args: &[String]| match args {
        [f] => Ok(f.clone()),
        _ => Err(USAGE.to_string()),
    };
    let two = |args: &[String]| match args {
        [a, b] => Ok((a.clone(), b.clone())),
        _ => Err(USAGE.to_string()),
    };
    match args.split_first() {
        Some((cmd, rest)) => match cmd.as_str() {
            "summary" => Ok(Cmd::Summary(one(rest)?)),
            "slo-check" => two(rest).map(|(c, s)| Cmd::SloCheck(c, s)),
            "diff" => two(rest).map(|(a, b)| Cmd::Diff(a, b)),
            "export" => Ok(Cmd::Export(one(rest)?)),
            "gate" => two(rest).map(|(b, f)| Cmd::Gate(b, f)),
            // Bare `wf-metrics <file>` defaults to the summary report.
            f if !f.starts_with('-') && rest.is_empty() => Ok(Cmd::Summary(f.to_string())),
            _ => Err(USAGE.to_string()),
        },
        None => Err(USAGE.to_string()),
    }
}

fn run(cmd: Cmd) -> Result<ExitCode, String> {
    match cmd {
        Cmd::Summary(f) => {
            cmd_summary(&load_series(&f)?);
            Ok(ExitCode::SUCCESS)
        }
        Cmd::SloCheck(cfg, f) => cmd_slo_check(&cfg, &load_series(&f)?),
        Cmd::Diff(a, b) => {
            cmd_diff(&load_series(&a)?, &load_series(&b)?);
            Ok(ExitCode::SUCCESS)
        }
        Cmd::Export(f) => {
            print!("{}", export::to_openmetrics(&load_series(&f)?));
            Ok(ExitCode::SUCCESS)
        }
        Cmd::Gate(b, f) => cmd_gate(&b, &f),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(cmd) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("wf-metrics: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn fmt_ms_is_integer_math() {
        assert_eq!(fmt_ms(0), "0.000ms");
        assert_eq!(fmt_ms(1_234_567), "1.234ms");
        assert_eq!(fmt_ms(2_000_001_000), "2000.001ms");
    }

    #[test]
    fn drift_is_signed() {
        assert_eq!(drift(5, 8), "+3");
        assert_eq!(drift(8, 5), "-3");
        assert_eq!(drift(5, 5), "+0");
    }

    #[test]
    fn parses_subcommands() {
        assert!(matches!(parse_args(&s(&["t.jsonl"])), Ok(Cmd::Summary(f)) if f == "t.jsonl"));
        assert!(matches!(parse_args(&s(&["summary", "t.jsonl"])), Ok(Cmd::Summary(_))));
        assert!(matches!(
            parse_args(&s(&["slo-check", "slo.json", "t.jsonl"])),
            Ok(Cmd::SloCheck(c, f)) if c == "slo.json" && f == "t.jsonl"
        ));
        assert!(matches!(parse_args(&s(&["diff", "a.jsonl", "b.jsonl"])), Ok(Cmd::Diff(..))));
        assert!(matches!(parse_args(&s(&["export", "t.jsonl"])), Ok(Cmd::Export(_))));
        assert!(matches!(parse_args(&s(&["gate", "base.json", "fresh.json"])), Ok(Cmd::Gate(..))));
    }

    #[test]
    fn rejects_malformed_invocations() {
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["bogus", "x", "t.jsonl"])).is_err());
        assert!(parse_args(&s(&["slo-check", "t.jsonl"])).is_err());
        assert!(parse_args(&s(&["diff", "a.jsonl"])).is_err());
        assert!(parse_args(&s(&["gate", "base.json"])).is_err());
        assert!(parse_args(&s(&["--help"])).is_err());
    }
}
