//! The Figure 5 scenario end-to-end: two coupled simulations exchanging data
//! through staging every time step, with per-solver checkpoint periods. When
//! one solver rolls back, its replay involves **both** directions — its
//! re-reads are served the logged versions and its re-writes are absorbed —
//! while the healthy solver never stalls on inconsistent data.

use sim_core::time::SimTime;
use wfcr::protocol::WorkflowProtocol;
use workflow::config::{dns_les, FailureSpec};
use workflow::runner::run;

#[test]
fn coupled_solvers_run_failure_free() {
    let r = run(&dns_les(WorkflowProtocol::Uncoordinated));
    assert_eq!(r.finish_times_s.len(), 2);
    assert_eq!(r.digest_mismatches, 0);
    // Both components write AND read every step.
    assert!(r.puts > 0 && r.gets > 0);
    // DNS writes the full domain (2 vars × 8 blocks), LES a subset, for 12
    // steps each; both also read the other's fields.
    assert_eq!(r.steps_executed, 24);
    // Periods 4 and 5 over 12 steps → 3 + 2 checkpoints.
    assert_eq!(r.ckpts, 5);
}

#[test]
fn figure5_scenario_les_rollback_replays_both_directions() {
    // Mirrors Figure 5: solver b (LES) fails mid-run after a checkpoint;
    // staging replays the events recorded since that checkpoint.
    let cfg = dns_les(WorkflowProtocol::Uncoordinated).with_failures(vec![FailureSpec::At {
        at: SimTime::from_secs(65), // within steps 6..7 of a ~10 s/step run
        app: 1,
    }]);
    let r = run(&cfg);
    assert_eq!(r.finish_times_s.len(), 2);
    assert_eq!(r.recoveries, 1);
    assert!(r.absorbed_puts > 0, "the rolled-back solver's re-writes must be absorbed");
    assert!(r.replayed_gets > 0, "its re-reads must be served from the log");
    assert_eq!(r.digest_mismatches, 0, "replayed data is bit-identical");
}

#[test]
fn figure5_scenario_dns_rollback() {
    let cfg = dns_les(WorkflowProtocol::Uncoordinated)
        .with_failures(vec![FailureSpec::At { at: SimTime::from_secs(65), app: 0 }]);
    let r = run(&cfg);
    assert_eq!(r.recoveries, 1);
    assert!(r.absorbed_puts > 0 && r.replayed_gets > 0);
    assert_eq!(r.digest_mismatches, 0);
    assert_eq!(r.finish_times_s.len(), 2);
}

#[test]
fn coupled_solvers_uncoordinated_beats_coordinated() {
    let failure = vec![FailureSpec::At { at: SimTime::from_secs(65), app: 1 }];
    let un = run(&dns_les(WorkflowProtocol::Uncoordinated).with_failures(failure.clone()));
    let co = run(&dns_les(WorkflowProtocol::Coordinated).with_failures(failure));
    assert!(
        un.total_time_s <= co.total_time_s * 1.001,
        "Un ({}) must not lose to Co ({}) on an LES failure",
        un.total_time_s,
        co.total_time_s
    );
}

#[test]
fn coupled_solvers_deterministic() {
    let a = run(&dns_les(WorkflowProtocol::Uncoordinated));
    let b = run(&dns_les(WorkflowProtocol::Uncoordinated));
    assert_eq!(a.total_time_s, b.total_time_s);
    assert_eq!(a.events_dispatched, b.events_dispatched);
}

#[test]
fn double_failure_both_solvers() {
    let cfg = dns_les(WorkflowProtocol::Uncoordinated).with_failures(vec![
        FailureSpec::At { at: SimTime::from_secs(45), app: 0 },
        FailureSpec::At { at: SimTime::from_secs(85), app: 1 },
    ]);
    let r = run(&cfg);
    assert_eq!(r.recoveries, 2);
    assert_eq!(r.finish_times_s.len(), 2);
    assert_eq!(r.digest_mismatches, 0);
}
