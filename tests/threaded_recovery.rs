//! Full-stack recovery over real threads: producer and consumer run
//! concurrently against logging staging servers, components restart mid-run,
//! and every observation is digest-verified against the failure-free ground
//! truth. This exercises the same protocol code as the discrete-event runs
//! under genuine OS-thread interleavings.

use ckpt::CheckpointStore;
use net::threaded::ThreadedNet;
use parking_lot::Mutex;
use staging::dist::Distribution;
use staging::geometry::BBox;
use staging::payload::Payload;
use staging::proto::{AppId, PutStatus};
use staging::service::{ServerCosts, ServerLogic};
use staging::threaded::{spawn_server, SyncClient};
use std::sync::Arc;
use wfcr::backend::{pieces_digest, LoggingBackend};
use wfcr::iface::WorkflowClient;

mod common;

const SIM: AppId = 0;
const ANA: AppId = 1;

fn field(version: u32) -> impl FnMut(&BBox) -> Payload {
    move |b: &BBox| {
        let data: Vec<u8> = (0..b.volume())
            .map(|i| (version as u64 * 131 + b.lb[0] * 7 + b.lb[2] + i) as u8)
            .collect();
        Payload::inline(data)
    }
}

struct Cluster {
    handles: Vec<std::thread::JoinHandle<ServerLogic<LoggingBackend>>>,
    producer: WorkflowClient,
    consumer: WorkflowClient,
    domain: BBox,
}

fn cluster(nservers: usize) -> Cluster {
    let domain = BBox::whole([16, 16, 16]);
    let dist = Distribution::new(domain, [8, 8, 8], nservers);
    let mut eps = ThreadedNet::mesh(nservers + 2);
    let mut client_eps = eps.split_off(nservers);
    let handles: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            let mut b = LoggingBackend::new();
            b.register_app(SIM);
            b.register_app(ANA);
            spawn_server(ep, ServerLogic::new(b, ServerCosts::default()))
        })
        .collect();
    let ckpts = Arc::new(Mutex::new(CheckpointStore::new(3)));
    let consumer_ep = client_eps.pop().unwrap();
    let producer_ep = client_eps.pop().unwrap();
    let producer = WorkflowClient::new(
        SyncClient::new(producer_ep, dist.clone(), (0..nservers).collect(), SIM),
        Arc::clone(&ckpts),
    );
    let consumer = WorkflowClient::new(
        SyncClient::new(consumer_ep, dist, (0..nservers).collect(), ANA),
        ckpts,
    );
    Cluster { handles, producer, consumer, domain }
}

fn shutdown(c: Cluster) -> u64 {
    c.consumer.shutdown_servers();
    let mut mismatches = 0;
    for h in c.handles {
        mismatches += h.join().expect("server thread").backend().digest_mismatches();
    }
    mismatches
}

#[test]
fn concurrent_producer_consumer_with_consumer_restart() {
    let _wd = common::watchdog(
        "concurrent_producer_consumer_with_consumer_restart",
        std::time::Duration::from_secs(300),
    );
    let mut c = cluster(3);
    let domain = c.domain;
    let steps = 10u32;

    // Producer thread: writes steps 1..=10, checkpointing every 4.
    let mut producer = c.producer;
    let prod = std::thread::spawn(move || {
        for v in 1..=steps {
            producer.put_with_log(0, v, &domain, field(v)).expect("put");
            if v % 4 == 0 {
                producer.workflow_check(v + 1, [v as u64, 2, 3, 4], 1 << 20).expect("sim ckpt");
            }
        }
        producer
    });

    // Consumer: reads 1..=6 (blocking gets pace it behind the producer),
    // checkpoints at 5, "crashes", restarts, replays 6, continues 7..=10.
    let mut observed = Vec::new();
    for v in 1..=6u32 {
        let pieces = loop {
            // Blocking semantics live in the DES server; the threaded server
            // returns what is stored, so poll until the version lands.
            match c.consumer.get_with_log(0, v, &domain) {
                Ok(p) => break p,
                Err(_) => std::thread::yield_now(),
            }
        };
        observed.push(pieces_digest(&pieces));
        if v == 5 {
            c.consumer.workflow_check(v + 1, [9, 9, 9, v as u64], 1 << 18).expect("ana ckpt");
        }
    }

    let snap = c.consumer.workflow_restart().expect("restart");
    assert_eq!(snap.resume_step, 6);
    // Replay step 6: must observe the original digest even though the
    // producer has raced ahead.
    let pieces = c.consumer.get_with_log(0, 6, &domain).expect("replayed get");
    assert_eq!(pieces_digest(&pieces), observed[5]);

    for v in 7..=steps {
        let pieces = loop {
            match c.consumer.get_with_log(0, v, &domain) {
                Ok(p) => break p,
                Err(_) => std::thread::yield_now(),
            }
        };
        observed.push(pieces_digest(&pieces));
    }

    let producer = prod.join().expect("producer thread");
    drop(producer);
    assert_eq!(observed.len(), steps as usize);
    // Distinct steps must have produced distinct data.
    let mut unique = observed.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), observed.len(), "steps must differ in content");

    c.consumer.shutdown_servers();
    let mut mismatches = 0;
    for h in c.handles {
        mismatches += h.join().expect("server thread").backend().digest_mismatches();
    }
    assert_eq!(mismatches, 0);
}

#[test]
fn producer_restart_under_concurrent_reads() {
    let _wd = common::watchdog(
        "producer_restart_under_concurrent_reads",
        std::time::Duration::from_secs(300),
    );
    let mut c = cluster(2);
    let domain = c.domain;

    // Sequential phase: 6 steps, checkpoint sim at 4.
    let mut originals = Vec::new();
    for v in 1..=6u32 {
        let statuses = c.producer.put_with_log(0, v, &domain, field(v)).expect("put");
        assert!(statuses.iter().all(|s| *s == PutStatus::Stored));
        let pieces = c.consumer.get_with_log(0, v, &domain).expect("get");
        originals.push(pieces_digest(&pieces));
        if v == 4 {
            c.producer.workflow_check(5, [4, 4, 4, 4], 1 << 20).expect("sim ckpt");
        }
    }

    // Producer crashes and restarts; re-executes 5..=6 while the consumer
    // concurrently re-reads history (it should see unchanged data).
    let snap = c.producer.workflow_restart().expect("restart");
    assert_eq!(snap.resume_step, 5);

    let mut consumer = c.consumer;
    let reader = std::thread::spawn(move || {
        let mut seen = Vec::new();
        for v in 1..=6u32 {
            // Normal (non-replay) reads of current data.
            if let Ok(p) = consumer.get_with_log(0, v, &domain) {
                seen.push((v, pieces_digest(&p)));
            }
        }
        (consumer, seen)
    });

    let s5 = c.producer.put_with_log(0, 5, &domain, field(5)).expect("re-put 5");
    let s6 = c.producer.put_with_log(0, 6, &domain, field(6)).expect("re-put 6");
    assert!(s5.iter().all(|s| *s == PutStatus::Absorbed));
    assert!(s6.iter().all(|s| *s == PutStatus::Absorbed));
    let s7 = c.producer.put_with_log(0, 7, &domain, field(7)).expect("put 7");
    assert!(s7.iter().all(|s| *s == PutStatus::Stored));

    let (consumer, seen) = reader.join().expect("reader thread");
    for (v, digest) in seen {
        assert_eq!(
            digest,
            originals[(v - 1) as usize],
            "concurrent reader saw torn data at version {v}"
        );
    }

    let cl = Cluster { handles: c.handles, producer: c.producer, consumer, domain };
    assert_eq!(shutdown(cl), 0);
}

#[test]
fn repeated_restarts_converge() {
    let _wd = common::watchdog("repeated_restarts_converge", std::time::Duration::from_secs(300));
    let mut c = cluster(2);
    let domain = c.domain;
    let mut originals = Vec::new();
    for v in 1..=5u32 {
        c.producer.put_with_log(0, v, &domain, field(v)).expect("put");
        let pieces = c.consumer.get_with_log(0, v, &domain).expect("get");
        originals.push(pieces_digest(&pieces));
        if v == 2 {
            c.consumer.workflow_check(3, [2, 2, 2, 2], 1 << 16).expect("ckpt");
        }
    }
    // Crash-restart the consumer twice in a row; both replays must match.
    for round in 0..2 {
        let snap = c.consumer.workflow_restart().expect("restart");
        assert_eq!(snap.resume_step, 3, "round {round}");
        for v in 3..=5u32 {
            let pieces = c.consumer.get_with_log(0, v, &domain).expect("replayed get");
            assert_eq!(
                pieces_digest(&pieces),
                originals[(v - 1) as usize],
                "round {round} version {v}"
            );
        }
    }
    assert_eq!(shutdown(c), 0);
}
