//! Cold restart from durable media: the whole workflow (staging servers,
//! clients, checkpoint directory) dies and is rebuilt from the segmented
//! logs alone. The acceptance bar is byte-identical final observations
//! against an uninterrupted run — the same determinism argument the paper's
//! replay scheme rests on, extended through full process death.
//!
//! The `disk_soak_*` tests exercise the real-file (`FsMedia`) path across a
//! kill-point × flush-policy matrix; they are `#[ignore]`d for tier-1 and
//! run nightly / on the `disk-soak` CI label.

use logstore::{FlushPolicy, LogConfig, LogStore, MemMedia};
use workflow::coldstart::{
    interrupted_run, uninterrupted_digests, ColdStartPlan, FsProvider, MemProvider,
};

mod common;

#[test]
fn cold_restart_reproduces_uninterrupted_run() {
    let _wd = common::watchdog(
        "cold_restart_reproduces_uninterrupted_run",
        std::time::Duration::from_secs(300),
    );
    let plan = ColdStartPlan {
        kill_after: 8,
        log: LogConfig { flush: FlushPolicy::PerRecord, ..LogConfig::default() },
        ..ColdStartPlan::default()
    };
    let media = MemProvider::new(plan.nservers);
    let out = interrupted_run(&plan, &media).expect("interrupted run");
    assert_eq!(out.digest_mismatches, 0);
    assert_eq!(out.producer_resume, 9, "kill at 8 lands right on the period-4 checkpoint");
    assert!(out.recovered_entries > 0);
    assert!(out.recovered_snapshots > 0);
    assert_eq!(out.digests, uninterrupted_digests(&plan));
}

#[test]
fn lazy_flush_loses_only_post_checkpoint_work() {
    let _wd = common::watchdog(
        "lazy_flush_loses_only_post_checkpoint_work",
        std::time::Duration::from_secs(300),
    );
    // A huge batch threshold means *only* commit points (checkpoint/recovery
    // markers) force bytes down; everything after the last checkpoint rides
    // in the buffer and dies with the crash. Recovery must still converge to
    // the identical final state, re-executing the lost tail.
    let plan = ColdStartPlan {
        kill_after: 7,
        log: LogConfig { flush: FlushPolicy::PerBatch { records: 10_000 }, ..LogConfig::default() },
        ..ColdStartPlan::default()
    };
    let media = MemProvider::new(plan.nservers);
    let out = interrupted_run(&plan, &media).expect("interrupted run");
    assert_eq!(out.digest_mismatches, 0);
    // Steps 5..=7 were lost (buffered past the step-4 checkpoint): the
    // journal's durable prefix ends exactly at the commit point, so the
    // resume re-executes them as *fresh* work — no log entries survive to
    // absorb or replay against — and must still land on identical bytes.
    assert_eq!(out.producer_resume, 5);
    assert_eq!(out.absorbed_puts, 0, "the lost tail has nothing durable to absorb against");
    assert_eq!(out.replayed_gets, 0, "the lost tail has nothing durable to replay from");
    assert_eq!(out.digests, uninterrupted_digests(&plan));
}

#[test]
fn grouped_flush_cold_restart_stays_equivalent() {
    let _wd = common::watchdog(
        "grouped_flush_cold_restart_stays_equivalent",
        std::time::Duration::from_secs(300),
    );
    // Group commit with a deferred fsync: sealed-but-unsynced groups die
    // with the crash exactly like buffered ones, and the resumed run must
    // still converge to byte-identical observations.
    let plan = ColdStartPlan {
        kill_after: 7,
        log: LogConfig { flush: FlushPolicy::Grouped { records: 4 }, ..LogConfig::default() },
        ..ColdStartPlan::default()
    };
    let media = MemProvider::new(plan.nservers);
    let out = interrupted_run(&plan, &media).expect("interrupted run");
    assert_eq!(out.digest_mismatches, 0);
    assert_eq!(out.producer_resume, 5, "resumes from the last durable checkpoint");
    assert_eq!(out.digests, uninterrupted_digests(&plan));
}

#[test]
fn compaction_fires_across_the_cold_restart() {
    let _wd = common::watchdog(
        "compaction_fires_across_the_cold_restart",
        std::time::Duration::from_secs(300),
    );
    // Tiny segments + per-record flush: the checkpoint-watermark floor passes
    // whole segments quickly, so second-life compaction must delete some.
    let plan = ColdStartPlan {
        ckpt_period: 2,
        kill_after: 6,
        log: LogConfig { segment_bytes: 1024, flush: FlushPolicy::PerRecord },
        ..ColdStartPlan::default()
    };
    let media = MemProvider::new(plan.nservers);
    let out = interrupted_run(&plan, &media).expect("interrupted run");
    assert_eq!(out.digest_mismatches, 0);
    assert!(
        out.segments_compacted > 0,
        "1 KiB segments over 12 steps must let the GC floor retire segments"
    );
    assert_eq!(out.digests, uninterrupted_digests(&plan));
}

#[test]
fn torn_write_faults_recover_deterministically() {
    // Media-level fault injection via the deterministic plan machinery:
    // identical (plan, workload) pairs must leave identical survivors, and
    // recovery must always be a clean prefix of what was written.
    let plan = faultplane::MediaFaultPlan {
        seed: 0xC0FFEE,
        rates: faultplane::MediaFaultRates { torn_write: 0.25, bitflip: 0.0, skipped_sync: 0.2 },
        windows: Vec::new(),
    };
    let cfg = LogConfig { segment_bytes: 512, flush: FlushPolicy::PerRecord };
    let survivors = |run: u32| {
        let mem = MemMedia::new();
        let faulty = logstore::FaultyMedia::new(mem.clone(), plan.clone());
        let mut log = LogStore::open(Box::new(faulty), cfg).unwrap();
        for i in 0..40u64 {
            // Payload varies by index only — identical across runs.
            let payload = vec![(i % 251) as u8; 64];
            log.append(i, &payload).unwrap();
        }
        drop(log); // no Drop flush: crash semantics
        mem.crash();
        let recovered = LogStore::open(Box::new(mem), cfg).unwrap();
        let recs = recovered.read_all().unwrap();
        // Clean prefix: watermarks 0..k in order, payloads intact.
        for (k, r) in recs.iter().enumerate() {
            assert_eq!(r.watermark, k as u64, "run {run}: prefix broken at {k}");
            assert_eq!(r.payload, vec![(k as u64 % 251) as u8; 64]);
        }
        recs.len()
    };
    let a = survivors(1);
    let b = survivors(2);
    assert_eq!(a, b, "identical fault plans must leave identical survivors");
    assert!(a < 40, "a 25% torn-write rate over 40 per-record flushes must lose something");
}

/// A process-unique scratch root under the system temp dir (no `tempfile`
/// crate in the dependency set).
fn scratch(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("coldstart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

#[test]
#[ignore = "disk soak: real-file matrix, run nightly or via the disk-soak label"]
fn disk_soak_cold_restart_matrix() {
    let _wd =
        common::watchdog("disk_soak_cold_restart_matrix", std::time::Duration::from_secs(540));
    let policies = [
        FlushPolicy::PerRecord,
        FlushPolicy::PerBatch { records: 4 },
        FlushPolicy::PerBytes { bytes: 4096 },
        FlushPolicy::Grouped { records: 4 },
    ];
    for (pi, &flush) in policies.iter().enumerate() {
        for kill_after in [4u32, 6, 9] {
            let plan = ColdStartPlan {
                kill_after,
                log: LogConfig { segment_bytes: 4096, flush },
                ..ColdStartPlan::default()
            };
            let root = scratch(&format!("matrix-{pi}-{kill_after}"));
            let media = FsProvider::new(&root);
            let out = interrupted_run(&plan, &media).expect("interrupted run");
            assert_eq!(out.digest_mismatches, 0, "policy {pi} kill {kill_after}");
            assert_eq!(
                out.digests,
                uninterrupted_digests(&plan),
                "policy {pi} kill {kill_after}: cold restart diverged"
            );
            std::fs::remove_dir_all(&root).expect("scratch cleanup");
        }
    }
}

#[test]
#[ignore = "disk soak: DES runner over real files, run nightly or via the disk-soak label"]
fn disk_soak_des_runner_journals_to_disk() {
    let _wd = common::watchdog(
        "disk_soak_des_runner_journals_to_disk",
        std::time::Duration::from_secs(540),
    );
    let root = scratch("des");
    let cfg = workflow::config::tiny(wfcr::protocol::WorkflowProtocol::Uncoordinated)
        .with_durability(workflow::DurabilityCfg {
            dir: Some(root.to_string_lossy().into_owned()),
            segment_bytes: 16 * 1024,
            flush: FlushPolicy::PerBatch { records: 8 },
            coalesce: 8,
        });
    let r = workflow::run(&cfg);
    assert!(r.log_bytes_flushed > 0);
    // Segment files really landed on disk, one directory per server.
    let dirs = std::fs::read_dir(&root).expect("journal root").count();
    assert_eq!(dirs, cfg.nservers);
    std::fs::remove_dir_all(&root).expect("scratch cleanup");
}
