//! Long-haul stress: many steps, many failures of every kind, every
//! protocol — the workflow must always complete with zero digest mismatches.

use sim_core::time::SimTime;
use wfcr::protocol::WorkflowProtocol;
use workflow::config::{tiny, FailureSpec};
use workflow::runner::{materialize_failures, run};

mod common;

/// A 60-step tiny workflow with a dense failure schedule mixing component
/// and staging-server failures.
fn stress_cfg(protocol: WorkflowProtocol, seed: u64) -> workflow::WorkflowConfig {
    let mut cfg = tiny(protocol).with_seed(seed);
    cfg.total_steps = 60;
    let mut failures = Vec::new();
    // Component failures every ~1.3 s of the ~7 s run, alternating victims.
    for k in 0..5u64 {
        failures.push(FailureSpec::At {
            at: SimTime::from_millis(900 + k * 1_300),
            app: (k % 2) as u32,
        });
    }
    // Staging failures interleaved.
    failures.push(FailureSpec::StagingAt { at: SimTime::from_millis(1_500), server: 0 });
    failures.push(FailureSpec::StagingAt { at: SimTime::from_millis(4_200), server: 3 });
    cfg.failures = failures;
    cfg
}

#[test]
fn uncoordinated_survives_dense_failures() {
    let _wd = common::watchdog(
        "uncoordinated_survives_dense_failures",
        std::time::Duration::from_secs(300),
    );
    let r = run(&stress_cfg(WorkflowProtocol::Uncoordinated, 1));
    assert_eq!(r.finish_times_s.len(), 2);
    assert!(r.recoveries >= 4, "recoveries: {}", r.recoveries);
    assert_eq!(r.staging_rebuilds, 2);
    assert_eq!(r.digest_mismatches, 0);
    assert!(r.steps_executed > 120, "re-execution happened");
}

#[test]
fn hybrid_survives_dense_failures() {
    let _wd =
        common::watchdog("hybrid_survives_dense_failures", std::time::Duration::from_secs(300));
    let r = run(&stress_cfg(WorkflowProtocol::Hybrid, 2));
    assert_eq!(r.finish_times_s.len(), 2);
    assert!(r.failovers >= 1, "analytics failures fail over");
    assert!(r.recoveries >= 1, "simulation failures roll back");
    assert_eq!(r.digest_mismatches, 0);
}

#[test]
fn coordinated_survives_dense_failures() {
    let _wd = common::watchdog(
        "coordinated_survives_dense_failures",
        std::time::Duration::from_secs(300),
    );
    let r = run(&stress_cfg(WorkflowProtocol::Coordinated, 3));
    assert_eq!(r.finish_times_s.len(), 2);
    assert!(r.recoveries >= 4);
}

#[test]
fn individual_survives_dense_failures() {
    let _wd =
        common::watchdog("individual_survives_dense_failures", std::time::Duration::from_secs(300));
    // In completes too (it just serves possibly-stale data).
    let r = run(&stress_cfg(WorkflowProtocol::Individual, 4));
    assert_eq!(r.finish_times_s.len(), 2);
}

#[test]
fn many_random_schedules_never_wedge() {
    let _wd =
        common::watchdog("many_random_schedules_never_wedge", std::time::Duration::from_secs(300));
    // 20 random MTBF schedules across protocols: every run terminates with
    // both components finished and a clean log.
    for seed in 0..20u64 {
        let proto = match seed % 3 {
            0 => WorkflowProtocol::Uncoordinated,
            1 => WorkflowProtocol::Hybrid,
            _ => WorkflowProtocol::Coordinated,
        };
        let base = tiny(proto)
            .with_seed(500 + seed)
            .with_failures(vec![FailureSpec::Mtbf { mtbf_secs: 0.6, count: 3 }]);
        let failures = materialize_failures(&base);
        let r = run(&base.with_failures(failures));
        assert_eq!(r.finish_times_s.len(), 2, "seed {seed} proto {proto:?} wedged");
        assert_eq!(r.digest_mismatches, 0, "seed {seed} proto {proto:?}");
    }
}

#[test]
fn long_run_memory_stays_bounded_under_gc() {
    let _wd = common::watchdog(
        "long_run_memory_stays_bounded_under_gc",
        std::time::Duration::from_secs(300),
    );
    let mut cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![]);
    cfg.total_steps = 30;
    let short = run(&cfg);
    cfg.total_steps = 90;
    let long = run(&cfg);
    // GC keeps peak memory flat as the run length triples.
    assert!(
        long.staging_peak_bytes <= short.staging_peak_bytes * 3 / 2,
        "peak grew with run length: {} -> {}",
        short.staging_peak_bytes,
        long.staging_peak_bytes
    );
    assert!(long.gc_reclaimed_bytes > short.gc_reclaimed_bytes);
}
