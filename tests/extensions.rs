//! Tests for the paper's named extensions implemented in this reproduction:
//! staging-server failures survived via the resilience layer (CoREC),
//! proactive checkpointing, and two-level (multi-level) checkpoint storage.

use sim_core::time::SimTime;
use wfcr::protocol::WorkflowProtocol;
use workflow::config::{tiny, CkptTarget, FailureSpec, ProactiveCfg};
use workflow::runner::run;

#[test]
fn staging_server_failure_is_survived() {
    let cfg = tiny(WorkflowProtocol::Uncoordinated)
        .with_failures(vec![FailureSpec::StagingAt { at: SimTime::from_millis(500), server: 0 }]);
    let r = run(&cfg);
    assert_eq!(r.finish_times_s.len(), 2, "workflow completes through the rebuild");
    assert_eq!(r.staging_rebuilds, 1);
    assert_eq!(r.recoveries, 0, "no application component rolled back");
    assert_eq!(r.digest_mismatches, 0);

    // The rebuild window delays traffic: the run takes longer than clean.
    let clean = run(&tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![]));
    assert!(
        r.total_time_s >= clean.total_time_s,
        "rebuild must not make the run faster ({} vs {})",
        r.total_time_s,
        clean.total_time_s
    );
}

#[test]
fn staging_failure_preserves_coupled_data() {
    // Failure while the log holds several versions; subsequent reads (and a
    // consumer rollback replay!) still verify.
    let cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![
        FailureSpec::StagingAt { at: SimTime::from_millis(450), server: 1 },
        FailureSpec::At { at: SimTime::from_millis(900), app: 1 },
    ]);
    let r = run(&cfg);
    assert_eq!(r.finish_times_s.len(), 2);
    assert_eq!(r.staging_rebuilds, 1);
    assert_eq!(r.recoveries, 1);
    assert!(r.replayed_gets > 0, "replay still served from the rebuilt log");
    assert_eq!(r.digest_mismatches, 0);
}

#[test]
fn multiple_staging_failures() {
    let cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![
        FailureSpec::StagingAt { at: SimTime::from_millis(300), server: 0 },
        FailureSpec::StagingAt { at: SimTime::from_millis(600), server: 2 },
        FailureSpec::StagingAt { at: SimTime::from_millis(900), server: 0 },
    ]);
    let r = run(&cfg);
    assert_eq!(r.finish_times_s.len(), 2);
    assert_eq!(r.staging_rebuilds, 3);
    assert_eq!(r.digest_mismatches, 0);
}

#[test]
fn proactive_checkpoint_reduces_lost_work() {
    let failure = vec![FailureSpec::At { at: SimTime::from_millis(750), app: 0 }];

    let base = run(&tiny(WorkflowProtocol::Uncoordinated).with_failures(failure.clone()));
    assert_eq!(base.proactive_ckpts, 0);

    let mut cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(failure);
    cfg.proactive = Some(ProactiveCfg { lead: SimTime::from_millis(250), recall: 1.0 });
    let pro = run(&cfg);
    assert_eq!(pro.proactive_ckpts, 1, "the predictor triggered a checkpoint");
    assert!(
        pro.rollback_steps < base.rollback_steps,
        "proactive checkpoint must shrink lost work: {} vs {}",
        pro.rollback_steps,
        base.rollback_steps
    );
    assert!(
        pro.total_time_s < base.total_time_s,
        "less re-execution ⇒ faster run: {} vs {}",
        pro.total_time_s,
        base.total_time_s
    );
    assert_eq!(pro.digest_mismatches, 0);
}

#[test]
fn proactive_with_zero_recall_changes_nothing() {
    let failure = vec![FailureSpec::At { at: SimTime::from_millis(750), app: 0 }];
    let base = run(&tiny(WorkflowProtocol::Uncoordinated).with_failures(failure.clone()));
    let mut cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(failure);
    cfg.proactive = Some(ProactiveCfg { lead: SimTime::from_millis(250), recall: 0.0 });
    let pro = run(&cfg);
    assert_eq!(pro.proactive_ckpts, 0);
    assert_eq!(pro.total_time_s, base.total_time_s, "recall 0 ⇒ identical run");
}

#[test]
fn two_level_checkpointing_cheaper_writes() {
    // Use a config where checkpoint volume matters.
    let mut pfs_cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![]);
    // A congested per-job PFS slice (5 GB/s) vs fast node-local NVMe — the
    // regime multi-level checkpointing targets.
    pfs_cfg.pfs = ckpt::PfsModel { aggregate_bw: 5e9, latency_s: 0.02 };
    for c in pfs_cfg.components.iter_mut() {
        c.state_bytes = 8 << 30; // 8 GiB per component: PFS writes hurt
    }
    let mut tl_cfg = pfs_cfg.clone();
    tl_cfg.ckpt_target = CkptTarget::TwoLevel;
    // Fast NVMe so the two-level advantage is unambiguous.
    tl_cfg.node_local = ckpt::NodeLocalModel { bw: 20e9, latency_s: 0.0005 };

    let pfs = run(&pfs_cfg);
    let tl = run(&tl_cfg);
    assert!(
        tl.total_time_s < pfs.total_time_s,
        "two-level checkpoints must be cheaper: {} vs {}",
        tl.total_time_s,
        pfs.total_time_s
    );
}

#[test]
fn two_level_restore_still_works_after_failure() {
    let mut cfg = tiny(WorkflowProtocol::Uncoordinated)
        .with_failures(vec![FailureSpec::At { at: SimTime::from_millis(700), app: 0 }]);
    cfg.ckpt_target = CkptTarget::TwoLevel;
    let r = run(&cfg);
    assert_eq!(r.finish_times_s.len(), 2);
    assert_eq!(r.recoveries, 1);
    assert_eq!(r.digest_mismatches, 0);
}

#[test]
fn two_level_helps_coordinated_rollback_too() {
    // Healthy components under Co restore from node-local copies; only the
    // victim reads the PFS. With large state this shrinks Co's recovery.
    let failure = vec![FailureSpec::At { at: SimTime::from_millis(700), app: 0 }];
    let mut pfs_cfg = tiny(WorkflowProtocol::Coordinated).with_failures(failure.clone());
    let mut tl_cfg = tiny(WorkflowProtocol::Coordinated).with_failures(failure);
    for cfg in [&mut pfs_cfg, &mut tl_cfg] {
        cfg.pfs = ckpt::PfsModel { aggregate_bw: 5e9, latency_s: 0.02 };
        for c in cfg.components.iter_mut() {
            c.state_bytes = 8 << 30;
        }
    }
    tl_cfg.ckpt_target = CkptTarget::TwoLevel;
    tl_cfg.node_local = ckpt::NodeLocalModel { bw: 20e9, latency_s: 0.0005 };
    let pfs = run(&pfs_cfg);
    let tl = run(&tl_cfg);
    assert!(
        tl.total_time_s < pfs.total_time_s,
        "two-level Co must beat PFS Co: {} vs {}",
        tl.total_time_s,
        pfs.total_time_s
    );
}
