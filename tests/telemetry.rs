//! Telemetry guarantees: exact histograms, deterministic windowed series,
//! SLO breach detection, and scraper inertness.
//!
//! Four claims are checked here, next to `tests/observability.rs`'s trace
//! determinism suite:
//!
//! 1. **Exactness** — the mergeable log-linear histogram is associative and
//!    commutative under merge (property-tested), and its quantiles agree
//!    with the legacy P² estimator it replaced, within that estimator's
//!    own wobble.
//! 2. **Byte-determinism** — two same-seed telemetry-on runs export
//!    byte-identical JSONL and OpenMetrics series.
//! 3. **SLO evaluation** — a seeded violation scenario fails `slo-check`
//!    semantics and lands a `slo.breach` instant in the obs trace at the
//!    breaching window close.
//! 4. **Inertness** — the scraper must not perturb the simulated outcome:
//!    telemetry-on and telemetry-off runs agree on every
//!    consistency-relevant output.

use proptest::prelude::*;
use sim_core::metrics::Metrics;
use sim_core::time::SimTime;
use telemetry::{export, Histogram, Objective, SloCfg, SloEval, Target};
use wfcr::protocol::WorkflowProtocol;
use workflow::config::{tiny, FailureSpec, SupervisionCfg, TraceCfg, WorkflowConfig};
use workflow::runner::{run, run_traced};
use workflow::TelemetryCfg;

fn hist_of(values: &[u64]) -> Histogram {
    let mut h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h
}

fn telemetry_cfg() -> TelemetryCfg {
    TelemetryCfg::windowed(SimTime::from_millis(250))
}

/// A config whose windowed series has something to say: the logging
/// protocol with one mid-run consumer failure (replayed gets, a recovery).
fn failing(app: u32) -> WorkflowConfig {
    tiny(WorkflowProtocol::Uncoordinated)
        .with_failures(vec![FailureSpec::At { at: SimTime::from_millis(700), app }])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Histogram merge is commutative and associative: any split of a
    /// sample stream merges back to the same histogram, bucket for bucket.
    #[test]
    fn hist_merge_commutes_and_associates(
        a in proptest::collection::vec(0u64..2_000_000, 0..64),
        b in proptest::collection::vec(0u64..2_000_000, 0..64),
        c in proptest::collection::vec(0u64..2_000_000, 0..64),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "merge commutes");

        let mut ab_c = ab;
        ab_c.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut a_bc = ha.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc, "merge associates");

        // And the merge equals recording the concatenated stream directly.
        let mut all = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&ab_c, &hist_of(&all), "merge is lossless");
    }

    /// The exact histogram quantile and the legacy P² estimate agree on the
    /// streams `observe_tail` feeds to both. P² carries no hard bound, so
    /// the tolerance is its empirical wobble on uniform samples plus the
    /// histogram's own sub-percent bucket error.
    #[test]
    fn exact_quantile_agrees_with_p2_oracle(
        base_us in 100u64..10_000,
        spread in 2u64..10,
        n in 400usize..1200,
    ) {
        let mut m = Metrics::default();
        for i in 0..n {
            // Deterministic uniform-ish sweep over [base, spread*base) µs.
            let us = base_us + (i as u64 * 7919) % (base_us * (spread - 1));
            m.observe_tail("lat", us as f64 * 1e-6);
        }
        let exact = m.p99("lat").expect("exact p99 exists");
        let oracle = m.p99_oracle("lat").expect("P² estimate exists");
        let rel = (exact - oracle).abs() / oracle.max(1e-12);
        prop_assert!(rel < 0.15, "exact {exact} vs P² {oracle}: rel {rel}");
    }
}

#[test]
fn same_seed_series_exports_are_byte_identical() {
    let cfg = failing(1).with_telemetry(telemetry_cfg());
    let ra = run(&cfg);
    let rb = run(&cfg);
    let sa = ra.series.expect("telemetry-on run attaches a series");
    let sb = rb.series.expect("telemetry-on run attaches a series");
    assert!(!sa.windows.is_empty(), "scraper closed windows");
    assert_eq!(export::to_jsonl(&sa), export::to_jsonl(&sb), "JSONL export must be byte-identical");
    assert_eq!(
        export::to_openmetrics(&sa),
        export::to_openmetrics(&sb),
        "OpenMetrics export must be byte-identical"
    );
    // The lossless form round-trips.
    let back = export::from_jsonl(&export::to_jsonl(&sa)).expect("parse");
    assert_eq!(back, sa);
}

#[test]
fn telemetry_scraper_is_inert() {
    for cfg in [tiny(WorkflowProtocol::Uncoordinated), failing(0), failing(1)] {
        let off = run(&cfg);
        let on = run(&cfg.with_telemetry(telemetry_cfg()));
        assert_eq!(on.total_time_s, off.total_time_s, "{}", cfg.label);
        assert_eq!(on.puts, off.puts, "{}", cfg.label);
        assert_eq!(on.gets, off.gets, "{}", cfg.label);
        assert_eq!(on.recoveries, off.recoveries, "{}", cfg.label);
        assert_eq!(on.digest_mismatches, off.digest_mismatches, "{}", cfg.label);
        assert_eq!(on.replayed_gets, off.replayed_gets, "{}", cfg.label);
        // Only the scrape ticks themselves may differ.
        assert!(on.events_dispatched >= off.events_dispatched, "{}", cfg.label);
    }
}

#[test]
fn hot_path_gauges_land_in_the_series() {
    let cfg = tiny(WorkflowProtocol::Uncoordinated).with_telemetry(telemetry_cfg());
    let series = run(&cfg).series.expect("series");
    let has_gauge = |name: &str| series.windows.iter().any(|w| w.gauge(name).is_some());
    assert!(has_gauge("staging.server0.get_waits"), "get-wait depth is sampled");
    assert!(has_gauge("staging.server0.log_events"), "live log-event depth is sampled");
    assert!(has_gauge("staging.server0.bytes"), "resident bytes are sampled");
    // The logging backend held live events at some window close.
    let peak_log_events =
        series.gauge_points("staging.server0.log_events").map(|(_, v)| v).max().unwrap_or(0);
    assert!(peak_log_events > 0, "logging run holds live events");
    // And the windowed put-latency decomposition merges back to a
    // cumulative histogram that covers every put the report counted.
    let cum = series.cumulative_hist("wf.put_response_s").expect("put latency histogram");
    assert!(cum.count() > 0);
}

#[test]
fn seeded_slo_violation_breaches_and_lands_in_the_trace() {
    // An objective no run can hold: sub-nanosecond p99 on the put path,
    // zero tolerance for violating windows.
    let slo = SloCfg {
        objectives: vec![Objective {
            name: "put-p99".into(),
            target: Target::Quantile { metric: "wf.put_response_s".into(), q: 0.99, max_s: 1e-9 },
            budget: 0.01,
            burn_windows: 1,
        }],
    };
    let cfg = tiny(WorkflowProtocol::Uncoordinated)
        .with_telemetry(telemetry_cfg().with_slo(slo.clone()))
        .with_tracing(TraceCfg::full());
    let (report, trace) = run_traced(&cfg);
    let slo_report = report.slo.expect("SLO report attached");
    assert!(!slo_report.ok(), "impossible objective breaches");
    let breaches = slo_report.breaches();
    assert!(!breaches.is_empty());

    // Offline replay over the exported series produces the same breaches —
    // the `wf-metrics slo-check` contract.
    let series = report.series.expect("series");
    let offline = SloEval::evaluate(&slo, &series);
    assert_eq!(offline, slo_report, "online and offline evaluation agree");

    // The breach instant sits in the obs trace at the window close.
    let instants: Vec<_> = trace
        .records
        .iter()
        .filter(|r| r.k == obs::RecordKind::Instant && r.name == "slo.breach")
        .collect();
    assert_eq!(instants.len(), breaches.len(), "one instant per breach");
    assert_eq!(instants[0].t, breaches[0].at_ns, "instant lands at the breaching close");
    assert!(
        instants[0].args.iter().any(|a| a.k == "objective" && a.v == "put-p99"),
        "instant names the objective"
    );

    // An honest objective on the same run holds.
    let ok_slo = SloCfg {
        objectives: vec![Objective {
            name: "put-p99-lenient".into(),
            target: Target::Quantile { metric: "wf.put_response_s".into(), q: 0.99, max_s: 10.0 },
            budget: 0.5,
            burn_windows: 4,
        }],
    };
    assert!(SloEval::evaluate(&ok_slo, &series).ok(), "lenient objective holds");
}

#[test]
fn supervised_outages_feed_the_mttr_series_and_slo() {
    let cfg =
        failing(1).with_supervision(SupervisionCfg::default()).with_telemetry(telemetry_cfg());
    let report = run(&cfg);
    assert!(report.recoveries > 0, "the failure recovered");
    let series = report.series.expect("series");
    let mttr = series.cumulative_hist("sup.outage_s").expect("outage tail recorded");
    assert!(mttr.count() >= 1, "at least the injected outage");

    // The paper's `recovery.mttr < Y s` SLO form: worst outage under a
    // bound that the observed MTTR satisfies, and one it cannot.
    let objective = |max_s: f64| SloCfg {
        objectives: vec![Objective {
            name: "mttr".into(),
            target: Target::Quantile { metric: "sup.outage_s".into(), q: 1.0, max_s },
            budget: 0.01,
            burn_windows: 1,
        }],
    };
    assert!(SloEval::evaluate(&objective(60.0), &series).ok(), "loose MTTR bound holds");
    assert!(!SloEval::evaluate(&objective(1e-9), &series).ok(), "impossible MTTR bound breaches");
}
