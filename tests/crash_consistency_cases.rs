//! The two anomalies of the paper's Figure 2, demonstrated and closed.
//!
//! * **Case 1** — the analytics fails and re-reads steps it already
//!   processed while the simulation has moved on. Under *individual* C/R
//!   (plain staging, bounded version retention) it observes the **wrong
//!   version**; under the logging scheme it re-observes the original data.
//! * **Case 2** — the simulation fails and re-writes steps already staged.
//!   Under individual C/R the duplicate writes land as fresh data (and can
//!   resurrect stale versions); under the logging scheme they are absorbed.

use staging::geometry::BBox;
use staging::payload::Payload;
use staging::proto::{CtlRequest, GetRequest, ObjDesc, PutRequest, PutStatus};
use staging::service::{PlainBackend, StoreBackend};
use wfcr::backend::{pieces_digest, LoggingBackend};

const SIM: u32 = 0;
const ANA: u32 = 1;

fn bbox() -> BBox {
    BBox::d1(0, 63)
}

fn put(version: u32) -> PutRequest {
    PutRequest {
        app: SIM,
        desc: ObjDesc { var: 0, version, bbox: bbox() },
        payload: Payload::virtual_from(64, &[version as u64]),
        seq: 0,
        tctx: obs::TraceCtx::NONE,
    }
}

fn get(version: u32) -> GetRequest {
    GetRequest { app: ANA, var: 0, version, bbox: bbox(), seq: 0, tctx: obs::TraceCtx::NONE }
}

/// Drive six coupled steps against any backend, returning per-step digests.
fn six_steps<B: StoreBackend>(b: &mut B) -> Vec<u64> {
    (1..=6u32)
        .map(|v| {
            b.put(&put(v));
            let (pieces, _) = b.get(&get(v));
            pieces_digest(&pieces)
        })
        .collect()
}

#[test]
fn case1_anomaly_exists_without_logging() {
    // Plain staging retains only the latest 2 versions (DataSpaces-style).
    let mut plain = PlainBackend::new(2);
    let original = six_steps(&mut plain);

    // Analytics "rolls back" to step 3 and re-reads steps 4..=6. Versions 4
    // and older were evicted; it gets served *newer/stale-resolved* data —
    // the case-1 anomaly ("the re-executive analytics process will get the
    // wrong version of data").
    let (pieces, _) = plain.get(&get(4));
    let redo4 = pieces_digest(&pieces);
    assert_ne!(
        redo4, original[3],
        "without logging, the rolled-back consumer must observe wrong data"
    );
}

#[test]
fn case1_anomaly_closed_by_logging() {
    let mut logged = LoggingBackend::new();
    logged.register_app(SIM);
    logged.register_app(ANA);
    let original = six_steps(&mut logged);

    logged.control(CtlRequest::Checkpoint { app: ANA, upto_version: 3 });
    logged.control(CtlRequest::Recovery { app: ANA, resume_version: 3 });
    for v in 4..=6u32 {
        let (pieces, _) = logged.get(&get(v));
        assert_eq!(
            pieces_digest(&pieces),
            original[(v - 1) as usize],
            "replayed read of step {v} must match the original"
        );
    }
    assert_eq!(logged.digest_mismatches(), 0);
}

#[test]
fn case2_anomaly_exists_without_logging() {
    let mut plain = PlainBackend::new(2);
    six_steps(&mut plain);

    // Simulation rolls back to step 4 and re-executes: its re-puts of 5 and
    // 6 are accepted as *fresh* writes ("unnecessarily perform the data
    // updating operation twice").
    let (s5, stats5) = plain.put(&put(5));
    assert_eq!(s5, PutStatus::Stored, "plain staging cannot recognize re-writes");
    assert!(stats5.touched_bytes > 0, "the duplicate write costs a full copy");
}

#[test]
fn case2_anomaly_closed_by_logging() {
    let mut logged = LoggingBackend::new();
    logged.register_app(SIM);
    logged.register_app(ANA);
    six_steps(&mut logged);

    logged.control(CtlRequest::Checkpoint { app: SIM, upto_version: 4 });
    logged.control(CtlRequest::Recovery { app: SIM, resume_version: 4 });
    for v in 5..=6u32 {
        let (status, stats) = logged.put(&put(v));
        assert_eq!(status, PutStatus::Absorbed, "re-write of step {v}");
        assert_eq!(stats.touched_bytes, 0, "absorption copies nothing");
    }
    // The workflow continues: step 7 is fresh.
    let (status, _) = logged.put(&put(7));
    assert_eq!(status, PutStatus::Stored);
    assert_eq!(logged.absorbed_puts(), 2);
    assert_eq!(logged.digest_mismatches(), 0);
}

#[test]
fn consumer_downstream_of_producer_rollback_sees_single_consistent_history() {
    // Combined scenario: producer rolls back *while* the consumer continues
    // forward. The consumer's later reads must see exactly one version of
    // each step, identical to the pre-failure content.
    let mut logged = LoggingBackend::new();
    logged.register_app(SIM);
    logged.register_app(ANA);

    // Producer writes 1..=6; consumer has only read 1..=3 so far.
    let mut writes = Vec::new();
    for v in 1..=6u32 {
        logged.put(&put(v));
        writes.push(v);
    }
    let mut observed = Vec::new();
    for v in 1..=3u32 {
        let (pieces, _) = logged.get(&get(v));
        observed.push(pieces_digest(&pieces));
    }

    // Producer fails, rolls back to 4, re-puts 5..=6 (absorbed), continues 7.
    logged.control(CtlRequest::Checkpoint { app: SIM, upto_version: 4 });
    logged.control(CtlRequest::Recovery { app: SIM, resume_version: 4 });
    assert_eq!(logged.put(&put(5)).0, PutStatus::Absorbed);
    assert_eq!(logged.put(&put(6)).0, PutStatus::Absorbed);
    assert_eq!(logged.put(&put(7)).0, PutStatus::Stored);

    // Consumer now reads 4..=7 for the first time: every read is served and
    // matches the canonical content for that version.
    for v in 4..=7u32 {
        let (pieces, _) = logged.get(&get(v));
        assert!(!pieces.is_empty(), "step {v} must be readable");
        let expect = Payload::virtual_from(64, &[v as u64]).digest();
        let got = pieces[0].payload.digest();
        assert_eq!(got, expect, "step {v} content");
    }
    assert_eq!(logged.digest_mismatches(), 0);
}
