//! Garbage-collection safety (paper §III-A.2): GC may only delete logged
//! data that **no possible rollback** can still need.
//!
//! Strategy: generate random interleavings of coupling steps, checkpoints
//! and recoveries; after every recovery, assert the replay is fully served
//! from the log with the original digests — i.e. GC (which runs at every
//! checkpoint) never deleted anything a replay later required. Also assert
//! GC is not vacuous: with both components checkpointing, memory is actually
//! reclaimed.

use proptest::prelude::*;
use staging::geometry::BBox;
use staging::payload::Payload;
use staging::proto::{CtlRequest, GetRequest, ObjDesc, PutRequest};
use staging::service::StoreBackend;
use wfcr::backend::{pieces_digest, LoggingBackend};

const SIM: u32 = 0;
const ANA: u32 = 1;

#[derive(Debug, Clone)]
enum Op {
    /// One coupling step (put + get).
    Step,
    /// Simulation checkpoints at its current step.
    CkptSim,
    /// Analytics checkpoints at its current step.
    CkptAna,
    /// Analytics fails, rolls back, replays everything since its last
    /// checkpoint.
    FailAna,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::Step),
        1 => Just(Op::CkptSim),
        1 => Just(Op::CkptAna),
        1 => Just(Op::FailAna),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn gc_never_starves_replay(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut backend = LoggingBackend::new();
        backend.register_app(SIM);
        backend.register_app(ANA);

        let bbox = BBox::d1(0, 99);
        let mut step = 0u32;
        let mut ana_ckpt = 0u32;
        // (version, digest) observed by the consumer, newest last.
        let mut observed: Vec<(u32, u64)> = Vec::new();

        for op in ops {
            match op {
                Op::Step => {
                    step += 1;
                    backend.put(&PutRequest {
                        app: SIM,
                        desc: ObjDesc { var: 0, version: step, bbox },
                        payload: Payload::virtual_from(100, &[step as u64]),
                        seq: 0,
                        tctx: obs::TraceCtx::NONE,
                    });
                    let (pieces, _) = backend.get(&GetRequest {
                        app: ANA,
                        var: 0,
                        version: step,
                        bbox,
                        seq: 0,
                        tctx: obs::TraceCtx::NONE,
                    });
                    prop_assert!(!pieces.is_empty(), "normal get must be served");
                    observed.push((step, pieces_digest(&pieces)));
                }
                Op::CkptSim => {
                    backend.control(CtlRequest::Checkpoint { app: SIM, upto_version: step });
                }
                Op::CkptAna => {
                    ana_ckpt = step;
                    backend.control(CtlRequest::Checkpoint { app: ANA, upto_version: step });
                }
                Op::FailAna => {
                    backend.control(CtlRequest::Recovery {
                        app: ANA,
                        resume_version: ana_ckpt,
                    });
                    // Replay every observation newer than the checkpoint.
                    for &(v, digest) in observed.iter().filter(|(v, _)| *v > ana_ckpt) {
                        let (pieces, _) = backend.get(&GetRequest {
                            app: ANA,
                            var: 0,
                            version: v,
                            bbox,
                            seq: 0,
                            tctx: obs::TraceCtx::NONE,
                        });
                        prop_assert!(
                            !pieces.is_empty(),
                            "GC deleted version {} still needed by replay (ana_ckpt={})",
                            v, ana_ckpt
                        );
                        prop_assert_eq!(
                            pieces_digest(&pieces), digest,
                            "replayed digest diverged at version {}", v
                        );
                    }
                    prop_assert!(!backend.is_replaying(ANA));
                }
            }
        }
        prop_assert_eq!(backend.digest_mismatches(), 0);
    }
}

#[test]
fn gc_actually_reclaims() {
    let mut backend = LoggingBackend::new();
    backend.register_app(SIM);
    backend.register_app(ANA);
    let bbox = BBox::d1(0, 999);
    for v in 1..=20u32 {
        backend.put(&PutRequest {
            app: SIM,
            desc: ObjDesc { var: 0, version: v, bbox },
            payload: Payload::virtual_from(1000, &[v as u64]),
            seq: 0,
            tctx: obs::TraceCtx::NONE,
        });
        backend.get(&GetRequest {
            app: ANA,
            var: 0,
            version: v,
            bbox,
            seq: 0,
            tctx: obs::TraceCtx::NONE,
        });
    }
    let before = backend.bytes_resident();
    backend.control(CtlRequest::Checkpoint { app: SIM, upto_version: 20 });
    backend.control(CtlRequest::Checkpoint { app: ANA, upto_version: 20 });
    let after = backend.bytes_resident();
    assert!(
        after < before / 3,
        "GC should reclaim most of the 20-version log: {before} -> {after}"
    );
    assert!(backend.gc_reclaimed() >= 19_000, "19 payload versions freed");
    // Latest version must survive for ongoing coupling.
    assert!(backend.store().covers_any(0, 20, &bbox));
}

#[test]
fn gc_floor_respects_slowest_component() {
    let mut backend = LoggingBackend::new();
    backend.register_app(SIM);
    backend.register_app(ANA);
    let bbox = BBox::d1(0, 99);
    for v in 1..=10u32 {
        backend.put(&PutRequest {
            app: SIM,
            desc: ObjDesc { var: 0, version: v, bbox },
            payload: Payload::virtual_from(100, &[v as u64]),
            seq: 0,
            tctx: obs::TraceCtx::NONE,
        });
        backend.get(&GetRequest {
            app: ANA,
            var: 0,
            version: v,
            bbox,
            seq: 0,
            tctx: obs::TraceCtx::NONE,
        });
    }
    // Only the simulation checkpoints — analytics could still roll back to 0
    // and replay everything, so nothing may be collected.
    backend.control(CtlRequest::Checkpoint { app: SIM, upto_version: 10 });
    assert_eq!(backend.store().versions(0).len(), 10, "log pinned by analytics");
    // Analytics checkpoints at 6: versions 1..=5 become collectible.
    backend.control(CtlRequest::Checkpoint { app: ANA, upto_version: 6 });
    let versions = backend.store().versions(0);
    assert!(!versions.contains(&1) && !versions.contains(&5), "old versions gone");
    assert!(versions.contains(&7) && versions.contains(&10), "recent kept");
}
