//! The core crash-consistency property, tested at the backend level:
//!
//! **Replay equivalence** — for any coupling schedule, checkpoint periods,
//! and failure point, the sequence of `(version, digest)` a recovering
//! component observes during replay equals what the original execution
//! observed; and once replay completes, execution continues from a
//! consistent state.
//!
//! This is the invariant behind both Figure 2 anomalies being closed.

use proptest::prelude::*;
use staging::geometry::BBox;
use staging::payload::Payload;
use staging::proto::{CtlRequest, GetRequest, ObjDesc, PutRequest, PutStatus};
use staging::service::StoreBackend;
use wfcr::backend::{pieces_digest, LoggingBackend};

const SIM: u32 = 0;
const ANA: u32 = 1;

fn put_req(version: u32, var: u32) -> PutRequest {
    PutRequest {
        app: SIM,
        desc: ObjDesc { var, version, bbox: BBox::d1(0, 63) },
        payload: Payload::virtual_from(64, &[var as u64, version as u64]),
        seq: 0,
        tctx: obs::TraceCtx::NONE,
    }
}

fn get_req(version: u32, var: u32) -> GetRequest {
    GetRequest { app: ANA, var, version, bbox: BBox::d1(0, 63), seq: 0, tctx: obs::TraceCtx::NONE }
}

/// Drive `steps` of write-then-read coupling with the given checkpoint
/// periods, recording what the consumer observes.
fn run_coupling(
    backend: &mut LoggingBackend,
    from: u32,
    to: u32,
    nvars: u32,
    sim_period: u32,
    ana_period: u32,
    observations: &mut Vec<(u32, u32, u64)>,
) {
    for v in from..=to {
        for var in 0..nvars {
            backend.put(&put_req(v, var));
        }
        for var in 0..nvars {
            let (pieces, _) = backend.get(&get_req(v, var));
            observations.push((v, var, pieces_digest(&pieces)));
        }
        if v % sim_period == 0 {
            backend.control(CtlRequest::Checkpoint { app: SIM, upto_version: v });
        }
        if v % ana_period == 0 {
            backend.control(CtlRequest::Checkpoint { app: ANA, upto_version: v });
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Consumer rollback: replayed observations equal the originals, for any
    /// failure step and checkpoint periods.
    #[test]
    fn consumer_replay_equivalence(
        steps in 4u32..24,
        nvars in 1u32..4,
        sim_period in 2u32..8,
        ana_period in 2u32..8,
        fail_frac in 0.0f64..1.0,
    ) {
        let mut backend = LoggingBackend::new();
        backend.register_app(SIM);
        backend.register_app(ANA);

        // The failure strikes after `fail_step` coupling cycles; the
        // component rolls back to its newest checkpoint at that moment.
        let fail_step = 1 + ((steps - 1) as f64 * fail_frac) as u32;
        let mut original = Vec::new();
        run_coupling(&mut backend, 1, fail_step, nvars, sim_period, ana_period, &mut original);

        let resume = (fail_step / ana_period) * ana_period; // last ana ckpt
        backend.control(CtlRequest::Recovery { app: ANA, resume_version: resume });

        // Replay: re-issue exactly the gets the original issued after
        // `resume`, in order.
        for &(v, var, orig_digest) in original.iter().filter(|(v, _, _)| *v > resume) {
            let (pieces, _) = backend.get(&get_req(v, var));
            prop_assert_eq!(
                pieces_digest(&pieces),
                orig_digest,
                "replayed get v={} var={} diverged", v, var
            );
        }
        prop_assert!(!backend.is_replaying(ANA), "script fully consumed");
        prop_assert_eq!(backend.digest_mismatches(), 0);

        // Execution continues consistently to the end of the run.
        let mut more = Vec::new();
        run_coupling(
            &mut backend, fail_step + 1, steps + 1, nvars, sim_period, ana_period, &mut more,
        );
        prop_assert_eq!(more.len() as u32, (steps + 1 - fail_step) * nvars);
    }

    /// Producer rollback: every redundant re-put is absorbed with a matching
    /// digest, and consumers are never exposed to duplicate versions.
    #[test]
    fn producer_replay_absorption(
        steps in 4u32..24,
        nvars in 1u32..4,
        sim_period in 2u32..8,
        fail_frac in 0.0f64..1.0,
    ) {
        let mut backend = LoggingBackend::new();
        backend.register_app(SIM);
        backend.register_app(ANA);
        let fail_step = 1 + ((steps - 1) as f64 * fail_frac) as u32;
        let mut original = Vec::new();
        run_coupling(&mut backend, 1, fail_step, nvars, sim_period, 5, &mut original);

        let resume = (fail_step / sim_period) * sim_period;
        backend.control(CtlRequest::Recovery { app: SIM, resume_version: resume });

        // Deterministic re-execution re-puts (resume, fail_step].
        for v in (resume + 1)..=fail_step {
            for var in 0..nvars {
                let (status, _) = backend.put(&put_req(v, var));
                prop_assert_eq!(status, PutStatus::Absorbed, "re-put v={} var={}", v, var);
            }
        }
        prop_assert_eq!(backend.digest_mismatches(), 0);
        prop_assert!(!backend.is_replaying(SIM));

        // New writes after catching up are stored normally, and versions in
        // the store remain strictly monotonic (no duplicates appeared).
        let (status, _) = backend.put(&put_req(fail_step + 1, 0));
        prop_assert_eq!(status, PutStatus::Stored);
        for var in 0..nvars {
            let versions = backend.store().versions(var);
            let mut sorted = versions.clone();
            sorted.dedup();
            prop_assert_eq!(&sorted, &versions, "duplicate versions in store");
        }
    }

    /// Mixed failure: both components roll back (at different times); both
    /// replays complete without cross-talk.
    #[test]
    fn double_rollback_isolated(
        steps in 6u32..20,
        sim_period in 2u32..6,
        ana_period in 2u32..6,
    ) {
        let mut backend = LoggingBackend::new();
        backend.register_app(SIM);
        backend.register_app(ANA);
        let mut original = Vec::new();
        run_coupling(&mut backend, 1, steps, 1, sim_period, ana_period, &mut original);

        let sim_resume = (steps / sim_period) * sim_period.min(steps);
        let ana_resume = (steps / ana_period) * ana_period.min(steps);
        backend.control(CtlRequest::Recovery { app: SIM, resume_version: sim_resume });
        backend.control(CtlRequest::Recovery { app: ANA, resume_version: ana_resume });

        for v in (sim_resume + 1)..=steps {
            let (status, _) = backend.put(&put_req(v, 0));
            prop_assert_eq!(status, PutStatus::Absorbed);
        }
        for &(v, var, orig) in original.iter().filter(|(v, _, _)| *v > ana_resume) {
            let (pieces, _) = backend.get(&get_req(v, var));
            prop_assert_eq!(pieces_digest(&pieces), orig);
        }
        prop_assert_eq!(backend.digest_mismatches(), 0);
        prop_assert!(!backend.is_replaying(SIM));
        prop_assert!(!backend.is_replaying(ANA));
    }
}
