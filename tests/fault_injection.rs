//! Fault-injection campaign: the crash-consistency protocols must hold not
//! just under fail-stop component crashes but under a hostile interconnect —
//! dropped, duplicated, reordered and delayed messages — in both execution
//! modes (discrete-event and real threads).
//!
//! The replay-equivalence invariant checked throughout: a run that crashes,
//! rolls back and replays under network faults must observe byte-identical
//! data to a failure-free, fault-free run, and the servers' replay digest
//! verification must count zero mismatches. A companion mutation check
//! proves the checker has teeth: deliberately breaking the servers'
//! exactly-once request cache makes it fail.

mod common;

use ckpt::CheckpointStore;
use faultplane::{FaultPlan, FaultRates, RetryPolicy};
use net::threaded::ThreadedNet;
use parking_lot::Mutex;
use proptest::prelude::*;
use shardmap::{MapHistory, ShardMap};
use staging::dist::Distribution;
use staging::geometry::BBox;
use staging::payload::Payload;
use staging::proto::{AppId, CtlAck, CtlMsg, CtlRequest};
use staging::server::HEADER_BYTES;
use staging::service::{ServerCosts, ServerLogic};
use staging::threaded::{spawn_server, SyncClient};
use staging::Router;
use std::sync::Arc;
use std::time::Duration;
use wfcr::backend::{pieces_digest, LoggingBackend};
use wfcr::iface::WorkflowClient;
use wfcr::protocol::WorkflowProtocol;
use workflow::config::{tiny, FailureSpec};
use workflow::runner::run;

const SIM: AppId = 0;
const ANA: AppId = 1;

fn field(version: u32) -> impl FnMut(&BBox) -> Payload {
    move |b: &BBox| {
        let data: Vec<u8> = (0..b.volume())
            .map(|i| (version as u64 * 131 + b.lb[0] * 7 + b.lb[2] + i) as u8)
            .collect();
        Payload::inline(data)
    }
}

/// Unlimited attempts, short windows, generous deadline: rides out every
/// injected fault while still failing loudly if a server truly wedges.
fn patient() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 0,
        base_ns: 1_000_000,
        cap_ns: 8_000_000,
        deadline_ns: 60_000_000_000,
        seed: 7,
    }
}

fn lossy(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        rates: FaultRates {
            drop: 0.08,
            duplicate: 0.12,
            reorder: 0.08,
            delay: 0.10,
            max_extra_delay_ns: 200_000,
            ..Default::default()
        },
        windows: Vec::new(),
    }
}

/// Two-component crash/recovery workflow over real threads against a
/// `plan`-faulted mesh: the producer writes 10 steps and crash-restarts
/// after step 7 (its re-execution of 5..=7 must be absorbed); the consumer
/// reads all 10, crash-restarting after step 6 (its re-read of 6 must
/// replay from the log). Returns the consumer's observed digests and the
/// servers' replay digest mismatch count.
fn crash_recovery_run(nservers: usize, plan: FaultPlan) -> (Vec<u64>, u64) {
    crash_recovery_run_routed(nservers, plan, None)
}

/// The same campaign over a sharded fleet: with a partition-map `history`
/// the clients route every block through the shard-aware [`Router`] instead
/// of the plain distribution. `None` reproduces the unsharded harness.
fn crash_recovery_run_routed(
    nservers: usize,
    plan: FaultPlan,
    history: Option<MapHistory>,
) -> (Vec<u64>, u64) {
    let domain = BBox::whole([16, 16, 16]);
    let dist = Distribution::new(domain, [8, 8, 8], nservers);
    let router = |d: Distribution| match &history {
        Some(h) => Router::sharded(d, h.clone()),
        None => Router::unsharded(d),
    };
    let mut eps = ThreadedNet::mesh_with_faults(nservers + 2, plan);
    let mut client_eps = eps.split_off(nservers);
    let handles: Vec<_> = eps
        .into_iter()
        .map(|ep| {
            let mut b = LoggingBackend::new();
            b.register_app(SIM);
            b.register_app(ANA);
            spawn_server(ep, ServerLogic::new(b, ServerCosts::default()))
        })
        .collect();
    let ckpts = Arc::new(Mutex::new(CheckpointStore::new(4)));
    let consumer_ep = client_eps.pop().unwrap();
    let producer_ep = client_eps.pop().unwrap();
    let mut producer = WorkflowClient::new(
        SyncClient::new_routed(producer_ep, router(dist.clone()), (0..nservers).collect(), SIM)
            .with_retry(patient()),
        Arc::clone(&ckpts),
    );
    let mut consumer = WorkflowClient::new(
        SyncClient::new_routed(consumer_ep, router(dist), (0..nservers).collect(), ANA)
            .with_retry(patient()),
        ckpts,
    );

    let steps = 10u32;
    let prod = std::thread::spawn(move || {
        for v in 1..=7u32 {
            producer.put_with_log(0, v, &domain, field(v)).expect("put");
            if v % 4 == 0 {
                producer.workflow_check(v + 1, [v as u64, 2, 3, 4], 1 << 20).expect("sim ckpt");
            }
        }
        // Crash after step 7: restore the step-4 checkpoint and re-execute.
        let snap = producer.workflow_restart().expect("sim restart");
        assert_eq!(snap.resume_step, 5);
        for v in snap.resume_step..=steps {
            producer.put_with_log(0, v, &domain, field(v)).expect("re-put");
            if v % 4 == 0 {
                producer.workflow_check(v + 1, [v as u64, 2, 3, 4], 1 << 20).expect("sim ckpt");
            }
        }
        producer
    });

    // The threaded server answers gets immediately with what is stored, so
    // poll until the version lands (blocking gets live in the DES server).
    fn read(consumer: &mut WorkflowClient, v: u32, domain: &BBox) -> u64 {
        loop {
            match consumer.get_with_log(0, v, domain) {
                Ok(p) => break pieces_digest(&p),
                Err(_) => std::thread::yield_now(),
            }
        }
    }

    let mut observed = Vec::new();
    for v in 1..=6u32 {
        observed.push(read(&mut consumer, v, &domain));
        if v == 5 {
            consumer.workflow_check(v + 1, [9, 9, 9, v as u64], 1 << 18).expect("ana ckpt");
        }
    }
    let snap = consumer.workflow_restart().expect("ana restart");
    assert_eq!(snap.resume_step, 6);
    let replayed = read(&mut consumer, 6, &domain);
    assert_eq!(replayed, observed[5], "replay must reproduce the crash-time observation");
    for v in 7..=steps {
        observed.push(read(&mut consumer, v, &domain));
    }

    let producer = prod.join().expect("producer thread");
    drop(producer);
    consumer.shutdown_servers();
    let mut mismatches = 0;
    for h in handles {
        mismatches += h.join().expect("server thread").backend().digest_mismatches();
    }
    (observed, mismatches)
}

#[test]
fn threaded_replay_equivalence_under_faults() {
    let _wd =
        common::watchdog("threaded_replay_equivalence_under_faults", Duration::from_secs(300));
    let (truth, clean_mism) = crash_recovery_run(3, FaultPlan::quiescent(0));
    assert_eq!(clean_mism, 0);
    for seed in [3u64, 17, 42] {
        let (observed, mismatches) = crash_recovery_run(3, lossy(seed));
        assert_eq!(observed, truth, "seed {seed}: faults must not change observed data");
        assert_eq!(mismatches, 0, "seed {seed}: replay verification failed");
    }
}

/// Sharded replay-equivalence, threaded half: the same crash/recovery
/// campaign routed through a hashed partition map at 1, 2 and 4 shards
/// observes byte-identical data to the unsharded ground truth — with a
/// quiescent mesh and under injected faults — and every shard's replay
/// digest verification stays clean. Re-homing blocks must never change
/// what a reader sees.
#[test]
fn sharded_threaded_replay_equivalence_across_shard_counts() {
    let _wd = common::watchdog("sharded_threaded_replay_equivalence", Duration::from_secs(300));
    let (truth, clean_mism) = crash_recovery_run(3, FaultPlan::quiescent(0));
    assert_eq!(clean_mism, 0);
    for nshards in [1usize, 2, 4] {
        let history = MapHistory::single(ShardMap::hashed(nshards, 0xC0FFEE));
        let (observed, mismatches) =
            crash_recovery_run_routed(nshards, FaultPlan::quiescent(0), Some(history.clone()));
        assert_eq!(observed, truth, "{nshards} shards: routing must not change observed data");
        assert_eq!(mismatches, 0, "{nshards} shards: replay verification failed");
        let (observed, mismatches) = crash_recovery_run_routed(nshards, lossy(21), Some(history));
        assert_eq!(observed, truth, "{nshards} shards under faults: observed data changed");
        assert_eq!(mismatches, 0, "{nshards} shards under faults: replay drifted");
    }
}

/// Sharded replay-equivalence, DES half: a sharded run with a component
/// crash and a faulted interconnect produces a byte-identical report when
/// re-run at every fleet size, and the replay digests verify clean — the
/// deterministic-simulation counterpart of the threaded campaign above.
#[test]
fn sharded_des_reports_are_byte_identical_per_shard_count() {
    use workflow::config::{ShardAssign, ShardingCfg};
    for nshards in [1usize, 2, 4] {
        let mut cfg = tiny(WorkflowProtocol::Uncoordinated)
            .with_sharding(ShardingCfg {
                assign: ShardAssign::Hashed { seed: 0xC0FFEE },
                rebalance: None,
            })
            .with_failures(vec![FailureSpec::At {
                at: sim_core::time::SimTime::from_millis(700),
                app: 1,
            }])
            .with_net_faults(lossy(9));
        cfg.nservers = nshards;
        let r = run(&cfg);
        assert_eq!(r.finish_times_s.len(), 2, "{nshards} shards: must finish");
        assert_eq!(r.shards, nshards as u64);
        assert_eq!(r.digest_mismatches, 0, "{nshards} shards: replay drifted");
        assert_eq!(r.stale_gets, 0);
        assert_eq!(r.recoveries, 1);
        let again = run(&cfg);
        assert_eq!(
            r.to_json_line(),
            again.to_json_line(),
            "{nshards} shards: same seed, same report"
        );
    }
}

/// Mutation check: deliberately break the servers' exactly-once request
/// cache and prove the equivalence checker notices.
///
/// The adversarial schedule is the one the `CtlMsg` envelope exists for: a
/// coordinated `GlobalReset` is delivered, re-execution refills the
/// discarded steps, and then the network redelivers the stale reset
/// envelope. An intact dedup cache answers the duplicate from the recorded
/// ack; a broken one re-applies it and throws away re-executed data.
fn redelivered_reset_scenario(dedup: bool) -> bool {
    let domain = BBox::whole([8, 8, 8]);
    let dist = Distribution::new(domain, [8, 8, 8], 1);
    // Mesh: 0 = server, 1 = producer, 2 = consumer, 3 = "the network",
    // used to redeliver a stale control envelope at a chosen moment.
    let mut eps = ThreadedNet::mesh(4);
    let net_ep = eps.pop().unwrap();
    let consumer_ep = eps.pop().unwrap();
    let producer_ep = eps.pop().unwrap();
    let server_ep = eps.remove(0);
    let mut b = LoggingBackend::new();
    b.register_app(SIM);
    b.register_app(ANA);
    let mut logic = ServerLogic::new(b, ServerCosts::default());
    logic.set_request_dedup(dedup);
    let handle = spawn_server(server_ep, logic);

    let mut producer = SyncClient::new(producer_ep, dist.clone(), vec![0], SIM);
    let mut consumer = SyncClient::new(consumer_ep, dist, vec![0], ANA);

    // Ground truth: steps 1..=4 as first written and observed.
    let mut truth = Vec::new();
    for v in 1..=4u32 {
        producer.put(0, v, &domain, field(v)).expect("put");
        truth.push(pieces_digest(&consumer.get(0, v, &domain).expect("get")));
    }
    // Coordinated rollback to step 2. The whole-domain puts used seqs
    // 0..=3, so this envelope carries seq 4 — remember it for redelivery.
    producer.global_reset(2).expect("reset");
    // Deterministic re-execution refills steps 3 and 4.
    for v in 3..=4u32 {
        producer.put(0, v, &domain, field(v)).expect("re-put");
    }
    // The network now redelivers the old reset, after re-execution.
    let stale = CtlMsg {
        app: SIM,
        seq: 4,
        req: CtlRequest::GlobalReset { to_version: 2 },
        tctx: obs::TraceCtx::NONE,
    };
    assert!(net_ep.send(0, HEADER_BYTES, stale));
    // Every envelope is acked, duplicate or not: once the ack arrives the
    // redelivery has been fully processed.
    loop {
        let m = net_ep.recv_timeout(Duration::from_secs(10)).expect("redelivery ack");
        if m.payload.is::<CtlAck>() {
            break;
        }
    }

    // Replay-equivalence check: the re-executed store must still serve the
    // ground-truth bytes for every step.
    let ok = (1..=4u32).all(|v| match consumer.get(0, v, &domain) {
        Ok(p) => pieces_digest(&p) == truth[v as usize - 1],
        Err(_) => false,
    });
    consumer.shutdown_servers();
    handle.join().expect("server thread");
    ok
}

#[test]
fn broken_request_dedup_fails_the_checker() {
    let _wd = common::watchdog("broken_request_dedup_fails_the_checker", Duration::from_secs(120));
    assert!(redelivered_reset_scenario(true), "intact dedup must absorb the redelivered reset");
    assert!(
        !redelivered_reset_scenario(false),
        "a broken dedup must be caught by the equivalence check"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DES mode: across fault seeds, a component crash composed with
    /// drop/dup/reorder/delay still recovers with exact replay.
    #[test]
    fn des_replay_equivalence_under_faults(seed in 0u64..1 << 32, victim in 0u32..2) {
        let cfg = tiny(WorkflowProtocol::Uncoordinated)
            .with_failures(vec![FailureSpec::At {
                at: sim_core::time::SimTime::from_millis(700),
                app: victim,
            }])
            .with_net_faults(lossy(seed));
        let r = run(&cfg);
        prop_assert_eq!(r.finish_times_s.len(), 2, "both components must finish");
        prop_assert_eq!(r.recoveries, 1);
        prop_assert_eq!(r.digest_mismatches, 0, "replay must be exact under faults");
        prop_assert_eq!(r.stale_gets, 0, "logging protocols never serve stale data");
    }
}

/// Same `{seed, plan}` twice ⇒ byte-identical run report, including the
/// fault-driven retry counts (determinism satellite; the pure fault
/// schedule is covered in `faultplane`'s own tests).
#[test]
fn fault_injected_runs_are_byte_identical() {
    let cfg = tiny(WorkflowProtocol::Uncoordinated)
        .with_failures(vec![FailureSpec::At {
            at: sim_core::time::SimTime::from_millis(700),
            app: 0,
        }])
        .with_net_faults(lossy(5));
    let a = serde_json::to_string(&run(&cfg)).expect("serialize");
    let b = serde_json::to_string(&run(&cfg)).expect("serialize");
    assert_eq!(a, b, "identical {{seed, plan}} must reproduce the report byte-for-byte");
    let r: workflow::RunReport = serde_json::from_str(&a).expect("round trip");
    assert!(r.net_retries > 0, "the report must show the faults were actually exercised");
}

/// Long-running soak matrix (CI `fault-soak` job): every protocol × a spread
/// of fault seeds, in both execution modes.
#[test]
#[ignore = "soak matrix; run with `cargo test --release -- --ignored fault_soak`"]
fn fault_soak() {
    let _wd = common::watchdog("fault_soak", Duration::from_secs(570));
    for protocol in
        [WorkflowProtocol::Uncoordinated, WorkflowProtocol::Coordinated, WorkflowProtocol::Hybrid]
    {
        for seed in 0..16u64 {
            let cfg = tiny(protocol)
                .with_failures(vec![FailureSpec::At {
                    at: sim_core::time::SimTime::from_millis(700),
                    app: (seed % 2) as u32,
                }])
                .with_net_faults(lossy(seed));
            let r = run(&cfg);
            assert_eq!(r.finish_times_s.len(), 2, "{protocol:?} seed {seed}: must finish");
            assert_eq!(r.digest_mismatches, 0, "{protocol:?} seed {seed}: replay drifted");
        }
    }
    let (truth, _) = crash_recovery_run(3, FaultPlan::quiescent(0));
    for seed in 0..6u64 {
        let (observed, mismatches) = crash_recovery_run(3, lossy(seed));
        assert_eq!(observed, truth, "threaded seed {seed}: observed data changed");
        assert_eq!(mismatches, 0, "threaded seed {seed}: replay verification failed");
    }
}
