//! Self-healing supervision: automatic restarts, dead-letter quarantine,
//! and the cascading-failure scenario matrix.
//!
//! The invariants pinned here, per the supervision design (DESIGN §8):
//!
//! * A single component crash — including one landing *during its own
//!   recovery* — recovers under every [`RecoveryPolicy`] without a global
//!   rollback: only the victim rolls back, the run completes, and the
//!   staging replay digests verify clean.
//! * A poison put crash-loops its consumer until the breaker trips, the
//!   step is quarantined to the dead-letter queue, and the *rest* of the
//!   run completes — byte-identically across same-seed runs.
//! * The DLQ persisted through `logstore` survives a process restart.
//! * The cascading/correlated/fail-during-recovery matrix from
//!   `faultplane::scenario` is deterministic end to end (soak, `--ignored`).

mod common;

use std::time::Duration;
use supervise::{DeadLetterQueue, RecoveryPolicy};
use wfcr::protocol::WorkflowProtocol;
use workflow::config::{tiny, FailureSpec, SupervisionCfg, TraceCfg, WorkflowConfig};
use workflow::runner::run;
use workflow::RunReport;

use sim_core::time::SimTime;

/// Supervised tiny workflow under the uncoordinated (logging) protocol —
/// logging keeps the replay digest checker live so `digest_mismatches`
/// means something in every test.
fn supervised(policy: RecoveryPolicy) -> WorkflowConfig {
    tiny(WorkflowProtocol::Uncoordinated)
        .with_supervision(SupervisionCfg::default())
        .with_recovery(policy)
}

fn assert_completed(rep: &RunReport, ctx: &str) {
    assert_eq!(rep.finish_times_s.len(), 2, "{ctx}: both components must finish");
    assert_eq!(rep.digest_mismatches, 0, "{ctx}: replay digests must verify clean");
}

/// One mid-run crash of the consumer, per recovery policy. Each policy
/// restarts exactly once, only the victim pays (no global rollback), and
/// the policies' restore costs are ordered the way the design promises:
/// journal replay skips the checkpoint-image read, restart-in-place skips
/// the rollback entirely.
#[test]
fn single_crash_recovers_per_policy() {
    let _wd = common::watchdog("single_crash_recovers_per_policy", Duration::from_secs(120));
    let fail = vec![FailureSpec::At { at: SimTime::from_millis(700), app: 1 }];

    let ck = run(&supervised(RecoveryPolicy::Checkpoint).with_failures(fail.clone()));
    assert_completed(&ck, "checkpoint");
    assert_eq!(ck.restarts, 1);
    assert_eq!(ck.quarantined, 0);
    assert_eq!(ck.recoveries, 1, "checkpoint: only the victim rolls back");
    assert!(ck.mttr_mean_s > 0.0 && ck.mttr_max_s >= ck.mttr_mean_s);

    let jr = run(&supervised(RecoveryPolicy::JournalReplay).with_failures(fail.clone()));
    assert_completed(&jr, "journal-replay");
    assert_eq!(jr.restarts, 1);
    assert_eq!(jr.recoveries, 1);
    assert!(
        jr.recovery_restore_s < ck.recovery_restore_s,
        "journal replay must skip the checkpoint-image read ({} vs {})",
        jr.recovery_restore_s,
        ck.recovery_restore_s
    );

    let ip = run(&supervised(RecoveryPolicy::RestartInPlace).with_failures(fail));
    assert_completed(&ip, "restart-in-place");
    assert_eq!(ip.restarts, 1);
    assert_eq!(ip.recoveries, 0, "restart-in-place does not roll back");
    assert_eq!(ip.rollback_steps, 0);
    assert!(ip.mttr_mean_s > 0.0);
}

/// Satellite 4 — the deterministic poison-put regression. A poisoned step-3
/// input kills the consumer on every attempt; after `poison_threshold`
/// deaths the breaker quarantines the step to the DLQ, the consumer skips
/// it, and the rest of the run completes. Two same-seed runs must produce
/// byte-identical reports.
#[test]
fn poison_put_quarantines_and_rest_completes_byte_identically() {
    let _wd = common::watchdog("poison_put_quarantines", Duration::from_secs(120));
    let cfg = supervised(RecoveryPolicy::Checkpoint)
        .with_failures(vec![FailureSpec::PoisonPut { victim: 1, step: 3 }]);
    let a = run(&cfg);
    assert_completed(&a, "poison-put");
    assert_eq!(a.quarantined, 1, "the poisoned step must land in the DLQ");
    assert_eq!(
        a.restarts as u32,
        SupervisionCfg::default().poison_threshold,
        "one restart per death until the breaker trips"
    );
    assert!(a.mttr_mean_s > 0.0);

    let b = run(&cfg);
    assert_eq!(a.to_json_line(), b.to_json_line(), "same seed, same supervised report");
}

/// Without supervision the same poison-put spec is rejected up front — the
/// config layer refuses a plan that would wedge the run in a crash loop.
#[test]
fn poison_put_without_supervision_is_rejected() {
    let cfg = tiny(WorkflowProtocol::Uncoordinated)
        .with_failures(vec![FailureSpec::PoisonPut { victim: 1, step: 3 }]);
    let err = cfg.validate().unwrap_err();
    assert!(err.contains("supervision"), "unexpected error: {err}");
}

/// The second blow lands while the first recovery is still in flight: the
/// outage extends (one long MTTR streak, growing backoff) instead of
/// deadlocking or double-restarting, and the run still completes.
#[test]
fn crash_during_recovery_extends_the_outage() {
    let _wd = common::watchdog("crash_during_recovery", Duration::from_secs(120));
    let cfg = supervised(RecoveryPolicy::Checkpoint).with_failures(vec![
        FailureSpec::FailDuringRecovery {
            at: SimTime::from_millis(700),
            app: 1,
            again_after: SimTime::from_millis(80),
        },
    ]);
    let rep = run(&cfg);
    assert_completed(&rep, "fail-during-recovery");
    assert_eq!(rep.restarts, 2, "both deaths must be granted a restart");
    assert_eq!(rep.quarantined, 0);
    assert!(
        rep.mttr_max_s > 0.08,
        "the re-death must extend the same outage past the 80 ms lag (mttr_max={})",
        rep.mttr_max_s
    );

    let again = run(&cfg);
    assert_eq!(rep.to_json_line(), again.to_json_line());
}

/// Cascading (domino) and correlated (same-instant) multi-component
/// failures: every victim recovers independently, recoveries overlap
/// without interfering, and same-seed runs stay byte-identical.
#[test]
fn cascading_and_correlated_failures_recover_deterministically() {
    let _wd = common::watchdog("cascading_and_correlated", Duration::from_secs(120));
    let cascade =
        supervised(RecoveryPolicy::Checkpoint).with_failures(vec![FailureSpec::Cascading {
            at: SimTime::from_millis(600),
            first: 0,
            spread: SimTime::from_millis(120),
            servers: vec![],
        }]);
    let c1 = run(&cascade);
    assert_completed(&c1, "cascading");
    assert_eq!(c1.restarts, 2, "the failure must spread to both components");
    assert_eq!(c1.to_json_line(), run(&cascade).to_json_line());

    let correlated =
        supervised(RecoveryPolicy::Checkpoint).with_failures(vec![FailureSpec::Correlated {
            at: SimTime::from_millis(650),
            apps: vec![0, 1],
            servers: vec![],
        }]);
    let r1 = run(&correlated);
    assert_completed(&r1, "correlated");
    assert_eq!(r1.restarts, 2, "both victims must restart");
    assert_eq!(r1.to_json_line(), run(&correlated).to_json_line());
}

/// A replicated component's fail-stop routes through the supervisor as an
/// *outage*, not a restart grant: the replica is already serving, so
/// failover semantics are unchanged (one failover, no rollback, same
/// completion), but the supervisor now opens an MTTR window around the
/// failover pause and closes it on the component's next recovered beacon.
#[test]
fn replicated_failover_routes_through_the_supervisor() {
    let _wd = common::watchdog("replicated_failover", Duration::from_secs(120));
    // Hybrid replicates the consumer; fail it mid-run.
    let fail = vec![FailureSpec::At { at: SimTime::from_millis(700), app: 1 }];

    let unsup = run(&tiny(WorkflowProtocol::Hybrid).with_failures(fail.clone()));
    assert_eq!(unsup.failovers, 1);
    assert_eq!(unsup.restarts, 0);
    assert_eq!(unsup.mttr_mean_s, 0.0, "no supervisor, no MTTR accounting");

    let cfg = tiny(WorkflowProtocol::Hybrid)
        .with_supervision(SupervisionCfg::default())
        .with_failures(fail);
    let sup = run(&cfg);
    assert_eq!(sup.finish_times_s.len(), 2);
    assert_eq!(sup.failovers, 1, "failover semantics unchanged under supervision");
    assert_eq!(sup.recoveries, unsup.recoveries, "replication still absorbs the death");
    assert_eq!(sup.digest_mismatches, 0);
    assert_eq!(sup.restarts, 1, "the outage is accounted by the policy machine");
    assert_eq!(sup.quarantined, 0);
    assert!(
        sup.mttr_mean_s > 0.0,
        "the supervisor must time the failover outage (mttr={})",
        sup.mttr_mean_s
    );
    assert!(
        (sup.total_time_s - unsup.total_time_s).abs() < 1e-9,
        "accounting must not change the run ({} vs {})",
        sup.total_time_s,
        unsup.total_time_s
    );

    let again = run(&cfg);
    assert_eq!(sup.to_json_line(), again.to_json_line(), "same seed, same supervised report");
}

/// The dead-letter queue is a `logstore` log: letters written during the
/// run are readable by a fresh process (simulated here by re-opening the
/// sink from disk) with domain, step, death count and reason intact.
#[test]
fn dead_letter_queue_persists_across_restart() {
    let _wd = common::watchdog("dlq_persists", Duration::from_secs(120));
    let dir = std::env::temp_dir().join(format!("sup-dlq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let sup = SupervisionCfg {
        dlq_dir: Some(dir.to_string_lossy().into_owned()),
        ..SupervisionCfg::default()
    };
    let cfg = tiny(WorkflowProtocol::Uncoordinated)
        .with_supervision(sup)
        .with_failures(vec![FailureSpec::PoisonPut { victim: 1, step: 3 }]);
    let rep = run(&cfg);
    assert_eq!(rep.quarantined, 1);

    let media = Box::new(logstore::FsMedia::new(&dir).unwrap());
    let dlq = DeadLetterQueue::load(media, logstore::LogConfig::default()).unwrap();
    assert_eq!(dlq.len(), 1, "exactly one letter must survive the restart");
    let letter = &dlq.letters()[0];
    assert_eq!(letter.domain, "comp:1");
    assert_eq!(letter.step, 3);
    assert_eq!(letter.deaths, SupervisionCfg::default().poison_threshold);
    assert_eq!(letter.reason, "poison-put");

    let _ = std::fs::remove_dir_all(&dir);
}

/// The staging servers a scenario cell's `srv:N` shard target names.
fn shard_servers(s: &faultplane::Scenario) -> Vec<usize> {
    s.shard.into_iter().map(|n| n as usize).collect()
}

/// Map one scenario-matrix cell onto a concrete workflow config.
fn scenario_cfg(s: &faultplane::Scenario) -> WorkflowConfig {
    use faultplane::ScenarioKind;
    let at = SimTime::from_millis(s.at_ms);
    let lag = SimTime::from_millis(s.lag_ms);
    let failures = match s.kind {
        ScenarioKind::Cascading => {
            vec![FailureSpec::Cascading { at, first: 0, spread: lag, servers: shard_servers(s) }]
        }
        ScenarioKind::Correlated => {
            vec![FailureSpec::Correlated { at, apps: vec![0, 1], servers: shard_servers(s) }]
        }
        ScenarioKind::FailDuringRecovery => {
            vec![FailureSpec::FailDuringRecovery { at, app: 1, again_after: lag }]
        }
        ScenarioKind::PoisonPut => vec![FailureSpec::PoisonPut { victim: 1, step: 3 }],
    };
    let mut cfg = supervised(RecoveryPolicy::Checkpoint).with_failures(failures).with_seed(s.seed);
    cfg.trace = Some(TraceCfg { flight_cap: Some(2048) });
    cfg
}

/// Satellite 5 — the supervision soak: sweep the full cascading-failure
/// scenario matrix, run every cell twice, and require completion, clean
/// digests and byte-identical reports. Each cell is armed with a watchdog
/// that dumps the obs flight recorder and the engine trace ring on hang,
/// so a wedged cell dies with its evidence attached. Nightly / label-run
/// via CI; locally: `cargo test --test supervision -- --ignored`.
#[test]
#[ignore]
fn supervision_soak() {
    let cells = faultplane::scenario::matrix(&[7, 11], &[600, 700], &[80]);
    for cell in &cells {
        let cfg = scenario_cfg(cell);
        cfg.validate().unwrap_or_else(|e| panic!("{}: invalid cfg: {e}", cell.label()));

        let mut built = workflow::runner::build(&cfg);
        let ring = built.engine.enable_trace_shared(512);
        let wd = common::watchdog_with_dump(
            "supervision_soak",
            Duration::from_secs(120),
            common::dump_tracer_and_ring(built.tracer.clone(), ring),
        );
        built.engine.run_limited(200_000_000);
        let rep = workflow::runner::harvest(&mut built);
        drop(wd);

        assert_completed(&rep, &cell.label());
        assert!(rep.restarts > 0, "{}: supervision must have acted", cell.label());
        let again = run(&cfg);
        assert_eq!(
            rep.to_json_line(),
            again.to_json_line(),
            "{}: same seed, same report",
            cell.label()
        );
    }
    eprintln!("supervision_soak: {} cells green", cells.len());
}
