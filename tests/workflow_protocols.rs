//! End-to-end protocol invariants on the discrete-event workflow engine:
//! every protocol completes, preserves consistency where it promises to,
//! and the paper's performance orderings hold.

use sim_core::time::SimTime;
use wfcr::protocol::WorkflowProtocol;
use workflow::config::{tiny, FailureSpec};
use workflow::runner::{materialize_failures, run};

#[test]
fn all_protocols_complete_failure_free() {
    for proto in WorkflowProtocol::all() {
        let r = run(&tiny(proto).with_failures(vec![]));
        assert_eq!(r.finish_times_s.len(), 2, "{proto:?}");
        assert_eq!(r.recoveries, 0);
        assert_eq!(r.digest_mismatches, 0);
        assert!(r.total_time_s > 0.0);
    }
}

#[test]
fn all_protocols_complete_with_failures_each_victim() {
    for proto in [
        WorkflowProtocol::Coordinated,
        WorkflowProtocol::Uncoordinated,
        WorkflowProtocol::Hybrid,
        WorkflowProtocol::Individual,
    ] {
        for victim in [0u32, 1] {
            let cfg = tiny(proto).with_failures(vec![FailureSpec::At {
                at: SimTime::from_millis(700),
                app: victim,
            }]);
            let r = run(&cfg);
            assert_eq!(r.finish_times_s.len(), 2, "{proto:?} victim {victim} did not complete");
            assert_eq!(r.digest_mismatches, 0, "{proto:?} victim {victim}");
        }
    }
}

#[test]
fn failure_free_is_fastest() {
    let ds = run(&tiny(WorkflowProtocol::FailureFree).with_failures(vec![]));
    let failure = vec![FailureSpec::At { at: SimTime::from_millis(700), app: 0 }];
    for proto in [
        WorkflowProtocol::Coordinated,
        WorkflowProtocol::Uncoordinated,
        WorkflowProtocol::Hybrid,
        WorkflowProtocol::Individual,
    ] {
        let r = run(&tiny(proto).with_failures(failure.clone()));
        assert!(
            r.total_time_s > ds.total_time_s,
            "{proto:?}: failure run ({}) must exceed failure-free ({})",
            r.total_time_s,
            ds.total_time_s
        );
    }
}

#[test]
fn uncoordinated_never_slower_than_coordinated() {
    // Across many failure schedules, Un beats or ties Co.
    for seed in 0..10u64 {
        let base = tiny(WorkflowProtocol::Uncoordinated)
            .with_seed(100 + seed)
            .with_failures(vec![workflow::config::FailureSpec::Mtbf { mtbf_secs: 1.0, count: 1 }]);
        let failures = materialize_failures(&base);
        let un = run(&tiny(WorkflowProtocol::Uncoordinated)
            .with_seed(100 + seed)
            .with_failures(failures.clone()));
        let co =
            run(&tiny(WorkflowProtocol::Coordinated).with_seed(100 + seed).with_failures(failures));
        assert!(
            un.total_time_s <= co.total_time_s * 1.001,
            "seed {seed}: Un {} vs Co {}",
            un.total_time_s,
            co.total_time_s
        );
    }
}

#[test]
fn individual_is_lower_bound_among_failure_protocols() {
    let failure = vec![FailureSpec::At { at: SimTime::from_millis(700), app: 0 }];
    let ind = run(&tiny(WorkflowProtocol::Individual).with_failures(failure.clone()));
    for proto in [WorkflowProtocol::Coordinated, WorkflowProtocol::Uncoordinated] {
        let r = run(&tiny(proto).with_failures(failure.clone()));
        assert!(
            ind.total_time_s <= r.total_time_s * 1.001,
            "In ({}) must lower-bound {:?} ({})",
            ind.total_time_s,
            proto,
            r.total_time_s
        );
    }
}

#[test]
fn logging_overhead_bounded() {
    // Producer-only configuration isolates the write path from consumer
    // get/put interleaving noise (which at toy scale can mask the logging
    // cost in either direction).
    let mut ds_cfg = tiny(WorkflowProtocol::FailureFree).with_failures(vec![]);
    ds_cfg.components.truncate(1);
    let mut un_cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![]);
    un_cfg.components.truncate(1);
    let ds = run(&ds_cfg);
    let un = run(&un_cfg);
    let delta = un.write_response_delta_pct(&ds);
    assert!(delta > 3.0, "logging must add write latency: {delta}%");
    assert!(delta < 60.0, "write overhead out of control: {delta}%");

    // Memory overhead is measured on the full coupled workflow (GC needs the
    // consumer's checkpoints to advance).
    let ds_full = run(&tiny(WorkflowProtocol::FailureFree).with_failures(vec![]));
    let un_full = run(&tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![]));
    let mem = un_full.memory_delta_pct(&ds_full);
    assert!(mem > 0.0 && mem < 400.0, "memory overhead out of range: {mem}%");
}

#[test]
fn replay_happens_only_under_logging_protocols() {
    let failure = vec![FailureSpec::At { at: SimTime::from_millis(700), app: 1 }];
    let un = run(&tiny(WorkflowProtocol::Uncoordinated).with_failures(failure.clone()));
    assert!(un.replayed_gets > 0);
    let ind = run(&tiny(WorkflowProtocol::Individual).with_failures(failure.clone()));
    assert_eq!(ind.replayed_gets, 0, "In has no log to replay from");
    let co = run(&tiny(WorkflowProtocol::Coordinated).with_failures(failure));
    assert_eq!(co.replayed_gets, 0, "Co re-executes instead of replaying");
}

#[test]
fn multiple_failures_multiple_recoveries() {
    let cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![
        FailureSpec::At { at: SimTime::from_millis(300), app: 0 },
        FailureSpec::At { at: SimTime::from_millis(700), app: 1 },
        FailureSpec::At { at: SimTime::from_millis(1_100), app: 0 },
    ]);
    let r = run(&cfg);
    assert_eq!(r.recoveries, 3);
    assert_eq!(r.finish_times_s.len(), 2);
    assert_eq!(r.digest_mismatches, 0);
    assert!(r.absorbed_puts > 0 && r.replayed_gets > 0);
}

#[test]
fn runs_are_deterministic_across_protocols() {
    for proto in WorkflowProtocol::all() {
        let a = run(&tiny(proto));
        let b = run(&tiny(proto));
        assert_eq!(a.total_time_s, b.total_time_s, "{proto:?}");
        assert_eq!(a.events_dispatched, b.events_dispatched, "{proto:?}");
        assert_eq!(a.staging_peak_bytes, b.staging_peak_bytes, "{proto:?}");
        assert_eq!(a.net_bytes, b.net_bytes, "{proto:?}");
    }
}

#[test]
fn seed_changes_jitter_but_not_structure() {
    let a = run(&tiny(WorkflowProtocol::Uncoordinated).with_seed(1).with_failures(vec![]));
    let b = run(&tiny(WorkflowProtocol::Uncoordinated).with_seed(2).with_failures(vec![]));
    assert_ne!(a.total_time_s, b.total_time_s, "jitter must differ");
    assert_eq!(a.puts, b.puts, "request structure is seed-independent");
    assert_eq!(a.ckpts, b.ckpts);
}

#[test]
fn late_failure_and_early_failure_both_recover() {
    for at_ms in [120u64, 700, 1_900] {
        let cfg = tiny(WorkflowProtocol::Uncoordinated)
            .with_failures(vec![FailureSpec::At { at: SimTime::from_millis(at_ms), app: 0 }]);
        let r = run(&cfg);
        assert_eq!(r.finish_times_s.len(), 2, "failure at {at_ms}ms");
        assert_eq!(r.digest_mismatches, 0);
    }
}

#[test]
fn individual_serves_stale_data_after_consumer_rollback() {
    // The paper's justification for In being only a *theoretical* bound: a
    // rolled-back consumer under In re-reads evicted versions and is served
    // whatever survives — quantified by the stale_gets counter.
    let failure = vec![FailureSpec::At { at: SimTime::from_millis(900), app: 1 }];
    let ind = run(&tiny(WorkflowProtocol::Individual).with_failures(failure.clone()));
    assert!(ind.stale_gets > 0, "In must expose stale reads after a consumer rollback");
    // The logging scheme serves the exact logged versions instead.
    let un = run(&tiny(WorkflowProtocol::Uncoordinated).with_failures(failure));
    assert_eq!(un.stale_gets, 0, "Un never serves unverified stale data");
    assert!(un.replayed_gets > 0);
}

#[test]
fn coordinated_failure_during_rendezvous_window() {
    // Hit the failure right around the step-4 coordinated checkpoint, when
    // components may be parked in the rendezvous — the director must clear
    // the rendezvous state and drive the global rollback to completion.
    for at_ms in 390..=440u64 {
        if at_ms % 10 != 0 {
            continue;
        }
        let cfg = tiny(WorkflowProtocol::Coordinated)
            .with_failures(vec![FailureSpec::At { at: SimTime::from_millis(at_ms), app: 0 }]);
        let r = run(&cfg);
        assert_eq!(r.finish_times_s.len(), 2, "stuck at failure time {at_ms}ms");
        assert_eq!(r.recoveries, 2);
    }
}

#[test]
fn failure_during_checkpoint_write_recovers() {
    // Un: fail the simulation while it is writing a checkpoint (steps 4/8/12
    // at ~100 ms/step; the PFS write adds ~20 ms after step end).
    for at_ms in [405u64, 410, 415] {
        let cfg = tiny(WorkflowProtocol::Uncoordinated)
            .with_failures(vec![FailureSpec::At { at: SimTime::from_millis(at_ms), app: 0 }]);
        let r = run(&cfg);
        assert_eq!(r.finish_times_s.len(), 2, "stuck at {at_ms}ms");
        assert_eq!(r.recoveries, 1);
        assert_eq!(r.digest_mismatches, 0);
    }
}

#[test]
fn back_to_back_failures_same_component() {
    // Second failure arrives shortly after the first recovery completes.
    let cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![
        FailureSpec::At { at: SimTime::from_millis(600), app: 0 },
        FailureSpec::At { at: SimTime::from_millis(780), app: 0 },
    ]);
    let r = run(&cfg);
    assert_eq!(r.finish_times_s.len(), 2);
    assert!(r.recoveries + u64::from(r.rollback_steps == 0) >= 1);
    assert_eq!(r.digest_mismatches, 0);
}

#[test]
fn simultaneous_failures_both_components() {
    let cfg = tiny(WorkflowProtocol::Uncoordinated).with_failures(vec![
        FailureSpec::At { at: SimTime::from_millis(700), app: 0 },
        FailureSpec::At { at: SimTime::from_millis(700), app: 1 },
    ]);
    let r = run(&cfg);
    assert_eq!(r.finish_times_s.len(), 2);
    assert_eq!(r.recoveries, 2);
    assert_eq!(r.digest_mismatches, 0);
}
