//! Model-checker end-to-end tests: bounded-exhaustive exploration of the
//! micro workflow, seeded-violation detection with ddmin minimization, a
//! byte-identical stored-schedule regression, the DPOR-vs-DFS equivalence
//! property, and the happens-before analysis of the threaded control plane.

use mcheck::{ExploreConfig, Explorer, HbTracker, Schedule};
use sim_core::time::SimTime;
use std::path::PathBuf;
use std::sync::Mutex;
use wfcr::protocol::WorkflowProtocol;
use workflow::config::micro;
use workflow::mcheck_mode::{self, CrashChoice, McheckOptions, WorkflowModel};

/// The options used both to generate and to replay the stored regression
/// schedule: seeded replay-version skew plus one candidate consumer crash
/// routed through a Timing choice point.
fn seeded_opts() -> McheckOptions {
    McheckOptions {
        replay_version_skew: 1,
        crash_choices: vec![CrashChoice { at: SimTime::from_millis(5), app: 1 }],
        ..Default::default()
    }
}

fn small_explore(por: bool) -> ExploreConfig {
    ExploreConfig {
        max_branch_points: 4,
        max_schedules: 2_000,
        por,
        state_prune: false,
        stop_on_first: false,
        minimize: true,
    }
}

fn stored_schedule_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/schedules/micro_skew.schedule")
}

#[test]
fn bounded_exploration_of_clean_micro_is_violation_free() {
    // No version skew: the scheduler may crash the consumer at any candidate
    // point and recovery must stay consistent on every explored schedule.
    let cfg = micro(WorkflowProtocol::Uncoordinated);
    let opts = McheckOptions {
        crash_choices: vec![CrashChoice { at: SimTime::from_millis(5), app: 1 }],
        ..Default::default()
    };
    let (out, report) = mcheck_mode::explore(&cfg, opts, small_explore(true));
    assert!(out.violations.is_empty(), "clean micro violated: {:?}", out.violated_oracles());
    assert!(out.schedules_explored > 1, "same-time batches must branch the tree");
    assert!(!out.truncated, "bounded micro tree must be fully explored");
    // The runner-mode report carries the exploration counters.
    assert_eq!(report.schedules_explored, out.schedules_explored);
    assert_eq!(report.states_pruned, out.states_pruned);
    assert_eq!(report.digest_mismatches, 0);
}

#[test]
fn seeded_skew_violation_is_found_minimized_and_replayable() {
    let cfg = micro(WorkflowProtocol::Uncoordinated);
    let ex = Explorer::new(small_explore(true));
    let model = WorkflowModel::new(cfg.clone(), seeded_opts());
    let out = ex.explore(&model);
    assert!(
        out.violated_oracles().contains(&"replay-version-fidelity".to_string()),
        "seeded skew must trip the fidelity oracle, got {:?}",
        out.violated_oracles()
    );
    let v = out
        .violations
        .iter()
        .find(|v| v.oracle == "replay-version-fidelity")
        .expect("fidelity violation present");

    // The counterexample is a real crash schedule: it forces the Timing pick.
    assert!(
        v.schedule.choices.iter().any(|c| c.kind == "timing" && c.picked > 0),
        "counterexample must include the crash-timing pick: {:?}",
        v.schedule.choices
    );

    // It replays deterministically to the same violation...
    let replayed = mcheck_mode::replay_schedule(&cfg, seeded_opts(), &v.schedule);
    assert_eq!(
        replayed.as_ref().map(|(o, _)| o.as_str()),
        Some("replay-version-fidelity"),
        "minimized schedule must reproduce the violation"
    );

    // ...and it is 1-minimal: weakening any non-default pick loses it.
    let picks = v.schedule.picks();
    for i in 0..picks.len() {
        if picks[i] == 0 {
            continue;
        }
        let mut weaker = picks.clone();
        weaker[i] = 0;
        let weaker_sched = Schedule {
            format: mcheck::schedule::FORMAT,
            label: v.schedule.label.clone(),
            choices: v
                .schedule
                .choices
                .iter()
                .zip(&weaker)
                .map(|(c, &p)| mcheck::Choice { picked: p, ..c.clone() })
                .collect(),
        };
        assert_eq!(
            mcheck_mode::replay_schedule(&cfg, seeded_opts(), &weaker_sched),
            None,
            "pick {i} is redundant in the minimized schedule"
        );
    }
}

/// Regenerates the stored regression schedule. Run explicitly after an
/// intentional format or exploration-order change:
/// `cargo test -p workflow --test mcheck_explore -- --ignored regenerate`
#[test]
#[ignore = "writes tests/schedules/micro_skew.schedule; run on intentional format changes"]
fn regenerate_stored_schedule() {
    let cfg = micro(WorkflowProtocol::Uncoordinated);
    let out = Explorer::new(small_explore(true)).explore(&WorkflowModel::new(cfg, seeded_opts()));
    let v = out
        .violations
        .iter()
        .find(|v| v.oracle == "replay-version-fidelity")
        .expect("fidelity violation present");
    let path = stored_schedule_path();
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    v.schedule.save(&path).unwrap();
}

#[test]
fn stored_schedule_replays_byte_identically() {
    let path = stored_schedule_path();
    let stored_bytes = std::fs::read_to_string(&path).expect("stored regression schedule");
    let sched = Schedule::from_json(&stored_bytes).expect("valid schedule document");
    // The stored document is in canonical form (a serialization fixed point).
    assert_eq!(sched.to_json(), stored_bytes, "stored schedule must be canonical");

    // Replaying it reproduces the recorded violation, deterministically.
    let cfg = micro(WorkflowProtocol::Uncoordinated);
    let replayed = mcheck_mode::replay_schedule(&cfg, seeded_opts(), &sched);
    assert_eq!(
        replayed.as_ref().map(|(o, _)| o.as_str()),
        Some("replay-version-fidelity"),
        "stored schedule must still reproduce its violation"
    );

    // And a fresh exploration re-derives the identical minimized schedule:
    // exploration, minimization, and serialization are all deterministic.
    let ex = Explorer::new(small_explore(true));
    let out = ex.explore(&WorkflowModel::new(cfg, seeded_opts()));
    let v = out
        .violations
        .iter()
        .find(|v| v.oracle == "replay-version-fidelity")
        .expect("fidelity violation present");
    assert_eq!(v.schedule.to_json(), stored_bytes, "re-derived schedule diverged from stored");
}

#[test]
fn dpor_reduced_exploration_matches_full_dfs() {
    // The DPOR-vs-DFS equivalence on the seeded micro model: the reduced
    // search must find exactly the violations the full search finds, without
    // enlarging the tree.
    let cfg = micro(WorkflowProtocol::Uncoordinated);
    let full = Explorer::new(ExploreConfig { minimize: false, ..small_explore(false) })
        .explore(&WorkflowModel::new(cfg.clone(), seeded_opts()));
    let por = Explorer::new(ExploreConfig { minimize: false, ..small_explore(true) })
        .explore(&WorkflowModel::new(cfg, seeded_opts()));
    assert_eq!(full.violated_oracles(), por.violated_oracles());
    assert!(
        por.schedules_explored <= full.schedules_explored,
        "POR must not enlarge the search: {} vs {}",
        por.schedules_explored,
        full.schedules_explored
    );
}

mod dpor_property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// On arbitrary small (2-component, ≤3-step) workflows with a
        /// scheduler-chosen crash, DPOR-reduced exploration finds the same
        /// set of violated oracles as full DFS.
        #[test]
        fn dpor_equals_dfs(seed in 0u64..8, crash_ms in 4u64..7, skew in 0u32..2) {
            let mut cfg = micro(WorkflowProtocol::Uncoordinated);
            cfg.seed = seed;
            let opts = McheckOptions {
                replay_version_skew: skew,
                crash_choices: vec![CrashChoice {
                    at: SimTime::from_millis(crash_ms),
                    app: 1,
                }],
                ..Default::default()
            };
            let ecfg = ExploreConfig {
                max_branch_points: 3,
                max_schedules: 500,
                state_prune: false,
                stop_on_first: false,
                minimize: false,
                por: false,
            };
            let full = Explorer::new(ecfg.clone())
                .explore(&WorkflowModel::new(cfg.clone(), opts.clone()));
            let por = Explorer::new(ExploreConfig { por: true, ..ecfg })
                .explore(&WorkflowModel::new(cfg, opts));
            prop_assert_eq!(full.violated_oracles(), por.violated_oracles());
            prop_assert!(por.schedules_explored <= full.schedules_explored);
        }
    }
}

/// Full-depth exploration for the nightly `mcheck-deep` CI job (or the
/// `mcheck-deep` PR label): deeper branching, a message-fault budget, and
/// two candidate crash points — every reachable schedule must stay
/// consistent. Run with:
/// `cargo test -q --release -- --ignored mcheck_deep`
#[test]
#[ignore = "widest exploration budget; nightly CI job"]
fn mcheck_deep_exploration_is_violation_free() {
    let cfg = micro(WorkflowProtocol::Uncoordinated);
    let opts = McheckOptions {
        fault_space: Some(faultplane::FaultSpace::new(1, 1)),
        crash_choices: vec![
            CrashChoice { at: SimTime::from_millis(3), app: 0 },
            CrashChoice { at: SimTime::from_millis(5), app: 1 },
        ],
        ..Default::default()
    };
    let ecfg = ExploreConfig {
        max_branch_points: 8,
        max_schedules: 200_000,
        por: true,
        state_prune: true,
        stop_on_first: false,
        minimize: true,
    };
    let (out, report) = mcheck_mode::explore(&cfg, opts, ecfg);
    assert!(out.violations.is_empty(), "deep exploration violated: {:?}", out.violated_oracles());
    assert!(out.schedules_explored > 10, "deep space must branch widely");
    assert_eq!(report.schedules_explored, out.schedules_explored);
}

/// Happens-before analysis of the threaded transport: a [`net::MeshProbe`]
/// feeds every send/recv into a vector-clock [`HbTracker`], and shared-state
/// accesses are checked for ordering races. This is the instrument used to
/// audit the keyed get-wakeup index against stale control-plane acks (see
/// DESIGN.md §6): accesses chained through message delivery are ordered;
/// accesses on unsynchronized threads race.
#[test]
fn hb_tracker_orders_message_chains_and_flags_unordered_access() {
    use net::{MeshProbe, ThreadedNet};

    struct TrackerProbe(Mutex<HbTracker>);
    impl MeshProbe for TrackerProbe {
        fn on_send(&self, from: usize, _to: usize, mid: u64) {
            self.0.lock().unwrap().on_send(from, mid);
        }
        fn on_recv(&self, at: usize, mid: u64) {
            self.0.lock().unwrap().on_recv(at, mid);
        }
    }

    let probe = std::sync::Arc::new(TrackerProbe(Mutex::new(HbTracker::new(3))));
    let mut eps = ThreadedNet::mesh_with_probe(3, probe.clone());
    let c = eps.pop().unwrap(); // endpoint 2: the "control plane"
    let b = eps.pop().unwrap(); // endpoint 1: the server
    let a = eps.pop().unwrap(); // endpoint 0: the component

    // Location 0 models the keyed get-wakeup index. The component writes it,
    // then tells the server; the server's access is ordered after the write
    // by the delivery edge — no race.
    const WAKEUP_INDEX: u64 = 0;
    probe.0.lock().unwrap().on_access(0, WAKEUP_INDEX, true);
    assert!(a.send(1, 8, "get"));
    let m = b.recv().expect("get delivered");
    assert_eq!(m.from, 0);
    let race = probe.0.lock().unwrap().on_access(1, WAKEUP_INDEX, true);
    assert!(race.is_none(), "message-chained accesses must be ordered: {race:?}");

    // The control plane now touches the same location without any delivery
    // edge from the server's write — a genuine ordering race, flagged.
    let race = probe.0.lock().unwrap().on_access(2, WAKEUP_INDEX, true);
    assert!(race.is_some(), "unordered cross-thread access must race");
    assert_eq!(race.unwrap().second, (2, true));

    // A control ack delivered to the server orders subsequent accesses again.
    assert!(c.send(1, 8, "ack"));
    let m = b.recv().expect("ack delivered");
    assert_eq!(m.from, 2);
    let race = probe.0.lock().unwrap().on_access(1, WAKEUP_INDEX, true);
    assert!(race.is_none(), "ack-ordered access must not race: {race:?}");
    assert_eq!(probe.0.lock().unwrap().races().len(), 1, "exactly the one seeded race");
}
