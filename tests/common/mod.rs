//! Shared helpers for the repository-root integration tests.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hang guard for tests that drive real OS threads: if the returned guard is
/// still alive after `limit`, the whole process is aborted with a diagnostic
/// so CI reports a crash (with the test name) instead of stalling until the
/// harness-level timeout kills the job with no context.
///
/// Dropping the guard (the test finished, passed or panicked) disarms it.
pub struct Watchdog {
    done: Arc<AtomicBool>,
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
    }
}

/// Arm a watchdog for the calling test.
pub fn watchdog(test: &'static str, limit: Duration) -> Watchdog {
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        let start = Instant::now();
        while start.elapsed() < limit {
            if flag.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("watchdog: test `{test}` still running after {limit:?}; aborting process");
        std::process::abort();
    });
    Watchdog { done }
}
