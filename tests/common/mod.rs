//! Shared helpers for the repository-root integration tests.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hang guard for tests that drive real OS threads: if the returned guard is
/// still alive after `limit`, the whole process is aborted with a diagnostic
/// so CI reports a crash (with the test name) instead of stalling until the
/// harness-level timeout kills the job with no context.
///
/// Dropping the guard (the test finished, passed or panicked) disarms it.
pub struct Watchdog {
    done: Arc<AtomicBool>,
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.done.store(true, Ordering::Release);
    }
}

/// Arm a watchdog for the calling test.
pub fn watchdog(test: &'static str, limit: Duration) -> Watchdog {
    watchdog_with_dump(test, limit, || {})
}

/// Arm a watchdog that runs `dump` before aborting — the hook for dumping
/// whatever shared diagnostics the test wired up (the obs flight recorder
/// via a cloned [`obs::Tracer`], the engine's shared event-trace ring via
/// `Engine::enable_trace_shared`), so a wedged run dies with its evidence
/// attached instead of just a timeout.
pub fn watchdog_with_dump<F>(test: &'static str, limit: Duration, dump: F) -> Watchdog
where
    F: FnOnce() + Send + 'static,
{
    let done = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&done);
    std::thread::spawn(move || {
        let start = Instant::now();
        while start.elapsed() < limit {
            if flag.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        eprintln!("watchdog: test `{test}` still running after {limit:?}; dumping diagnostics");
        dump();
        eprintln!("watchdog: aborting process");
        std::process::abort();
    });
    Watchdog { done }
}

/// A ready-made dump closure for workflow tests: prints the obs flight
/// recorder (if recording) and the tail of a shared engine trace ring.
#[allow(dead_code)] // each test binary compiles common/ independently
pub fn dump_tracer_and_ring(
    tracer: obs::Tracer,
    ring: Arc<std::sync::Mutex<sim_core::trace::TraceRing>>,
) -> impl FnOnce() + Send + 'static {
    move || {
        if tracer.enabled() {
            let t = tracer.dump();
            eprintln!(
                "--- flight recorder: {} trace records ({} dropped) ---",
                t.records.len(),
                t.dropped
            );
            eprint!("{}", t.to_jsonl());
        }
        if let Ok(r) = ring.lock() {
            eprintln!("--- engine trace ring: last {} of {} events ---", r.len(), r.total());
            for e in r.iter() {
                eprintln!("{e:?}");
            }
        }
    }
}
