//! Figure 1 topology: one simulation feeding several in-situ consumers, each
//! with its own fault-tolerance cadence — the "loosely coupled" flexibility
//! the framework exists to provide.

use sim_core::time::SimTime;
use wfcr::protocol::WorkflowProtocol;
use workflow::config::{fanout, FailureSpec};
use workflow::runner::run;

#[test]
fn three_consumers_run_failure_free() {
    let r = run(&fanout(WorkflowProtocol::Uncoordinated, 3));
    assert_eq!(r.finish_times_s.len(), 4);
    assert_eq!(r.digest_mismatches, 0);
    // Periods 4/4/5/6 over 12 steps: 3 + 3 + 2 + 2 checkpoints.
    assert_eq!(r.ckpts, 10);
    assert_eq!(r.steps_executed, 4 * 12);
}

#[test]
fn one_consumer_failure_leaves_the_rest_untouched() {
    // Fail consumer 2 (checkpoint period 5) right after it has read a step
    // beyond its last checkpoint, so the rollback has something to replay.
    let cfg = fanout(WorkflowProtocol::Uncoordinated, 3)
        .with_failures(vec![FailureSpec::At { at: SimTime::from_secs(55), app: 2 }]);
    let r = run(&cfg);
    assert_eq!(r.recoveries, 1, "only the failed consumer rolls back");
    assert!(r.replayed_gets > 0, "replayed_gets = {}", r.replayed_gets);
    assert_eq!(r.digest_mismatches, 0);
    assert_eq!(r.finish_times_s.len(), 4);
}

#[test]
fn producer_failure_absorbed_once_despite_many_readers() {
    let cfg = fanout(WorkflowProtocol::Uncoordinated, 3)
        .with_failures(vec![FailureSpec::At { at: SimTime::from_secs(50), app: 0 }]);
    let r = run(&cfg);
    assert_eq!(r.recoveries, 1);
    assert!(r.absorbed_puts > 0, "re-writes absorbed");
    // Consumers that already read old versions are NOT disturbed: no
    // replayed gets (none of them rolled back).
    assert_eq!(r.replayed_gets, 0);
    assert_eq!(r.digest_mismatches, 0);
}

#[test]
fn coordinated_rolls_back_all_four() {
    let cfg = fanout(WorkflowProtocol::Coordinated, 3)
        .with_failures(vec![FailureSpec::At { at: SimTime::from_secs(50), app: 3 }]);
    let r = run(&cfg);
    assert_eq!(r.recoveries, 4, "global rollback counts every component");
    assert_eq!(r.finish_times_s.len(), 4);
}

#[test]
fn gc_waits_for_slowest_consumer() {
    // With consumers checkpointing at periods 4/5/6, the GC floor tracks the
    // slowest; memory stays bounded but above the single-consumer case.
    let one = run(&fanout(WorkflowProtocol::Uncoordinated, 1));
    let three = run(&fanout(WorkflowProtocol::Uncoordinated, 3));
    assert!(three.staging_peak_bytes >= one.staging_peak_bytes);
    assert!(three.gc_reclaimed_bytes > 0, "GC still reclaims eventually");
}

#[test]
fn hybrid_fanout_mixes_schemes() {
    // Hybrid replicates every consumer; producer keeps C/R.
    let cfg = fanout(WorkflowProtocol::Hybrid, 2).with_failures(vec![
        FailureSpec::At { at: SimTime::from_secs(30), app: 1 },
        FailureSpec::At { at: SimTime::from_secs(60), app: 0 },
    ]);
    let r = run(&cfg);
    assert_eq!(r.failovers, 1, "consumer failure -> replica failover");
    assert_eq!(r.recoveries, 1, "producer failure -> rollback");
    assert_eq!(r.digest_mismatches, 0);
}

#[test]
fn rotating_subsets_couple_and_recover() {
    use workflow::config::SubsetPattern;
    // Case 1's literal pattern: a different 30% of the domain every step,
    // wrapping around the boundary (two disjoint boxes on wrap steps).
    let mut cfg = fanout(WorkflowProtocol::Uncoordinated, 1);
    for c in cfg.components.iter_mut() {
        c.subset_millis = 300;
        c.subset_pattern = SubsetPattern::Rotating;
    }
    let clean = run(&cfg);
    assert_eq!(clean.finish_times_s.len(), 2);
    assert_eq!(clean.digest_mismatches, 0);

    // And recovery still replays correctly with moving regions.
    let failed =
        run(&cfg.with_failures(vec![FailureSpec::At { at: SimTime::from_secs(55), app: 1 }]));
    assert_eq!(failed.recoveries, 1);
    assert!(failed.replayed_gets > 0, "rotating-region replay must be served");
    assert_eq!(failed.digest_mismatches, 0);
}

#[test]
fn coupled_regions_geometry() {
    use staging::geometry::BBox;
    use workflow::config::{coupled_regions, SubsetPattern};
    let domain = BBox::whole([10, 10, 100]);
    // Fixed: same prefix every step.
    let f1 = coupled_regions(&domain, 300, SubsetPattern::Fixed, 1);
    let f2 = coupled_regions(&domain, 300, SubsetPattern::Fixed, 7);
    assert_eq!(f1, f2);
    assert_eq!(f1.len(), 1);
    assert_eq!(f1[0].extent(2), 30);
    // Rotating: moves by its own extent, wraps into two boxes.
    let r0 = coupled_regions(&domain, 300, SubsetPattern::Rotating, 0);
    let r1 = coupled_regions(&domain, 300, SubsetPattern::Rotating, 1);
    assert_ne!(r0, r1, "successive steps touch different regions");
    let r3 = coupled_regions(&domain, 300, SubsetPattern::Rotating, 3); // start 90, wraps
    assert_eq!(r3.len(), 2, "wrap produces two boxes: {r3:?}");
    let vol: u64 = r3.iter().map(BBox::volume).sum();
    assert_eq!(vol, 10 * 10 * 30);
    assert!(!r3[0].intersects(&r3[1]));
    // Volume is constant across steps for any pattern.
    for step in 0..20 {
        let v: u64 = coupled_regions(&domain, 300, SubsetPattern::Rotating, step)
            .iter()
            .map(BBox::volume)
            .sum();
        assert_eq!(v, 3000, "step {step}");
    }
}

#[test]
fn hilbert_distribution_workflow_equivalence() {
    // Switching the staging distribution to the Hilbert curve redistributes
    // blocks over servers but must not change any observable semantics:
    // same request counts, zero mismatches, completion under failure.
    use staging::dist::Curve;
    let mut morton = fanout(WorkflowProtocol::Uncoordinated, 2);
    let mut hilbert = morton.clone();
    hilbert.sfc = Curve::Hilbert;
    let rm = run(&morton);
    let rh = run(&hilbert);
    assert_eq!(rm.puts, rh.puts);
    assert_eq!(rm.gets, rh.gets);
    assert_eq!(rh.digest_mismatches, 0);

    let failure = vec![FailureSpec::At { at: SimTime::from_secs(55), app: 1 }];
    morton.failures = failure.clone();
    hilbert.failures = failure;
    let fm = run(&morton);
    let fh = run(&hilbert);
    assert_eq!(fm.recoveries, 1);
    assert_eq!(fh.recoveries, 1);
    assert_eq!(fh.digest_mismatches, 0);
}
