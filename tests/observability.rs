//! Observability guarantees: recording must be deterministic, causal, and
//! inert.
//!
//! Three claims are checked here:
//!
//! 1. **Byte-determinism** — two same-seed traced runs export byte-identical
//!    JSONL and Perfetto files (goldens are cross-run, not checked-in).
//! 2. **Causality** — a crash/recovery run's trace actually tells the
//!    story: one put is a single causal tree spanning the client RPC span
//!    and the server's absorb/dedup decision plus its log append; a
//!    consumer's replayed read is marked as served from the log; recovery is
//!    a root span with ULFM/restore/replay phase children.
//! 3. **Inertness** — recording must not perturb the run. A traced run and
//!    an untraced run of the same configuration produce identical
//!    consistency-relevant outputs (replay-equivalence for the recorder).

use obs::analyze;
use obs::RecordKind;
use wfcr::protocol::WorkflowProtocol;
use workflow::config::{tiny, FailureSpec, TraceCfg, WorkflowConfig};
use workflow::runner::{run, run_traced};

fn failing(app: u32) -> WorkflowConfig {
    tiny(WorkflowProtocol::Uncoordinated)
        .with_failures(vec![FailureSpec::At { at: sim_core::time::SimTime::from_millis(700), app }])
}

/// All spans (Begin records) named `name`, with the track name attached.
fn spans_named<'a>(t: &'a obs::Trace, name: &str) -> Vec<&'a obs::Record> {
    t.records.iter().filter(|r| r.k == RecordKind::Begin && r.name == name).collect()
}

fn has_arg(r: &obs::Record, k: &str, v: &str) -> bool {
    r.args.iter().any(|a| a.k == k && a.v == v)
}

#[test]
fn traced_exports_are_byte_identical_across_runs() {
    let cfg = failing(1).with_tracing(TraceCfg::full());
    let (ra, ta) = run_traced(&cfg);
    let (rb, tb) = run_traced(&cfg);
    assert_eq!(ra.events_dispatched, rb.events_dispatched);
    assert_eq!(ta.to_jsonl(), tb.to_jsonl(), "JSONL export must be byte-identical");
    assert_eq!(ta.to_perfetto(), tb.to_perfetto(), "Perfetto export must be byte-identical");
    // And the export round-trips losslessly.
    let back = obs::Trace::from_jsonl(&ta.to_jsonl()).expect("parse");
    assert_eq!(back, ta);
}

#[test]
fn recorder_is_inert_replay_equivalence() {
    for cfg in [tiny(WorkflowProtocol::Uncoordinated), failing(0), failing(1)] {
        let off = run(&cfg);
        let (full, _) = run_traced(&cfg.with_tracing(TraceCfg::full()));
        let (flight, _) = run_traced(&cfg.with_tracing(TraceCfg::flight(128)));
        for on in [&full, &flight] {
            assert_eq!(on.total_time_s, off.total_time_s, "{}", cfg.label);
            assert_eq!(on.events_dispatched, off.events_dispatched, "{}", cfg.label);
            assert_eq!(on.puts, off.puts);
            assert_eq!(on.gets, off.gets);
            assert_eq!(on.absorbed_puts, off.absorbed_puts);
            assert_eq!(on.replayed_gets, off.replayed_gets);
            assert_eq!(on.digest_mismatches, off.digest_mismatches);
            assert_eq!(on.staging_peak_bytes, off.staging_peak_bytes);
            assert_eq!(on.recoveries, off.recoveries);
            assert_eq!(on.steps_executed, off.steps_executed);
        }
    }
}

#[test]
fn crash_recovery_trace_is_a_causal_story() {
    // Consumer (app 1) fails: its re-reads replay from the log.
    let (report, trace) = run_traced(&failing(1).with_tracing(TraceCfg::full()));
    assert_eq!(report.recoveries, 1);
    assert!(report.replayed_gets > 0);
    analyze::validate(&trace).expect("trace validates");

    // One put is one causal tree: a client `put` span whose trace id also
    // covers a server `serve.put` span and that server's `log.append`.
    let client_put = spans_named(&trace, "put");
    assert!(!client_put.is_empty(), "client put spans recorded");
    let tr = client_put[0].tr;
    let serve = trace
        .records
        .iter()
        .find(|r| r.k == RecordKind::Begin && r.name == "serve.put" && r.tr == tr)
        .expect("server serve.put joins the client's causal tree");
    assert!(has_arg(serve, "decision", "stored"));
    assert!(
        trace
            .records
            .iter()
            .any(|r| r.k == RecordKind::Instant && r.name == "log.append" && r.tr == tr),
        "the log append is part of the same tree"
    );

    // The replayed get is visibly served from the log.
    let replayed = spans_named(&trace, "serve.get")
        .into_iter()
        .filter(|r| has_arg(r, "decision", "replayed"))
        .count();
    assert!(replayed > 0, "replayed serves are marked");

    // Recovery is a root span with its phases as children.
    let paths = analyze::recovery_paths(&trace);
    assert_eq!(paths.len(), 1, "one recovery, one path");
    let names: Vec<&str> = paths[0].phases.iter().map(|p| p.name.as_str()).collect();
    assert!(names.contains(&"ulfm"), "phases: {names:?}");
    assert!(names.contains(&"restore"), "phases: {names:?}");
    assert!(names.contains(&"replay"), "phases: {names:?}");
    let total: u64 = paths[0].phases.iter().map(|p| p.dur_ns).sum();
    assert!(total <= paths[0].total_ns, "phases nest inside the recovery root");
}

#[test]
fn producer_failure_traces_absorbed_reputs() {
    // Producer (app 0) fails: its deterministic re-puts are absorbed.
    let (report, trace) = run_traced(&failing(0).with_tracing(TraceCfg::full()));
    assert!(report.absorbed_puts > 0);
    let absorbed = spans_named(&trace, "serve.put")
        .into_iter()
        .filter(|r| has_arg(r, "decision", "absorbed"))
        .count();
    assert_eq!(absorbed as u64, report.absorbed_puts, "every absorb decision is traced");
}

#[test]
fn net_retries_appear_as_resend_instants() {
    let plan = faultplane::FaultPlan {
        seed: 7,
        rates: faultplane::FaultRates {
            drop: 0.05,
            duplicate: 0.10,
            reorder: 0.05,
            delay: 0.10,
            max_extra_delay_ns: 500_000,
            ..Default::default()
        },
        windows: Vec::new(),
    };
    let cfg =
        tiny(WorkflowProtocol::Uncoordinated).with_net_faults(plan).with_tracing(TraceCfg::full());
    let (report, trace) = run_traced(&cfg);
    assert!(report.net_retries > 0);
    let resends =
        trace.records.iter().filter(|r| r.k == RecordKind::Instant && r.name == "resend").count();
    assert!(resends > 0, "retries must surface as resend instants");
    // A dup-acked RPC still closes exactly once.
    analyze::validate(&trace).expect("trace validates under net faults");
}

#[test]
fn flight_recorder_caps_retention_and_counts_shed() {
    let cfg = failing(1).with_tracing(TraceCfg::flight(64));
    let (_, trace) = run_traced(&cfg);
    assert!(trace.records.len() <= 64, "cap respected: {}", trace.records.len());
    assert!(trace.dropped > 0, "a full run sheds records past the cap");
}

#[test]
fn durable_runs_trace_journal_flushes() {
    // With a per-record flush policy every logged op pushes the journal's
    // flushed-bytes counter forward, so the server track must show
    // `journal.flush` instants nested in the serve spans that caused them.
    let cfg = tiny(WorkflowProtocol::Uncoordinated)
        .with_durability(workflow::DurabilityCfg {
            dir: None,
            segment_bytes: 16 * 1024,
            flush: logstore::FlushPolicy::PerRecord,
            // No coalescing: each logged op reaches the sink (and under
            // PerRecord, the media) individually, so every serve span gets
            // its own `journal.flush` instant.
            coalesce: 1,
        })
        .with_tracing(TraceCfg::full());
    let (report, trace) = run_traced(&cfg);
    assert!(report.log_bytes_flushed > 0, "durable run flushed the journal");
    let flushes: Vec<_> = trace
        .records
        .iter()
        .filter(|r| r.k == RecordKind::Instant && r.name == "journal.flush")
        .collect();
    assert!(!flushes.is_empty(), "journal flushes surface as trace instants");
    // Each flush instant hangs off a serve span's causal tree.
    for f in &flushes {
        assert!(f.par != 0, "journal.flush nests under the serving op's span");
    }
    analyze::validate(&trace).expect("trace validates with durability on");
}

#[test]
fn report_json_line_round_trips() {
    let (report, _) = run_traced(&failing(1).with_tracing(TraceCfg::full()));
    let line = report.to_json_line();
    assert!(!line.contains('\n'));
    let back: workflow::RunReport = serde_json::from_str(&line).expect("parse");
    assert_eq!(back.replayed_gets, report.replayed_gets);
    let m = back.metrics.expect("snapshot embedded");
    assert_eq!(m.counter("wf.puts"), report.puts);
}
