//! The sharded staging fleet: partitioned data plane with cross-shard
//! consistency and localized per-shard rollback.
//!
//! The invariants pinned here, per the sharding design (DESIGN §9):
//!
//! * **Ownership totality and disjointness** — the versioned partition map
//!   assigns every block key to exactly one shard, in every mode (range,
//!   hashed, with overrides) and at every map version (proptest).
//! * **Localized failure** — a single shard's fail-stop is absorbed by that
//!   shard's rebuild alone: no component rolls back, the survivors keep
//!   serving, replay digests verify clean, and same-seed runs stay
//!   byte-identical.
//! * **Live rebalance** — a scripted map-version bump migrates a block
//!   range mid-run while puts continue; the cutover is replay-equivalent
//!   (clean digests, same data observed) and deterministic.
//! * **Conservation** — across the whole fleet no logged piece is owned by
//!   two different shards (the cross-shard-conservation oracle).

mod common;

use proptest::prelude::*;
use shardmap::{MapHistory, ShardMap};
use sim_core::time::SimTime;
use std::time::Duration;
use wfcr::protocol::WorkflowProtocol;
use workflow::config::{tiny, FailureSpec, RebalanceCfg, ShardAssign, ShardingCfg, WorkflowConfig};
use workflow::runner::run;

/// The tiny workflow over a sharded fleet (logging protocol keeps the
/// replay digest checker live).
fn sharded(assign: ShardAssign) -> WorkflowConfig {
    tiny(WorkflowProtocol::Uncoordinated).with_sharding(ShardingCfg { assign, rebalance: None })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every key is owned by exactly one shard — in range mode, hashed
    /// mode, after a migration override, and at every version of a map
    /// history. Totality is `owner_of` returning a valid index for *any*
    /// key; disjointness is it being a function (one owner per key), which
    /// the fleet conservation oracle then enforces end-to-end.
    #[test]
    fn ownership_is_total_and_disjoint(
        nshards in 1usize..=8,
        seed in 0u64..1 << 32,
        nkeys in 1usize..=64,
        migrate_to in 0usize..8,
    ) {
        let codes: Vec<u64> = (0..nkeys as u64).map(|i| i * 7 + seed % 5).collect();
        let range = ShardMap::range_over(&codes, nshards);
        let hashed = ShardMap::hashed(nshards, seed);
        for map in [&range, &hashed] {
            for &k in &codes {
                let owner = map.owner_of(k);
                prop_assert!(owner < nshards, "owner {owner} out of range");
            }
        }
        // A migration override re-homes keys but keeps ownership total and
        // single-valued at both versions of the history.
        let to = migrate_to % nshards;
        let moved: Vec<u64> = codes.iter().copied().take(nkeys / 2 + 1).collect();
        let v2 = hashed.migrate(&moved, to);
        let history = MapHistory::single(hashed.clone()).with_epoch(5, v2);
        for &k in &codes {
            let before = history.owner_at(k, 0);
            let after = history.owner_at(k, 5);
            prop_assert!(before < nshards && after < nshards);
            if moved.contains(&k) {
                prop_assert_eq!(after, to, "migrated key must land on the destination");
            } else {
                prop_assert_eq!(after, before, "unmigrated keys must not move");
            }
        }
    }
}

/// A single shard's fail-stop is localized: the victim shard rebuilds, no
/// application component rolls back, the survivors keep serving (the run
/// completes with every get answered), replay digests verify clean, and
/// same-seed runs are byte-identical.
#[test]
fn single_shard_crash_recovers_locally() {
    let _wd = common::watchdog("single_shard_crash_recovers_locally", Duration::from_secs(120));
    let cfg = sharded(ShardAssign::Hashed { seed: 0xC0FFEE })
        .with_failures(vec![FailureSpec::StagingAt { at: SimTime::from_millis(500), server: 1 }]);
    let r = run(&cfg);
    assert_eq!(r.finish_times_s.len(), 2, "survivors must keep the workflow serving");
    assert_eq!(r.staging_rebuilds, 1, "exactly the victim shard rebuilds");
    assert_eq!(r.recoveries, 0, "no application component rolls back");
    assert_eq!(r.digest_mismatches, 0);
    assert_eq!(r.stale_gets, 0);
    assert_eq!(r.shards, 4, "the report must carry the fleet size");
    assert_eq!(r.shard_puts.len(), 4);

    // The clean sharded run observes the same data volume: localized
    // recovery loses nothing.
    let clean = run(&sharded(ShardAssign::Hashed { seed: 0xC0FFEE }));
    assert_eq!(r.puts, clean.puts, "rebuild must not change the put stream");
    assert_eq!(r.gets, clean.gets, "every read is still answered");

    let again = run(&cfg);
    assert_eq!(r.to_json_line(), again.to_json_line(), "same seed, same sharded report");
}

/// A scripted live rebalance: at `at_version` the partition map bumps and a
/// block range migrates to a new owner while the producer keeps putting.
/// The cutover must be clean (no digest mismatches, no stale reads), land
/// in the report, route traffic to the destination, and stay deterministic.
#[test]
fn live_rebalance_cuts_over_cleanly() {
    let _wd = common::watchdog("live_rebalance_cuts_over_cleanly", Duration::from_secs(120));
    let cfg = tiny(WorkflowProtocol::Uncoordinated).with_sharding(ShardingCfg {
        assign: ShardAssign::Range,
        rebalance: Some(RebalanceCfg { at_version: 6, blocks: vec![[0, 0, 0], [1, 0, 0]], to: 3 }),
    });
    let r = run(&cfg);
    assert_eq!(r.finish_times_s.len(), 2);
    assert_eq!(r.digest_mismatches, 0, "replay equivalence must hold across the cutover");
    assert_eq!(r.stale_gets, 0);
    assert_eq!(r.rebalances, 1, "the report must record the cutover");
    assert_eq!(r.shard_puts.len(), 4);
    assert_eq!(
        r.shard_puts.iter().sum::<u64>(),
        r.puts,
        "per-shard puts must account for every put exactly once"
    );

    // Versus the same run without the rebalance: the destination shard's
    // share of the put stream grows, everything else stays equivalent.
    let base = run(&tiny(WorkflowProtocol::Uncoordinated)
        .with_sharding(ShardingCfg { assign: ShardAssign::Range, rebalance: None }));
    assert_eq!(r.puts, base.puts, "the migration must not change the put stream");
    assert_eq!(r.gets, base.gets);
    assert!(
        r.shard_puts[3] > base.shard_puts[3],
        "the destination shard must receive the migrated range ({} vs {})",
        r.shard_puts[3],
        base.shard_puts[3]
    );

    let again = run(&cfg);
    assert_eq!(r.to_json_line(), again.to_json_line(), "same seed, same rebalanced report");
}

/// The cross-shard conservation oracle over a finished sharded run: the
/// union of the shards' logs holds no piece owned by two different shards —
/// the "no piece lost or double-served" half of the rollback story that the
/// per-shard digest checks cannot see.
#[test]
fn fleet_conservation_holds_after_a_sharded_run() {
    let _wd = common::watchdog("fleet_conservation", Duration::from_secs(120));
    for assign in [ShardAssign::Range, ShardAssign::Hashed { seed: 3 }] {
        let cfg = sharded(assign)
            .with_failures(vec![FailureSpec::At { at: SimTime::from_millis(700), app: 1 }]);
        let mut built = workflow::runner::build(&cfg);
        built.engine.run_limited(200_000_000);
        let server_ids = built.server_ids.clone();
        let mut oracles = workflow::mcheck_mode::consistency_oracles(server_ids);
        let conservation = oracles
            .iter_mut()
            .find(|o| o.name() == "cross-shard-conservation")
            .expect("conservation oracle registered");
        conservation.check(&built.engine).expect("no piece on two shards");
        let rep = workflow::runner::harvest(&mut built);
        assert_eq!(rep.digest_mismatches, 0);
        assert_eq!(rep.recoveries, 1, "the component crash still recovers");
    }
}

/// Sharded soak (CI `shard-soak` job): shard counts × assignment modes ×
/// single-shard failures × a live rebalance, each cell run twice and
/// required to complete clean and byte-identical.
/// Locally: `cargo test --test sharding -- --ignored shard_soak`.
#[test]
#[ignore = "soak matrix; run with `cargo test --release -- --ignored shard_soak`"]
fn shard_soak() {
    let _wd = common::watchdog("shard_soak", Duration::from_secs(570));
    let mut cells = 0;
    for assign in [ShardAssign::Range, ShardAssign::Hashed { seed: 0xC0FFEE }] {
        for victim in 0..4usize {
            let cfg = sharded(assign).with_failures(vec![FailureSpec::StagingAt {
                at: SimTime::from_millis(300 + victim as u64 * 150),
                server: victim,
            }]);
            let r = run(&cfg);
            assert_eq!(r.finish_times_s.len(), 2, "{assign:?} srv {victim}: must finish");
            assert_eq!(r.staging_rebuilds, 1, "{assign:?} srv {victim}");
            assert_eq!(r.digest_mismatches, 0, "{assign:?} srv {victim}: replay drifted");
            assert_eq!(r.to_json_line(), run(&cfg).to_json_line(), "{assign:?} srv {victim}");
            cells += 1;
        }
    }
    for at_version in [2u32, 6, 10] {
        let cfg = tiny(WorkflowProtocol::Uncoordinated).with_sharding(ShardingCfg {
            assign: ShardAssign::Range,
            rebalance: Some(RebalanceCfg { at_version, blocks: vec![[0, 0, 0], [0, 1, 0]], to: 2 }),
        });
        let r = run(&cfg);
        assert_eq!(r.finish_times_s.len(), 2, "rebalance@{at_version}: must finish");
        assert_eq!(r.digest_mismatches, 0, "rebalance@{at_version}: replay drifted");
        assert_eq!(r.rebalances, 1);
        assert_eq!(r.to_json_line(), run(&cfg).to_json_line(), "rebalance@{at_version}");
        cells += 1;
    }
    eprintln!("shard_soak: {cells} cells green");
}
